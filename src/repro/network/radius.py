"""Radius-r verification (the Appendix A.1 model comparison).

The paper fixes the verification radius to 1 (proof-labeling schemes); the
locally checkable proofs model of Göös and Suomela lets nodes look at any
constant distance instead.  Appendix A.1 spells out why the choice matters:
with radius 3 a node can decide "diameter ≤ 3" with *no* certificate at all,
while at radius 1 the same property needs certificates of size linear in n.
This module implements the radius-r model so the ablation benchmark can
reproduce that gap empirically: a :class:`RadiusView` is the full induced
subgraph of the ball of radius r around the vertex (identifiers,
certificates and the edges among them), and :class:`RadiusSimulator` runs a
radius-r verifier at every node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Mapping, Optional, Tuple

import networkx as nx

from repro.graphs.utils import ensure_connected
from repro.network.ids import IdentifierAssignment, assign_identifiers

Vertex = Hashable
CertificateAssignment = Mapping[Vertex, bytes]


@dataclass(frozen=True)
class RadiusView:
    """Everything a node sees at verification radius r.

    Unlike the radius-1 :class:`~repro.network.views.LocalView`, a radius-r
    view contains the *edges* among the visible vertices — this is the extra
    power Appendix A.1 discusses (at radius 1 a node cannot even tell
    whether two of its neighbours are adjacent).
    """

    identifier: int
    radius: int
    #: Identifier → (distance from the center, certificate) for every vertex
    #: within distance ``radius`` (the center itself included, at distance 0).
    vertices: Mapping[int, Tuple[int, bytes]]
    #: Edges of the induced subgraph on the visible vertices, as identifier pairs.
    edges: FrozenSet[Tuple[int, int]]

    @property
    def certificate(self) -> bytes:
        return self.vertices[self.identifier][1]

    def visible_identifiers(self) -> Tuple[int, ...]:
        return tuple(sorted(self.vertices))

    def distance_to(self, identifier: int) -> int:
        return self.vertices[identifier][0]

    def certificate_of(self, identifier: int) -> bytes:
        return self.vertices[identifier][1]

    def are_adjacent(self, a: int, b: int) -> bool:
        return (a, b) in self.edges or (b, a) in self.edges

    def as_graph(self) -> nx.Graph:
        """The visible ball as a networkx graph on identifiers."""
        graph = nx.Graph()
        graph.add_nodes_from(self.vertices)
        graph.add_edges_from(self.edges)
        return graph


RadiusVerifier = Callable[[RadiusView], bool]


@dataclass(frozen=True)
class RadiusSimulationResult:
    accepted: bool
    rejecting_vertices: tuple = ()
    max_certificate_bits: int = 0


class RadiusSimulator:
    """Run a radius-r verifier at every vertex of a connected graph."""

    def __init__(
        self,
        graph: nx.Graph,
        radius: int,
        identifiers: IdentifierAssignment | None = None,
        seed: int | random.Random | None = None,
    ) -> None:
        if radius < 1:
            raise ValueError("the verification radius must be at least 1")
        self.graph = ensure_connected(graph)
        self.radius = radius
        self.identifiers = identifiers or assign_identifiers(graph, seed=seed)

    def build_view(self, vertex: Vertex, certificates: CertificateAssignment) -> RadiusView:
        distances = nx.single_source_shortest_path_length(self.graph, vertex, cutoff=self.radius)
        visible = {
            self.identifiers[v]: (distance, bytes(certificates.get(v, b"")))
            for v, distance in distances.items()
        }
        edges = frozenset(
            (self.identifiers[a], self.identifiers[b])
            for a, b in self.graph.subgraph(distances.keys()).edges()
        )
        return RadiusView(
            identifier=self.identifiers[vertex],
            radius=self.radius,
            vertices=visible,
            edges=edges,
        )

    def run(self, verifier: RadiusVerifier, certificates: CertificateAssignment) -> RadiusSimulationResult:
        rejecting = []
        for vertex in self.graph.nodes():
            if not verifier(self.build_view(vertex, certificates)):
                rejecting.append(vertex)
        max_bits = max(
            (len(bytes(certificates.get(v, b""))) * 8 for v in self.graph.nodes()),
            default=0,
        )
        return RadiusSimulationResult(
            accepted=not rejecting,
            rejecting_vertices=tuple(sorted(rejecting, key=repr)),
            max_certificate_bits=max_bits,
        )


def diameter_at_most_verifier(bound: int) -> RadiusVerifier:
    """The certificate-free radius-r verifier for "diameter ≤ bound".

    When the verification radius is at least ``bound`` (Appendix A.1's
    example with bound 3), a node sees its whole ball of radius ``bound``
    and simply checks that every other visible vertex is within distance
    ``bound`` *and* that nothing lies beyond the ball — which it detects by
    checking that no visible vertex sits exactly at the boundary with an
    unseen neighbour.  Concretely, it accepts iff every visible vertex is at
    distance < radius, or at distance == radius ≤ bound with the whole graph
    visible; the simple sufficient check used here is that all visible
    distances are ≤ bound and no visible vertex at distance == radius has a
    visible degree smaller than its announced degree — since degrees are not
    part of the model, the check reduces to: all pairwise-visible distances
    are at most ``bound`` inside the ball.  For radius ≥ bound + 1 this is
    exact; the tests exercise exactly that regime.
    """

    def verifier(view: RadiusView) -> bool:
        ball = view.as_graph()
        lengths = nx.single_source_shortest_path_length(ball, view.identifier)
        # Everything the center can see must be within the bound...
        if any(distance > bound for distance in lengths.values()):
            return False
        # ...and nothing may be hidden beyond the ball: a vertex at the very
        # edge of the view could have unseen neighbours, so the center only
        # accepts if its ball stopped growing strictly before the radius.
        return all(distance < view.radius for distance in lengths.values())

    return verifier
