"""A self-stabilisation harness driven by local certification.

The original motivation for proof-labeling schemes (Korman–Kutten–Peleg, and
the state model of self-stabilisation the paper cites in Appendix A.1) is
fault detection: the network stores a distributed data structure together
with its certificates; transient faults corrupt some of the memory; the
local verifiers detect the corruption at — crucially — at least one node,
which triggers a recovery procedure that recomputes the structure.

:class:`SelfStabilizingNetwork` implements that loop around any
:class:`~repro.core.scheme.CertificationScheme`: install honest
certificates, inject faults from the adversary's fault models, run the
detection round, and recover by re-proving.  The history of
:class:`StabilizationEvent` records makes the behaviour observable for tests
and for the ``examples/self_stabilizing_overlay.py`` scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.scheme import CertificationScheme, NotAYesInstance
from repro.network.adversary import corrupt_assignment, random_assignment
from repro.network.ids import IdentifierAssignment, assign_identifiers
from repro.network.simulator import NetworkSimulator

Vertex = Hashable


@dataclass(frozen=True)
class StabilizationEvent:
    """One step of the detect/recover loop."""

    step: int
    action: str  # "install", "fault", "detect", "recover"
    accepted: Optional[bool] = None
    rejecting_vertices: Tuple[Vertex, ...] = ()
    detail: str = ""


@dataclass
class SelfStabilizingNetwork:
    """A network holding a certified structure and reacting to faults."""

    graph: nx.Graph
    scheme: CertificationScheme
    seed: int | None = 0
    identifiers: IdentifierAssignment = field(init=False)
    certificates: Dict[Vertex, bytes] = field(init=False, default_factory=dict)
    history: List[StabilizationEvent] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.identifiers = assign_identifiers(self.graph, seed=self._rng)
        # Detection runs every round on the (usually unchanged) topology; the
        # wrapper reuses one compiled topology and recompiles only when the
        # graph was structurally mutated (topology faults must stay visible).
        self._simulator = NetworkSimulator(self.graph, identifiers=self.identifiers)
        self.install()

    # ------------------------------------------------------------------
    # The loop's four actions
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Compute and install honest certificates (the legitimate state)."""
        self.certificates = dict(self.scheme.prove(self.graph, self.identifiers))
        self._record("install", detail=f"{len(self.certificates)} certificates installed")

    def inject_fault(self, kind: str = "bitflip", vertices: Optional[Sequence[Vertex]] = None) -> None:
        """Corrupt the stored certificates (a transient memory fault).

        ``kind`` is one of the adversary's fault models, or ``"overwrite"``
        to replace the certificates of the given ``vertices`` (default: one
        random vertex) with random bytes of the same length.
        """
        if kind == "overwrite":
            targets = list(vertices) if vertices else [self._rng.choice(sorted(self.graph.nodes(), key=repr))]
            for vertex in targets:
                length = max(1, len(self.certificates.get(vertex, b"")))
                noise = random_assignment([vertex], length, seed=self._rng)
                self.certificates[vertex] = noise[vertex]
            detail = f"overwrote {len(targets)} certificate(s)"
        else:
            self.certificates = corrupt_assignment(self.certificates, seed=self._rng, kind=kind)
            detail = f"applied {kind} corruption"
        self._record("fault", detail=detail)

    def detect(self) -> Tuple[bool, Tuple[Vertex, ...]]:
        """One verification round: is the stored state still accepted, and by whom not?"""
        outcome = self._simulator.run(self.scheme.verify, self.certificates)
        self._record(
            "detect",
            accepted=outcome.accepted,
            rejecting_vertices=outcome.rejecting_vertices,
            detail=f"{len(outcome.rejecting_vertices)} rejecting vertex/vertices",
        )
        return outcome.accepted, outcome.rejecting_vertices

    def recover(self) -> None:
        """Recompute the certificates (the recovery procedure after detection)."""
        try:
            self.install()
        except NotAYesInstance:
            # The graph itself stopped satisfying the property (e.g. topology
            # change): there is nothing to recover to, and that is a finding
            # the caller must see, not something to hide.
            raise
        # Rewrite the last event so the history reads "recover", not "install".
        last = self.history[-1]
        self.history[-1] = StabilizationEvent(
            step=last.step, action="recover", detail=last.detail
        )

    # ------------------------------------------------------------------
    # The closed loop
    # ------------------------------------------------------------------

    def run_detect_recover(self, max_rounds: int = 3) -> bool:
        """Detect and, if needed, recover, up to ``max_rounds`` times.

        Returns True when the stored state ends up accepted.  With an honest
        recovery procedure a single round suffices; the loop exists so tests
        can exercise repeated fault injection.
        """
        for _ in range(max_rounds):
            accepted, _ = self.detect()
            if accepted:
                return True
            self.recover()
        accepted, _ = self.detect()
        return accepted

    @property
    def stored_certificate_bits(self) -> int:
        return max((len(c) * 8 for c in self.certificates.values()), default=0)

    def _record(self, action: str, accepted: Optional[bool] = None,
                rejecting_vertices: Tuple[Vertex, ...] = (), detail: str = "") -> None:
        self.history.append(
            StabilizationEvent(
                step=len(self.history),
                action=action,
                accepted=accepted,
                rejecting_vertices=rejecting_vertices,
                detail=detail,
            )
        )
