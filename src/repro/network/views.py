"""Radius-1 local views.

A verifier in the paper's model sees, at a vertex ``v``: the identifier and
certificate of ``v`` and, for every neighbour, the neighbour's identifier and
certificate.  Crucially (Section 2.2 and Appendix A.1) it does *not* see the
edges between neighbours, nor anything at distance two.  The
:class:`LocalView` dataclass is the only information a
:class:`~repro.core.scheme.CertificationScheme` verifier receives, which
makes the radius-1 restriction structural rather than a convention.

Two concrete view types implement the same read-only protocol
(:class:`LocalViewOps`): the frozen :class:`LocalView` handed out by the
legacy simulator and by ``collect_views=True`` snapshots, and the reusable
mutable views of :mod:`repro.network.compiled` whose certificate slots are
swapped between runs instead of reallocating the whole structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


class LocalViewOps:
    """Read-only helpers shared by every radius-1 view implementation.

    Subclasses only need ``identifier``, ``certificate`` and ``neighbors``
    attributes, where each neighbour exposes ``identifier``/``certificate``.
    """

    __slots__ = ()

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def neighbor_identifiers(self) -> Tuple[int, ...]:
        return tuple(info.identifier for info in self.neighbors)

    def neighbor_certificates(self) -> Tuple[bytes, ...]:
        return tuple(info.certificate for info in self.neighbors)

    def neighbor_by_id(self, identifier: int):
        for info in self.neighbors:
            if info.identifier == identifier:
                return info
        raise KeyError(f"no neighbour with identifier {identifier}")

    def has_neighbor(self, identifier: int) -> bool:
        return any(info.identifier == identifier for info in self.neighbors)


@dataclass(frozen=True, slots=True)
class NeighborInfo:
    """What a vertex knows about one of its neighbours."""

    identifier: int
    certificate: bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeighborInfo(id={self.identifier}, cert={self.certificate!r})"


@dataclass(frozen=True, slots=True)
class LocalView(LocalViewOps):
    """Everything a node sees when running the local verification algorithm."""

    identifier: int
    certificate: bytes
    neighbors: Tuple[NeighborInfo, ...] = field(default_factory=tuple)
    total_vertices_hint: int | None = None
    """Optional out-of-band value used *only* by size accounting and by
    schemes that are explicitly allowed to know ``n`` (none of the paper's
    schemes need it; it defaults to ``None``)."""
