"""Bit-parallel block verification: one lane per candidate assignment.

The first three engines — the legacy simulator, the compiled batch engine
and the delta engine — all evaluate *one* certificate assignment per pass
over the graph; the delta engine merely shrinks each pass to a closed
neighbourhood.  BENCH_delta's frontier shows where that road ends: the cost
per assignment is down to a few dictionary operations, so the only way to
get the next order of magnitude is to shrink the work per *instruction*.

:class:`VectorNetwork` does that by evaluating a **block** of assignments at
once.  Assignments become *lanes*: lane ``k`` of a machine word holds one
bit of information about assignment ``k``, and a single bitwise operation
advances all lanes together.  Words are Python arbitrary-precision integers
by default (any number of lanes per word, zero dependencies) or numpy
``uint64`` arrays when numpy is importable (``backend="auto"``); both
backends share one evaluation path because ``&``, ``|`` and ``~`` mean the
same thing on either word type.

The engine never inspects verifier code.  For every vertex it builds a
*palette* of the candidate certificates that vertex sees across the block,
bit-slices the per-lane palette indices into word-sized *planes* (plane
``b`` holds bit ``b`` of every lane's index), and materialises the
verifier's truth table over the vertex's local configuration space — own
certificate plus the CSR-ordered neighbour certificates of
:class:`~repro.network.compiled.CompiledNetwork` — by calling the real
verifier once per reachable configuration (verdicts are memoised in the same
per-(network, verifier) store the delta engine uses).  The table is then
evaluated columnwise by iterated Shannon expansion::

    level = [(level[2t] & ~x) | (level[2t + 1] & x)  for t in ...]

one multiplex step per configuration bit-plane ``x``, producing a verdict
word whose lane ``k`` is vertex ``v``'s verdict on assignment ``k``.  A
block is accepted on some lane iff the AND of all (watched) verdict words is
non-zero — block-level early exit replaces the per-assignment loop.

Exhaustive sweeps (:meth:`any_accepted_exhaustive`) never materialise
assignments at all: the sweep is a binary counter over
``max_bits * n`` digit bits, the low ``log2(block)`` bits live *inside* a
block — their planes are fixed alternating masks — and the high bits are
per-block constants, so advancing to the next block costs no per-lane work.
Vertices whose local configuration space outgrows ``max_table_bits`` fall
back to per-lane memoised scalar evaluation; everything stays bit-for-bit
identical to ``run_legacy``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.network.compiled import (
    CompiledNetwork,
    SimulationResult,
    _MEMO_ENTRY_CAP,
)
from repro.network.ids import IdentifierAssignment

Vertex = Hashable
CertificateAssignment = Mapping[Vertex, bytes]
Verifier = Callable[..., bool]

#: Backend names accepted by :class:`VectorNetwork`.
VECTOR_BACKENDS = ("auto", "python", "numpy")

#: Above this many local-configuration bits a vertex is evaluated per-lane
#: (memoised scalar calls) instead of via a dense truth table: the Shannon
#: reduction costs ``2**m`` multiplex steps, which stops paying for itself
#: once it rivals the lane count.
DEFAULT_MAX_TABLE_BITS = 12


# ---------------------------------------------------------------------------
# Lane-word backends
# ---------------------------------------------------------------------------


class _PythonBackend:
    """Lanes packed into one arbitrary-precision int; always available."""

    name = "python"
    #: Big-int bitwise ops are O(words); 2048 lanes keeps each op in the
    #: sweet spot where interpreter overhead, not carry-free arithmetic,
    #: dominates.
    default_block_lanes = 2048

    @staticmethod
    def pack(value: int, lanes: int):
        return value

    @staticmethod
    def to_int(word) -> int:
        return word

    @staticmethod
    def is_zero(word) -> bool:
        return word == 0


class _NumpyBackend:
    """Lanes packed into a little-endian ``uint64`` array (64 per element)."""

    name = "numpy"
    #: Larger blocks amortise numpy's per-operation dispatch overhead.
    default_block_lanes = 1 << 16

    def __init__(self, numpy) -> None:
        self._np = numpy

    def pack(self, value: int, lanes: int):
        n_words = max(1, (lanes + 63) // 64)
        buffer = value.to_bytes(n_words * 8, "little")
        return self._np.frombuffer(buffer, dtype="<u8")

    def to_int(self, word) -> int:
        return int.from_bytes(word.astype("<u8", copy=False).tobytes(), "little")

    def is_zero(self, word) -> bool:
        return not word.any()


def _import_numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised on numpy-free installs
        return None
    return numpy


def resolve_backend(backend: str = "auto"):
    """Resolve a backend name to a backend object.

    ``"auto"`` prefers numpy when it is importable and silently falls back
    to the pure-Python big-int backend otherwise; ``"numpy"`` raises when
    numpy is unavailable so tests can pin a backend explicitly.
    """
    if backend == "python":
        return _PythonBackend()
    if backend == "numpy":
        numpy = _import_numpy()
        if numpy is None:
            raise ValueError("backend 'numpy' requested but numpy is not importable")
        return _NumpyBackend(numpy)
    if backend == "auto":
        numpy = _import_numpy()
        return _NumpyBackend(numpy) if numpy is not None else _PythonBackend()
    raise ValueError(
        f"unknown vector backend {backend!r}; use one of: "
        + ", ".join(repr(name) for name in VECTOR_BACKENDS)
    )


# ---------------------------------------------------------------------------
# Block results
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BlockResult:
    """Per-lane outcome of one block evaluation.

    ``accepted_lanes_word`` is a plain Python int regardless of backend:
    bit ``k`` is set iff every watched vertex accepted assignment ``k``.
    Per-lane :class:`SimulationResult` reconstruction (:meth:`result`) is
    O(n) per lane and meant for equivalence tests and endpoints that need
    the rejecting set — the hot paths only read the acceptance word.
    """

    lanes: int
    order: tuple
    watched: tuple
    accepted_lanes_word: int
    verdict_words: Dict[Vertex, int] = field(default_factory=dict)
    _palettes: tuple = ()
    _lane_indices: tuple = ()

    def accepted(self, lane: int) -> bool:
        """Did every watched vertex accept assignment ``lane``?"""
        self._check_lane(lane)
        return bool((self.accepted_lanes_word >> lane) & 1)

    def any_accepted(self) -> bool:
        return self.accepted_lanes_word != 0

    def first_accepted_lane(self) -> Optional[int]:
        """The lowest fully-accepted lane, or None."""
        word = self.accepted_lanes_word
        if word == 0:
            return None
        return (word & -word).bit_length() - 1

    def accepted_lanes(self) -> Tuple[int, ...]:
        return tuple(
            k for k in range(self.lanes) if (self.accepted_lanes_word >> k) & 1
        )

    def rejecting_vertices(self, lane: int) -> tuple:
        """Watched vertices rejecting assignment ``lane``, in ``repr`` order."""
        self._check_lane(lane)
        rejecting = [
            vertex
            for vertex in self.watched
            if not (self.verdict_words[vertex] >> lane) & 1
        ]
        return tuple(sorted(rejecting, key=repr))

    def max_certificate_bits(self, lane: int) -> int:
        """Size in bits of the largest certificate assignment ``lane`` gives
        to a vertex of the graph (``run`` parity)."""
        self._check_lane(lane)
        max_len = 0
        for palette, indices in zip(self._palettes, self._lane_indices):
            length = len(palette[indices[lane]])
            if length > max_len:
                max_len = length
        return max_len * 8

    def result(self, lane: int) -> SimulationResult:
        """Assignment ``lane``'s outcome as a :class:`SimulationResult`."""
        return SimulationResult(
            accepted=self.accepted(lane),
            rejecting_vertices=self.rejecting_vertices(lane),
            max_certificate_bits=self.max_certificate_bits(lane),
        )

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.lanes:
            raise IndexError(f"lane {lane} out of range for a {self.lanes}-lane block")


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class VectorNetwork:
    """A :class:`CompiledNetwork` lifted to bit-parallel block evaluation.

    Wraps an existing compiled topology (or compiles ``graph`` on the spot)
    and shares its CSR adjacency, identifier assignment and per-verifier
    verdict memo.  Instances own private scratch views, so any number of
    them coexist with the compiled engine's ``run`` and with delta sessions
    on a shared :class:`CompiledNetwork`.
    """

    def __init__(
        self,
        network: CompiledNetwork | nx.Graph,
        identifiers: IdentifierAssignment | None = None,
        seed=None,
        backend: str = "auto",
        block_lanes: Optional[int] = None,
        max_table_bits: Optional[int] = None,
    ) -> None:
        if not isinstance(network, CompiledNetwork):
            network = CompiledNetwork(network, identifiers=identifiers, seed=seed)
        self._network = network
        self._backend = resolve_backend(backend)
        if block_lanes is None:
            block_lanes = self._backend.default_block_lanes
        if block_lanes < 1 or block_lanes & (block_lanes - 1):
            raise ValueError("block_lanes must be a positive power of two")
        self._block_lanes = block_lanes
        self._block_bits = block_lanes.bit_length() - 1
        if max_table_bits is None:
            # Per-backend cutoff from the planner's calibration (wider numpy
            # blocks amortise bigger tables); the analytic default stands in
            # when no calibration is loadable.
            try:
                from repro.planner import calibrated_max_table_bits

                max_table_bits = calibrated_max_table_bits(self._backend.name)
            except Exception:
                max_table_bits = DEFAULT_MAX_TABLE_BITS
        if max_table_bits < 0:
            raise ValueError("max_table_bits must be non-negative")
        self._max_table_bits = max_table_bits
        #: Kernel-composition report of the most recent
        #: :meth:`any_accepted_exhaustive` call (None before the first).
        self.last_exhaustive_report: Optional[Dict[str, object]] = None
        # Private scratch views for materialising local configurations when
        # a truth-table entry actually needs the verifier.
        self._records, self._views = network._fresh_views()
        closed, _ = network._delta_tables()
        self._closed = closed
        self._mask_cache: Dict[int, list] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def network(self) -> CompiledNetwork:
        return self._network

    @property
    def vertices(self) -> tuple:
        return self._network.vertices

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def block_lanes(self) -> int:
        """Assignments evaluated per pass (lanes per block)."""
        return self._block_lanes

    # ------------------------------------------------------------------
    # Verifier truth values
    # ------------------------------------------------------------------

    def _lookup(self, verifier: Verifier, memo: dict, i: int, key: tuple) -> bool:
        """Memoised verdict of vertex index ``i`` on local configuration
        ``key`` (own certificate, then CSR-ordered neighbour certificates) —
        the exact key shape of :class:`~repro.network.compiled.DeltaSession`,
        so both engines share cached verdicts."""
        verdict = memo.get(key)
        if verdict is None:
            view = self._views[i]
            view.certificate = key[0]
            for record, certificate in zip(view.neighbors, key[1:]):
                record.certificate = certificate
            verdict = True if verifier(view) else False
            if len(memo) < _MEMO_ENTRY_CAP:
                memo[key] = verdict
        return verdict

    # ------------------------------------------------------------------
    # Shannon reduction
    # ------------------------------------------------------------------

    @staticmethod
    def _reduce(level: list, planes: list):
        """Collapse ``2**m`` leaf words through ``m`` multiplex steps.

        ``planes`` holds one ``(is_constant, value)`` entry per table bit,
        least-significant first.  A constant plane (the bit is the same in
        every lane) is pure list slicing; a live plane is one columnwise
        multiplex over the whole block.
        """
        for constant, x in planes:
            if constant:
                level = level[1::2] if x else level[0::2]
            else:
                level = [
                    (level[t] & ~x) | (level[t + 1] & x)
                    for t in range(0, len(level), 2)
                ]
        return level[0]

    # ------------------------------------------------------------------
    # Arbitrary assignment blocks
    # ------------------------------------------------------------------

    def _block_columns(self, assignments: Sequence[CertificateAssignment]):
        """Per-vertex certificate palettes and lane index lists."""
        palettes = []
        lane_indices = []
        for vertex in self._network._order:
            interned: Dict[bytes, int] = {}
            indices = []
            for assignment in assignments:
                certificate = assignment.get(vertex, b"")
                if type(certificate) is not bytes:
                    certificate = bytes(certificate)
                position = interned.get(certificate)
                if position is None:
                    position = len(interned)
                    interned[certificate] = position
                indices.append(position)
            palettes.append(tuple(interned))
            lane_indices.append(indices)
        return palettes, lane_indices

    def _block_verdict_word(
        self,
        verifier: Verifier,
        memo: tuple,
        i: int,
        palettes: list,
        lane_indices: list,
        planes_of: list,
        lanes: int,
        full,
        zero,
    ):
        """Verdict word of vertex index ``i`` over an explicit block."""
        closed = self._closed[i]
        bits = [
            (len(palettes[j]) - 1).bit_length() if len(palettes[j]) > 1 else 0
            for j in closed
        ]
        m = sum(bits)
        if m == 0:
            key = tuple(palettes[j][0] for j in closed)
            return full if self._lookup(verifier, memo[i], i, key) else zero
        if m <= self._max_table_bits:
            table = [False] * (1 << m)
            positions = [list(enumerate(palettes[j])) for j in closed]
            for combo in itertools.product(*positions):
                flat = 0
                shift = 0
                for (position, _), width in zip(combo, bits):
                    flat |= position << shift
                    shift += width
                key = tuple(certificate for _, certificate in combo)
                if self._lookup(verifier, memo[i], i, key):
                    table[flat] = True
            if all(table):
                return full
            if not any(table):
                return zero
            level = [full if bit else zero for bit in table]
            planes = []
            for j in closed:
                planes.extend(planes_of[j])
            return self._reduce(level, planes)
        # Per-lane fallback: the local configuration space is too large for
        # a dense table, so pay one memoised lookup per lane instead.
        word = 0
        for lane in range(lanes):
            key = tuple(palettes[j][lane_indices[j][lane]] for j in closed)
            if self._lookup(verifier, memo[i], i, key):
                word |= 1 << lane
        return self._backend.pack(word, lanes)

    def run_block(
        self,
        verifier: Verifier,
        assignments: Sequence[CertificateAssignment],
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> BlockResult:
        """Evaluate a block of explicit assignments, one lane each.

        Returns a :class:`BlockResult` with the full per-vertex verdict
        words; ``vertices`` optionally restricts the verdicts that count to
        a watched subset (the block analogue of
        :meth:`CompiledNetwork.accepts_at`).  Lane ``k``'s
        :meth:`~BlockResult.result` is bit-identical to
        ``run(verifier, assignments[k])``.
        """
        assignments = list(assignments)
        lanes = len(assignments)
        order = self._network._order
        index = self._network._index
        if vertices is None:
            watched = list(range(len(order)))
        else:
            watched = sorted(index[v] for v in vertices)
        if lanes == 0:
            # An empty block has no lanes to accept or reject.
            return BlockResult(
                lanes=0,
                order=tuple(order),
                watched=tuple(order[i] for i in watched),
                accepted_lanes_word=0,
                verdict_words={order[i]: 0 for i in watched},
            )
        backend = self._backend
        full = backend.pack((1 << lanes) - 1, lanes)
        zero = backend.pack(0, lanes)
        palettes, lane_indices = self._block_columns(assignments)
        planes_of = [
            self._slice_planes(indices, palette, lanes)
            for palette, indices in zip(palettes, lane_indices)
        ]
        memo = self._network._verdict_memo(verifier)
        accepted = full
        verdict_words: Dict[Vertex, int] = {}
        for i in watched:
            word = self._block_verdict_word(
                verifier, memo, i, palettes, lane_indices, planes_of, lanes, full, zero
            )
            verdict_words[order[i]] = backend.to_int(word)
            accepted = accepted & word
        return BlockResult(
            lanes=lanes,
            order=tuple(order),
            watched=tuple(order[i] for i in watched),
            accepted_lanes_word=backend.to_int(accepted) if lanes else 0,
            verdict_words=verdict_words,
            _palettes=tuple(palettes),
            _lane_indices=tuple(tuple(indices) for indices in lane_indices),
        )

    def _slice_planes(self, indices: list, palette: tuple, lanes: int) -> list:
        """Bit-slice a vertex's per-lane palette indices into planes."""
        bits = (len(palette) - 1).bit_length() if len(palette) > 1 else 0
        planes = []
        for b in range(bits):
            value = 0
            for lane, position in enumerate(indices):
                if (position >> b) & 1:
                    value |= 1 << lane
            planes.append((False, self._backend.pack(value, lanes)))
        return planes

    def any_accepted_block(
        self,
        verifier: Verifier,
        assignments: Iterable[CertificateAssignment],
    ) -> bool:
        """Is *some* assignment accepted by every vertex?

        The bit-parallel counterpart of :meth:`CompiledNetwork.any_accepted`:
        consumes any iterable, evaluates it ``block_lanes`` assignments at a
        time, and short-circuits both across blocks and within each block
        (the accumulated acceptance word going to zero discards the rest of
        the block's vertices).
        """
        assignments = iter(assignments)
        while True:
            block = list(itertools.islice(assignments, self._block_lanes))
            if not block:
                return False
            if self.run_block(verifier, block).any_accepted():
                return True

    # ------------------------------------------------------------------
    # Exhaustive sweeps
    # ------------------------------------------------------------------

    def _alternating_masks(self, lanes: int) -> list:
        """``masks[p]``: the word whose lane ``k`` holds bit ``p`` of ``k``."""
        masks = self._mask_cache.get(lanes)
        if masks is None:
            masks = []
            every = (1 << lanes) - 1
            p = 0
            while (1 << p) < lanes:
                half = 1 << p
                period = half << 1
                unit = every // ((1 << period) - 1)
                masks.append(self._backend.pack(unit * (((1 << half) - 1) << half), lanes))
                p += 1
            self._mask_cache[lanes] = masks
        return masks

    def any_accepted_exhaustive(
        self,
        verifier: Verifier,
        max_bits: int,
        vertices: Optional[Sequence[Vertex]] = None,
        fixed: Optional[CertificateAssignment] = None,
        watched: Optional[Iterable[Vertex]] = None,
    ) -> bool:
        """Does *some* assignment of ``max_bits``-bit certificates make every
        watched vertex accept?

        Sweeps the exact assignment set of
        :func:`~repro.network.adversary.exhaustive_assignments` over
        ``vertices`` (default: all vertices, ``repr``-sorted) without ever
        materialising an assignment: the sweep is a binary counter whose low
        bits alternate *inside* each block (fixed mask planes) and whose
        high bits are per-block constants.  ``fixed`` pins the certificates
        of non-enumerated vertices; ``watched`` restricts whose verdicts
        count (the Alice/Bob protocol simulation watches only the vertices
        a player sees).
        """
        if max_bits < 0:
            raise ValueError("max_bits must be non-negative")
        order = self._network._order
        index = self._network._index
        if vertices is None:
            vertices = sorted(order, key=repr)
        else:
            vertices = list(vertices)
        fixed = fixed or {}
        position_of: Dict[int, int] = {index[v]: j for j, v in enumerate(vertices)}
        n_enum = len(vertices)
        radix = 1 << max_bits
        n_bytes = (max_bits + 7) // 8
        options = [
            value.to_bytes(n_bytes, "big") if n_bytes else b"" for value in range(radix)
        ]
        fixed_certificate: Dict[int, bytes] = {}
        for i, vertex in enumerate(order):
            if i not in position_of:
                certificate = fixed.get(vertex, b"")
                if type(certificate) is not bytes:
                    certificate = bytes(certificate)
                fixed_certificate[i] = certificate
        if watched is None:
            watched_indices = list(range(len(order)))
        else:
            watched_indices = sorted(index[v] for v in watched)

        total_bits = max_bits * n_enum
        block_bits = min(self._block_bits, total_bits)
        lanes = 1 << block_bits
        backend = self._backend
        full = backend.pack((1 << lanes) - 1, lanes)
        zero = backend.pack(0, lanes)
        masks = self._alternating_masks(lanes)
        memo = self._network._verdict_memo(verifier)

        # Global counter bit of digit bit ``b`` of the vertex at enumeration
        # position ``j`` (first vertex = most significant digit, matching
        # ``exhaustive_assignments``'s product order).
        def offsets_of(i: int) -> list:
            j = position_of[i]
            base = max_bits * (n_enum - 1 - j)
            return list(range(base, base + max_bits))

        kernels = []
        for i in watched_indices:
            closed = self._closed[i]
            enumerated = [j for j in closed if j in position_of]
            m = max_bits * len(enumerated)
            if m == 0:
                # Also covers max_bits == 0: an enumerated vertex then has a
                # single candidate certificate, the empty one.
                key = tuple(
                    options[0] if j in position_of else fixed_certificate[j]
                    for j in closed
                )
                word = full if self._lookup(verifier, memo[i], i, key) else zero
                kernels.append(("const", word, None, None))
                continue
            offsets = []
            for j in closed:
                if j in position_of:
                    offsets.extend(offsets_of(j))
            if m <= self._max_table_bits:
                table = [False] * (1 << m)
                choice_lists = [
                    list(enumerate(options)) if j in position_of else [(0, fixed_certificate[j])]
                    for j in closed
                ]
                for combo in itertools.product(*choice_lists):
                    flat = 0
                    shift = 0
                    key_parts = []
                    for (value, certificate), j in zip(combo, closed):
                        if j in position_of:
                            flat |= value << shift
                            shift += max_bits
                        key_parts.append(certificate)
                    if self._lookup(verifier, memo[i], i, tuple(key_parts)):
                        table[flat] = True
                if all(table):
                    kernels.append(("const", full, None, None))
                elif not any(table):
                    kernels.append(("const", zero, None, None))
                else:
                    kernels.append(("table", table, offsets, None))
            else:
                # Scalar fallback: decode each lane's digits straight from
                # the counter value.
                template = [
                    None if j in position_of else fixed_certificate[j] for j in closed
                ]
                slots = [
                    (slot, max_bits * (n_enum - 1 - position_of[j]))
                    for slot, j in enumerate(closed)
                    if j in position_of
                ]
                kernels.append(("scalar", template, slots, i))

        # Record how the sweep was compiled *before* running it (early exits
        # must not lose the report): ``used_fallback`` flags any vertex that
        # dropped to per-lane scalar evaluation — the planner and
        # BENCH_planner account for it when pricing the vector engine.
        kernel_counts: Dict[str, int] = {"const": 0, "table": 0, "scalar": 0}
        for kernel in kernels:
            kernel_counts[kernel[0]] += 1
        self.last_exhaustive_report = {
            "used_fallback": kernel_counts["scalar"] > 0,
            "kernels": kernel_counts,
            "max_table_bits": self._max_table_bits,
        }

        mask = radix - 1
        block_count = 1 << (total_bits - block_bits)
        for block_index in range(block_count):
            base = block_index << block_bits
            accepted = full
            for kernel, i in zip(kernels, watched_indices):
                kind = kernel[0]
                if kind == "const":
                    word = kernel[1]
                elif kind == "table":
                    _, table, offsets, _ = kernel
                    planes = [
                        (False, masks[p])
                        if p < block_bits
                        else (True, (base >> p) & 1)
                        for p in offsets
                    ]
                    level = [full if bit else zero for bit in table]
                    word = self._reduce(level, planes)
                else:
                    _, template, slots, _ = kernel
                    value = 0
                    parts = list(template)
                    for lane in range(lanes):
                        counter = base + lane
                        for slot, offset in slots:
                            parts[slot] = options[(counter >> offset) & mask]
                        if self._lookup(verifier, memo[i], i, tuple(parts)):
                            value |= 1 << lane
                    word = backend.pack(value, lanes)
                accepted = accepted & word
                if backend.is_zero(accepted):
                    break
            else:
                return True
        return False


def vectorize_network(
    graph: nx.Graph,
    identifiers: IdentifierAssignment | None = None,
    seed=None,
    backend: str = "auto",
) -> VectorNetwork:
    """Convenience constructor mirroring :func:`compile_network`."""
    return VectorNetwork(graph, identifiers=identifiers, seed=seed, backend=backend)
