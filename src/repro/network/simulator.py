"""Round-based simulation of the local verification model.

The simulator takes a graph, an identifier assignment and a certificate
assignment, builds the radius-1 :class:`~repro.network.views.LocalView` of
every vertex (one round of communication in which each node sends its
identifier and certificate to its neighbours), runs the verifier at every
vertex and aggregates the decisions: the certification is accepted iff every
single vertex accepts (Section 3.3).

:class:`NetworkSimulator` is now a thin compatibility wrapper around the
compile-once engine of :mod:`repro.network.compiled`: :meth:`~NetworkSimulator.run`
delegates to a lazily-built :class:`~repro.network.compiled.CompiledNetwork`
so every existing call site gets the fast path, and
:meth:`~NetworkSimulator.delta_session` exposes the same engine's
incremental mode for enumeration-shaped callers.  The original per-run
view-building implementation is preserved as :meth:`NetworkSimulator.run_legacy`
— it is the executable reference semantics, used by the equivalence tests in
``tests/network/test_compiled.py`` and as the "before" baseline of
``benchmarks/bench_engine_speed.py``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Mapping

import networkx as nx

from repro.caching import graph_fingerprint
from repro.graphs.utils import ensure_connected
from repro.network.compiled import CompiledNetwork, SimulationResult
from repro.network.ids import IdentifierAssignment, assign_identifiers
from repro.network.views import LocalView, NeighborInfo

Vertex = Hashable
CertificateAssignment = Mapping[Vertex, bytes]
Verifier = Callable[[LocalView], bool]

__all__ = [
    "CertificateAssignment",
    "NetworkSimulator",
    "SimulationResult",
    "Verifier",
    "max_certificate_bits",
]


class NetworkSimulator:
    """Execute a local verifier on a graph, enforcing the radius-1 model."""

    def __init__(
        self,
        graph: nx.Graph,
        identifiers: IdentifierAssignment | None = None,
        seed: int | random.Random | None = None,
    ) -> None:
        self.graph = ensure_connected(graph)
        self.identifiers = identifiers or assign_identifiers(graph, seed=seed)
        missing = [v for v in graph.nodes() if v not in self.identifiers]
        if missing:
            raise ValueError(f"identifier assignment misses vertices: {missing}")
        self._compiled: CompiledNetwork | None = None
        self._compiled_fingerprint = None

    def compiled(self) -> CompiledNetwork:
        """The compile-once engine for this graph + identifier assignment.

        Recompiles when the graph was structurally mutated since the last
        call, so the wrapper keeps the legacy "views reflect the graph as it
        is now" semantics; loops that never mutate pay one O(n + m)
        fingerprint check per call, far below the cost of rebuilding views.
        """
        fingerprint = graph_fingerprint(self.graph)
        if self._compiled is None or fingerprint != self._compiled_fingerprint:
            self._compiled = CompiledNetwork(self.graph, identifiers=self.identifiers)
            self._compiled_fingerprint = fingerprint
        return self._compiled

    def build_views(self, certificates: CertificateAssignment) -> Dict[Vertex, LocalView]:
        """One communication round: every node learns its neighbours' ids/certs.

        Reference implementation: allocates fresh immutable views per call.
        """
        views: Dict[Vertex, LocalView] = {}
        n = self.graph.number_of_nodes()
        ids = self.identifiers
        # Coerce each certificate to bytes once, not once per edge endpoint.
        coerced = {
            v: cert if type(cert) is bytes else bytes(cert)
            for v, cert in certificates.items()
        }
        empty = b""
        for vertex in self.graph.nodes():
            neighbors = tuple(
                NeighborInfo(
                    identifier=ids[w],
                    certificate=coerced.get(w, empty),
                )
                for w in sorted(self.graph.neighbors(vertex), key=lambda x: ids[x])
            )
            views[vertex] = LocalView(
                identifier=ids[vertex],
                certificate=coerced.get(vertex, empty),
                neighbors=neighbors,
                total_vertices_hint=n,
            )
        return views

    def run(
        self,
        verifier: Verifier,
        certificates: CertificateAssignment,
        collect_views: bool = False,
    ) -> SimulationResult:
        """Run ``verifier`` at every vertex on the given certificate assignment.

        Delegates to the compiled engine; semantically identical to
        :meth:`run_legacy` (the equivalence tests assert exactly that).
        """
        return self.compiled().run(verifier, certificates, collect_views=collect_views)

    def delta_session(
        self,
        verifier: Verifier,
        certificates: CertificateAssignment,
        vertices=None,
    ):
        """An incremental verification session on the compiled topology.

        See :meth:`repro.network.compiled.CompiledNetwork.delta_session`;
        exposed here so wrapper-level callers reach delta mode without
        touching the engine directly.
        """
        return self.compiled().delta_session(verifier, certificates, vertices=vertices)

    def run_legacy(
        self,
        verifier: Verifier,
        certificates: CertificateAssignment,
        collect_views: bool = False,
    ) -> SimulationResult:
        """The original per-run implementation: rebuild every view, then verify.

        Kept as the executable specification of the model and as the
        benchmark baseline; prefer :meth:`run` (or :class:`CompiledNetwork`
        directly) everywhere else.
        """
        views = self.build_views(certificates)
        rejecting = []
        for vertex, view in views.items():
            if not verifier(view):
                rejecting.append(vertex)
        # The views hold the already-coerced certificate of every graph node
        # (missing ones as b""), so one pass over them gives the max size.
        max_bits = max((len(view.certificate) for view in views.values()), default=0) * 8
        return SimulationResult(
            accepted=not rejecting,
            rejecting_vertices=tuple(sorted(rejecting, key=repr)),
            max_certificate_bits=max_bits,
            views=views if collect_views else {},
        )


def max_certificate_bits(certificates: CertificateAssignment) -> int:
    """Size in bits of the largest certificate of an assignment."""
    return max((len(bytes(c)) * 8 for c in certificates.values()), default=0)
