"""Round-based simulation of the local verification model.

The simulator takes a graph, an identifier assignment and a certificate
assignment, builds the radius-1 :class:`~repro.network.views.LocalView` of
every vertex (one round of communication in which each node sends its
identifier and certificate to its neighbours), runs the verifier at every
vertex and aggregates the decisions: the certification is accepted iff every
single vertex accepts (Section 3.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Mapping

import networkx as nx

from repro.graphs.utils import ensure_connected
from repro.network.ids import IdentifierAssignment, assign_identifiers
from repro.network.views import LocalView, NeighborInfo

Vertex = Hashable
CertificateAssignment = Mapping[Vertex, bytes]
Verifier = Callable[[LocalView], bool]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of running a verifier at every vertex."""

    accepted: bool
    rejecting_vertices: tuple = ()
    max_certificate_bits: int = 0
    views: Dict[Vertex, LocalView] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.accepted


class NetworkSimulator:
    """Execute a local verifier on a graph, enforcing the radius-1 model."""

    def __init__(
        self,
        graph: nx.Graph,
        identifiers: IdentifierAssignment | None = None,
        seed: int | random.Random | None = None,
    ) -> None:
        self.graph = ensure_connected(graph)
        self.identifiers = identifiers or assign_identifiers(graph, seed=seed)
        missing = [v for v in graph.nodes() if v not in self.identifiers]
        if missing:
            raise ValueError(f"identifier assignment misses vertices: {missing}")

    def build_views(self, certificates: CertificateAssignment) -> Dict[Vertex, LocalView]:
        """One communication round: every node learns its neighbours' ids/certs."""
        views: Dict[Vertex, LocalView] = {}
        n = self.graph.number_of_nodes()
        for vertex in self.graph.nodes():
            neighbors = tuple(
                NeighborInfo(
                    identifier=self.identifiers[w],
                    certificate=bytes(certificates.get(w, b"")),
                )
                for w in sorted(self.graph.neighbors(vertex), key=lambda x: self.identifiers[x])
            )
            views[vertex] = LocalView(
                identifier=self.identifiers[vertex],
                certificate=bytes(certificates.get(vertex, b"")),
                neighbors=neighbors,
                total_vertices_hint=n,
            )
        return views

    def run(
        self,
        verifier: Verifier,
        certificates: CertificateAssignment,
        collect_views: bool = False,
    ) -> SimulationResult:
        """Run ``verifier`` at every vertex on the given certificate assignment."""
        views = self.build_views(certificates)
        rejecting = []
        for vertex, view in views.items():
            if not verifier(view):
                rejecting.append(vertex)
        max_bits = max(
            (len(bytes(certificates.get(v, b""))) * 8 for v in self.graph.nodes()),
            default=0,
        )
        return SimulationResult(
            accepted=not rejecting,
            rejecting_vertices=tuple(sorted(rejecting, key=repr)),
            max_certificate_bits=max_bits,
            views=views if collect_views else {},
        )


def max_certificate_bits(certificates: CertificateAssignment) -> int:
    """Size in bits of the largest certificate of an assignment."""
    return max((len(bytes(c)) * 8 for c in certificates.values()), default=0)
