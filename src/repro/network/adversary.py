"""Adversarial certificate assignments.

Soundness of a local certification says: on a no-instance, *every* certificate
assignment is rejected by at least one vertex.  Exercising this empirically
requires generating adversarial assignments.  We provide three generators of
increasing strength:

* :func:`corrupt_assignment` — structured corruption of an honest assignment
  (bit flips, swaps, truncation), modelling faults;
* :func:`random_assignment` — independent random certificates of a prescribed
  size, modelling a clueless prover;
* :func:`exhaustive_assignments` — every assignment of certificates of at most
  ``max_bits`` bits, usable only on tiny instances, modelling the strongest
  possible prover and therefore giving a *proof* of soundness (or of a lower
  bound) for that instance.

The delta-verification engine (:meth:`repro.network.compiled.CompiledNetwork.
delta_session`) consumes the same adversaries as *streams of single-vertex
changes* instead of full assignments: :func:`exhaustive_deltas` walks the
exact assignment set of :func:`exhaustive_assignments` as a mixed-radix Gray
code (every step changes one vertex's certificate, so each step re-verifies
one closed neighbourhood instead of the whole graph), and
:func:`corruption_deltas` expresses one corruption trial as the one or two
per-vertex changes it makes, so a corruption sweep re-verifies only the
corrupted vertices' neighbourhoods against the cached honest baseline.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Hashable, Iterator, List, Mapping, Sequence, Tuple

Vertex = Hashable


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def corruption_deltas(
    certificates: Mapping[Vertex, bytes],
    seed: int | random.Random | None = None,
    kind: str = "bitflip",
) -> List[Tuple[Vertex, bytes]]:
    """One corruption trial as the per-vertex changes it makes.

    Returns the ``(vertex, new certificate)`` deltas that
    :func:`corrupt_assignment` would apply for the same seed and kind — one
    delta for the single-vertex fault models, two for ``"swap"``, possibly
    none (nothing to corrupt).  A delta may equal the vertex's honest
    certificate (e.g. zeroing an already-zero certificate); callers that need
    "did anything change" semantics filter on that.  Draws from the RNG in
    exactly :func:`corrupt_assignment`'s order, so both forms of a trial are
    interchangeable under a shared seed.

    ``kind`` selects the fault model:

    * ``"bitflip"``   — flip one random bit of one random non-empty certificate;
    * ``"swap"``      — exchange the certificates of two random vertices;
    * ``"truncate"``  — drop the last byte of one random non-empty certificate;
    * ``"zero"``      — replace one certificate with all-zero bytes of the same length.
    """
    rng = _rng(seed)
    vertices = sorted(certificates.keys(), key=repr)
    if not vertices:
        return []
    if kind == "swap":
        if len(vertices) < 2:
            return []
        a, b = rng.sample(vertices, 2)
        return [(a, bytes(certificates[b])), (b, bytes(certificates[a]))]
    non_empty = [v for v in vertices if certificates[v]]
    if not non_empty:
        return []
    target = rng.choice(non_empty)
    data = bytearray(certificates[target])
    if kind == "bitflip":
        bit = rng.randrange(len(data) * 8)
        data[bit // 8] ^= 1 << (bit % 8)
    elif kind == "truncate":
        data = data[:-1]
    elif kind == "zero":
        data = bytearray(len(data))
    else:
        raise ValueError(f"unknown corruption kind: {kind}")
    return [(target, bytes(data))]


def corrupt_assignment(
    certificates: Mapping[Vertex, bytes],
    seed: int | random.Random | None = None,
    kind: str = "bitflip",
) -> Dict[Vertex, bytes]:
    """Return a corrupted copy of an honest certificate assignment.

    The full-assignment form of :func:`corruption_deltas` (see there for the
    fault models): the honest mapping with that trial's deltas applied.
    """
    corrupted = {v: bytes(c) for v, c in certificates.items()}
    for vertex, certificate in corruption_deltas(certificates, seed=seed, kind=kind):
        corrupted[vertex] = certificate
    return corrupted


def random_assignment(
    vertices: Sequence[Vertex],
    certificate_bytes: int,
    seed: int | random.Random | None = None,
) -> Dict[Vertex, bytes]:
    """Independent uniformly random certificates of a fixed byte length."""
    rng = _rng(seed)
    return {v: rng.randbytes(certificate_bytes) for v in vertices}


def exhaustive_assignments(
    vertices: Sequence[Vertex], max_bits: int
) -> Iterator[Dict[Vertex, bytes]]:
    """Yield *every* assignment of certificates of at most ``max_bits`` bits.

    Certificates are enumerated as bit strings of length exactly ``max_bits``
    (an honest prover can always pad), so the number of assignments is
    ``2 ** (max_bits * len(vertices))``.  Guard your instance sizes.
    """
    if max_bits < 0:
        raise ValueError("max_bits must be non-negative")
    n_bytes = (max_bits + 7) // 8
    options = []
    for value in range(1 << max_bits):
        options.append(value.to_bytes(n_bytes, "big") if n_bytes else b"")
    for combo in itertools.product(options, repeat=len(vertices)):
        yield dict(zip(vertices, combo))


def initial_exhaustive_assignment(
    vertices: Sequence[Vertex], max_bits: int
) -> Dict[Vertex, bytes]:
    """The assignment :func:`exhaustive_deltas` starts from: all-zero
    certificates of exactly ``max_bits`` bits (``b""`` when ``max_bits == 0``)."""
    if max_bits < 0:
        raise ValueError("max_bits must be non-negative")
    zero = bytes((max_bits + 7) // 8)
    return {v: zero for v in vertices}


def exhaustive_deltas(
    vertices: Sequence[Vertex], max_bits: int
) -> Iterator[Tuple[Vertex, bytes]]:
    """The exhaustive adversary as a stream of single-vertex deltas.

    Walks *exactly* the assignment set of :func:`exhaustive_assignments` —
    all ``(2 ** max_bits) ** len(vertices)`` assignments of ``max_bits``-bit
    certificates — as a mixed-radix reflected Gray code (Knuth 7.2.1.1,
    Algorithm H): starting from :func:`initial_exhaustive_assignment`, each
    of the ``(2 ** max_bits) ** len(vertices) - 1`` yielded
    ``(vertex, certificate)`` pairs changes one vertex's certificate and
    produces the next assignment, never repeating one.  Feed the stream to
    :meth:`repro.network.compiled.DeltaSession.apply` and every assignment of
    the exhaustive sweep costs one closed-neighbourhood re-verification
    instead of a full-graph run.
    """
    if max_bits < 0:
        raise ValueError("max_bits must be non-negative")
    n = len(vertices)
    radix = 1 << max_bits
    if n == 0 or radix == 1:
        return
    n_bytes = (max_bits + 7) // 8
    options = [value.to_bytes(n_bytes, "big") for value in range(radix)]
    digits = [0] * n
    direction = [1] * n
    focus = list(range(n + 1))
    while True:
        j = focus[0]
        focus[0] = 0
        if j == n:
            return
        digits[j] += direction[j]
        yield vertices[j], options[digits[j]]
        if digits[j] == 0 or digits[j] == radix - 1:
            direction[j] = -direction[j]
            focus[j] = focus[j + 1]
            focus[j + 1] = j + 1
