"""Adversarial certificate assignments.

Soundness of a local certification says: on a no-instance, *every* certificate
assignment is rejected by at least one vertex.  Exercising this empirically
requires generating adversarial assignments.  We provide three generators of
increasing strength:

* :func:`corrupt_assignment` — structured corruption of an honest assignment
  (bit flips, swaps, truncation), modelling faults;
* :func:`random_assignment` — independent random certificates of a prescribed
  size, modelling a clueless prover;
* :func:`exhaustive_assignments` — every assignment of certificates of at most
  ``max_bits`` bits, usable only on tiny instances, modelling the strongest
  possible prover and therefore giving a *proof* of soundness (or of a lower
  bound) for that instance.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Hashable, Iterator, Mapping, Sequence

Vertex = Hashable


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def corrupt_assignment(
    certificates: Mapping[Vertex, bytes],
    seed: int | random.Random | None = None,
    kind: str = "bitflip",
) -> Dict[Vertex, bytes]:
    """Return a corrupted copy of an honest certificate assignment.

    ``kind`` selects the fault model:

    * ``"bitflip"``   — flip one random bit of one random non-empty certificate;
    * ``"swap"``      — exchange the certificates of two random vertices;
    * ``"truncate"``  — drop the last byte of one random non-empty certificate;
    * ``"zero"``      — replace one certificate with all-zero bytes of the same length.
    """
    rng = _rng(seed)
    corrupted = {v: bytes(c) for v, c in certificates.items()}
    vertices = sorted(corrupted.keys(), key=repr)
    if not vertices:
        return corrupted
    if kind == "swap":
        if len(vertices) >= 2:
            a, b = rng.sample(vertices, 2)
            corrupted[a], corrupted[b] = corrupted[b], corrupted[a]
        return corrupted
    non_empty = [v for v in vertices if corrupted[v]]
    if not non_empty:
        return corrupted
    target = rng.choice(non_empty)
    data = bytearray(corrupted[target])
    if kind == "bitflip":
        bit = rng.randrange(len(data) * 8)
        data[bit // 8] ^= 1 << (bit % 8)
    elif kind == "truncate":
        data = data[:-1]
    elif kind == "zero":
        data = bytearray(len(data))
    else:
        raise ValueError(f"unknown corruption kind: {kind}")
    corrupted[target] = bytes(data)
    return corrupted


def random_assignment(
    vertices: Sequence[Vertex],
    certificate_bytes: int,
    seed: int | random.Random | None = None,
) -> Dict[Vertex, bytes]:
    """Independent uniformly random certificates of a fixed byte length."""
    rng = _rng(seed)
    return {v: rng.randbytes(certificate_bytes) for v in vertices}


def exhaustive_assignments(
    vertices: Sequence[Vertex], max_bits: int
) -> Iterator[Dict[Vertex, bytes]]:
    """Yield *every* assignment of certificates of at most ``max_bits`` bits.

    Certificates are enumerated as bit strings of length exactly ``max_bits``
    (an honest prover can always pad), so the number of assignments is
    ``2 ** (max_bits * len(vertices))``.  Guard your instance sizes.
    """
    if max_bits < 0:
        raise ValueError("max_bits must be non-negative")
    n_bytes = (max_bits + 7) // 8
    options = []
    for value in range(1 << max_bits):
        options.append(value.to_bytes(n_bytes, "big") if n_bytes else b"")
    for combo in itertools.product(options, repeat=len(vertices)):
        yield dict(zip(vertices, combo))
