"""Vertex types in an elimination tree (Section 6.1).

The *ancestor vector* of a vertex ``v`` at depth ``i`` records, for each
strict ancestor, whether ``v`` is adjacent to it in the graph.  The *type* of
``v`` is its subtree where every vertex is labelled by its ancestor vector —
identifiers are erased, so distinct vertices can share a type.  Types are
represented as canonical nested tuples so they can be hashed, compared and
counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

import networkx as nx

from repro.treedepth.elimination_tree import EliminationTree

Vertex = Hashable

AncestorVector = Tuple[int, ...]


@dataclass(frozen=True)
class VertexType:
    """Canonical type of a vertex: its ancestor vector plus the multiset of
    the types of its children, stored as a sorted tuple of (type, count)."""

    ancestor_vector: AncestorVector
    child_types: Tuple[Tuple["VertexType", int], ...]

    def __str__(self) -> str:
        children = ", ".join(f"{count}x{child}" for child, count in self.child_types)
        return f"T(adj={''.join(map(str, self.ancestor_vector))}; [{children}])"

    @property
    def subtree_size(self) -> int:
        """Number of vertices of any subtree having this type."""
        return 1 + sum(count * child.subtree_size for child, count in self.child_types)


def ancestor_vector(graph: nx.Graph, tree: EliminationTree, vertex: Vertex) -> AncestorVector:
    """0/1 adjacency of ``vertex`` to its strict ancestors, root first."""
    ancestors = list(reversed(tree.ancestors(vertex)))  # root, ..., parent
    return tuple(1 if graph.has_edge(vertex, ancestor) else 0 for ancestor in ancestors)


def compute_types(graph: nx.Graph, tree: EliminationTree) -> Dict[Vertex, VertexType]:
    """Type of every vertex of ``graph`` with respect to the model ``tree``."""
    types: Dict[Vertex, VertexType] = {}
    for vertex in tree.iter_bottom_up():
        child_counter: Dict[VertexType, int] = {}
        for child in tree.children(vertex):
            child_type = types[child]
            child_counter[child_type] = child_counter.get(child_type, 0) + 1
        child_types = tuple(sorted(child_counter.items(), key=lambda item: repr(item[0])))
        types[vertex] = VertexType(
            ancestor_vector=ancestor_vector(graph, tree, vertex),
            child_types=child_types,
        )
    return types


def end_type_table(end_types: Dict[Vertex, VertexType]) -> Dict[VertexType, int]:
    """Assign a small integer identifier to every distinct type.

    Used when encoding end types into certificates: the paper encodes an end
    type on :math:`\\log f_i(k,t)` bits; we encode the index into this table,
    which is never larger.
    """
    table: Dict[VertexType, int] = {}
    for vertex in sorted(end_types, key=repr):
        vertex_type = end_types[vertex]
        if vertex_type not in table:
            table[vertex_type] = len(table)
    return table
