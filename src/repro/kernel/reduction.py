"""The k-reduced graph (Sections 6.1 and 6.2).

``k_reduced_graph`` performs the paper's valid-pruning process: while some
vertex (of the largest possible depth) has more than ``k`` children of the
same type, delete the subtree rooted at one of those children.  The function
returns the kernel together with the bookkeeping the certification of
Proposition 6.4 needs: which vertices were pruned roots, which were merely
deleted, and the *end type* of every vertex of the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

import networkx as nx

from repro.treedepth.elimination_tree import EliminationTree
from repro.kernel.types import VertexType, compute_types

Vertex = Hashable


@dataclass
class KernelizationResult:
    """Everything produced by one run of the valid-pruning process."""

    original_graph: nx.Graph
    original_tree: EliminationTree
    kernel_graph: nx.Graph
    kernel_tree: EliminationTree
    k: int
    pruned_roots: Set[Vertex] = field(default_factory=set)
    """Vertices at which a pruning operation was applied (roots of deleted subtrees)."""
    deleted_vertices: Set[Vertex] = field(default_factory=set)
    """All vertices removed from the graph (pruned roots and their descendants)."""
    end_types: Dict[Vertex, VertexType] = field(default_factory=dict)
    """End type of every vertex of the *original* graph (Section 6.1)."""

    @property
    def kernel_size(self) -> int:
        return self.kernel_graph.number_of_nodes()

    def is_pruned(self, vertex: Vertex) -> bool:
        return vertex in self.pruned_roots

    def surviving_vertices(self) -> Set[Vertex]:
        return set(self.kernel_graph.nodes())


def _restrict_tree(tree: EliminationTree, keep: Set[Vertex]) -> EliminationTree:
    """Restriction of an elimination tree to a downward-closed... actually to a
    set closed under taking ancestors (which pruning guarantees)."""
    parent: Dict[Vertex, Optional[Vertex]] = {}
    for vertex in keep:
        parent_vertex = tree.parent[vertex]
        if parent_vertex is not None and parent_vertex not in keep:
            raise ValueError("kept vertex set is not closed under ancestors")
        parent[vertex] = parent_vertex
    return EliminationTree(parent)


def k_reduced_graph(
    graph: nx.Graph, tree: EliminationTree, k: int
) -> KernelizationResult:
    """Compute a ``k``-reduced graph of ``graph`` with respect to the model ``tree``.

    The pruning is applied at a vertex of the largest possible depth first, as
    required by the size analysis of Section 6.2.  Ties are broken
    deterministically (by vertex representation) so the function is
    reproducible.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    current_graph = graph.copy()
    current_parent: Dict[Vertex, Optional[Vertex]] = dict(tree.parent)
    pruned_roots: Set[Vertex] = set()
    deleted: Set[Vertex] = set()
    end_types: Dict[Vertex, VertexType] = {}

    while True:
        current_tree = EliminationTree(dict(current_parent))
        types = compute_types(current_graph, current_tree)
        # Find the deepest vertex with more than k children of one type.
        candidate: Optional[Vertex] = None
        candidate_depth = -1
        candidate_child_type: Optional[VertexType] = None
        for vertex in current_tree.vertices:
            counts: Dict[VertexType, int] = {}
            for child in current_tree.children(vertex):
                counts[types[child]] = counts.get(types[child], 0) + 1
            overfull = [t for t, count in counts.items() if count > k]
            if not overfull:
                continue
            depth = current_tree.depth_of(vertex)
            if depth > candidate_depth or (
                depth == candidate_depth and repr(vertex) < repr(candidate)
            ):
                candidate = vertex
                candidate_depth = depth
                candidate_child_type = min(overfull, key=repr)
        if candidate is None:
            # No more valid pruning: record end types of all remaining vertices.
            for vertex in current_tree.vertices:
                end_types[vertex] = types[vertex]
            kernel_tree = current_tree
            kernel_graph = current_graph
            break
        # Prune one child of the over-full type (deterministic choice).
        children_of_type = [
            child
            for child in current_tree.children(candidate)
            if types[child] == candidate_child_type
        ]
        pruned_child = min(children_of_type, key=repr)
        subtree = current_tree.subtree_vertices(pruned_child)
        pruned_roots.add(pruned_child)
        for vertex in subtree:
            deleted.add(vertex)
            # The end type of a deleted vertex is its type in the graph it was
            # deleted from (Section 6.1).
            end_types.setdefault(vertex, types[vertex])
            current_graph.remove_node(vertex)
            del current_parent[vertex]

    return KernelizationResult(
        original_graph=graph,
        original_tree=tree,
        kernel_graph=kernel_graph,
        kernel_tree=kernel_tree,
        k=k,
        pruned_roots=pruned_roots,
        deleted_vertices=deleted,
        end_types=end_types,
    )


def type_count_bound(depth: int, k: int, t: int) -> int:
    """The paper's bound :math:`f_d(k,t) = 2^d (k+1)^{f_{d+1}(k,t)}` with
    :math:`f_t(k,t) = 2^t` (Proposition 6.2).

    The value grows as a tower of exponentials; callers that only need its
    order of magnitude should use :func:`type_count_bound_log2`.
    """
    if depth > t:
        raise ValueError("depth cannot exceed the treedepth bound t")
    if depth == t:
        return 2**t
    return 2**depth * (k + 1) ** type_count_bound(depth + 1, k, t)


def type_count_bound_log2(depth: int, k: int, t: int) -> float:
    """log2 of :func:`type_count_bound`, computed without materialising the tower."""
    import math

    if depth > t:
        raise ValueError("depth cannot exceed the treedepth bound t")
    if depth == t:
        return float(t)
    return depth + type_count_bound(depth + 1, k, t) * math.log2(k + 1)
