"""Kernelization for MSO/FO model checking on bounded-treedepth graphs (Section 6).

The paper's kernel is the *k-reduced graph*: starting from a coherent
elimination tree, repeatedly delete a subtree rooted at a child whose parent
has more than ``k`` children of the same *type* (always working at the
largest possible depth).  The result has size bounded by a function of ``k``
and the treedepth only (Proposition 6.2) and satisfies exactly the same FO
sentences of quantifier depth at most ``k`` as the original graph
(Proposition 6.3).
"""

from repro.kernel.types import VertexType, ancestor_vector, compute_types, end_type_table
from repro.kernel.reduction import (
    KernelizationResult,
    k_reduced_graph,
    type_count_bound,
    type_count_bound_log2,
)

__all__ = [
    "VertexType",
    "ancestor_vector",
    "compute_types",
    "end_type_table",
    "KernelizationResult",
    "k_reduced_graph",
    "type_count_bound",
    "type_count_bound_log2",
]
