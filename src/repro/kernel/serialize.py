"""Serialising vertex types and reconstructing kernels from them.

A :class:`~repro.kernel.types.VertexType` fully determines, up to
isomorphism, the subtree it describes and all its graph edges (every edge of
a bounded-treedepth graph joins a vertex to one of its ancestors, and the
ancestor vectors record exactly those edges).  The MSO certification of
Theorem 2.6 exploits this: instead of shipping the kernel graph explicitly,
the certificates ship a *type table* (whose size depends only on the formula
and the treedepth) and the end type of the root; every node reconstructs the
kernel from the root's type and model-checks the formula on it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.core.encoding import CertificateFormatError, CertificateReader, CertificateWriter
from repro.kernel.types import VertexType
from repro.treedepth.elimination_tree import EliminationTree


def topological_type_table(types: Sequence[VertexType]) -> List[VertexType]:
    """All types reachable from ``types`` (children included), children first."""
    table: List[VertexType] = []
    seen: Dict[VertexType, int] = {}

    def visit(vertex_type: VertexType) -> None:
        if vertex_type in seen:
            return
        for child, _count in vertex_type.child_types:
            visit(child)
        seen[vertex_type] = len(table)
        table.append(vertex_type)

    for vertex_type in types:
        visit(vertex_type)
    return table


def encode_type_table(table: Sequence[VertexType]) -> bytes:
    """Encode a children-first type table as bytes."""
    index = {vertex_type: i for i, vertex_type in enumerate(table)}
    writer = CertificateWriter()
    writer.write_uint(len(table))
    for vertex_type in table:
        writer.write_bool_list([bool(b) for b in vertex_type.ancestor_vector])
        writer.write_uint(len(vertex_type.child_types))
        for child, count in vertex_type.child_types:
            child_index = index[child]
            if child_index >= index[vertex_type]:
                raise ValueError("type table is not in children-first order")
            writer.write_uint(child_index)
            writer.write_uint(count)
    return writer.getvalue()


def decode_type_table(data: bytes) -> List[VertexType]:
    """Inverse of :func:`encode_type_table`."""
    reader = CertificateReader(data)
    size = reader.read_uint()
    if size > 100_000:
        raise CertificateFormatError("unreasonable type table size")
    table: List[VertexType] = []
    for position in range(size):
        ancestor_vector = tuple(1 if b else 0 for b in reader.read_bool_list())
        n_children = reader.read_uint()
        children: List[Tuple[VertexType, int]] = []
        for _ in range(n_children):
            child_index = reader.read_uint()
            count = reader.read_uint()
            if child_index >= position:
                raise CertificateFormatError("type table entry refers forward")
            children.append((table[child_index], count))
        table.append(
            VertexType(
                ancestor_vector=ancestor_vector,
                child_types=tuple(sorted(children, key=lambda item: repr(item[0]))),
            )
        )
    reader.expect_end()
    return table


def graph_from_type(root_type: VertexType) -> Tuple[nx.Graph, EliminationTree]:
    """Materialise the graph (and its elimination tree) described by a type.

    Vertices are consecutive integers; the root is vertex 0.  Every vertex is
    connected to the ancestors its ancestor vector points at; in particular
    the reconstruction of the end type of a kernel's root is (isomorphic to)
    the kernel itself.
    """
    graph = nx.Graph()
    parent: Dict[int, int | None] = {}
    counter = 0

    def build(vertex_type: VertexType, ancestors: List[int]) -> None:
        nonlocal counter
        vertex = counter
        counter += 1
        graph.add_node(vertex)
        parent[vertex] = ancestors[-1] if ancestors else None
        vector = vertex_type.ancestor_vector
        if len(vector) != len(ancestors):
            raise ValueError(
                "ancestor vector length does not match the depth of the type"
            )
        for ancestor, bit in zip(ancestors, vector):
            if bit:
                graph.add_edge(vertex, ancestor)
        for child, count in vertex_type.child_types:
            for _ in range(count):
                build(child, ancestors + [vertex])

    build(root_type, [])
    return graph, EliminationTree(parent)
