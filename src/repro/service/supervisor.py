"""Elastic fleet supervision for the shard driver.

The PR-6 driver tolerated worker deaths by shrinking: every lost member
meant less parallelism until, with the last one gone, the drive failed.
:class:`FleetSupervisor` closes the loop — it watches the drive's ledger
(:class:`~repro.service.driver._DriveState`) and works the fleet's levers
(:meth:`~repro.service.driver.LocalFleet.spawn_member` /
:meth:`~repro.service.driver.LocalFleet.stop_member`) to keep the member
count inside a demand band:

* **heal** — when a member dies mid-drive, spawn a replacement and enlist
  it with the driver (the driver registers a worker thread for it and the
  ledger wakes the queue);
* **scale** — the desired size is ``clamp(work_left, min_workers,
  max_workers)``: a drained queue retires idle members down to
  ``min_workers``, a deep queue fills back up to ``max_workers``.
  Retirement is cooperative: the ledger marks the member and the member
  confirms *between* requests, so an in-flight dispatch always lands
  before its worker's process is stopped;
* **bound** — every spawn, successful or not, consumes one unit of a
  single respawn budget, and consecutive spawns back off exponentially.  A
  crash-looping fleet therefore converges to a clean
  :class:`~repro.service.driver.DriverError` ("respawn budget exhausted")
  instead of forking forever.  While budget remains, the ledger's
  ``recovery_possible`` hook keeps an all-workers-lost drive open for the
  replacement the supervisor is about to spawn.

The supervisor runs on its own thread inside
:meth:`~repro.service.driver.ShardDriver.drive`; it owns no sockets and
sends no requests — all coordination goes through the ledger, which is the
single source of truth for liveness, retirement and completion.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Tuple

__all__ = ["FleetSupervisor"]


class FleetSupervisor:
    """Keep a :class:`~repro.service.driver.LocalFleet` sized to demand.

    Parameters
    ----------
    fleet:
        The elastic fleet whose members are spawned / stopped.  Anything
        with ``spawn_member() -> (address, label)``, ``stop_member(label)``
        and ``reap_dead() -> [label]`` works (tests substitute fakes).
    min_workers:
        Never retire below this many active members while work remains.
    max_workers:
        Never grow beyond this many active members (default: no growth
        beyond the starting size is requested unless the queue demands it;
        pass the band explicitly for elastic drives).
    respawn_budget:
        Total spawns this supervisor may ever attempt (replacements and
        scale-ups alike; failed spawns count).  Exhaustion with no active
        worker and work left fails the drive.
    backoff_s:
        Initial delay between consecutive spawns, doubled per spawn.
    poll_interval_s:
        The supervision heartbeat.
    """

    def __init__(
        self,
        fleet: Any,
        min_workers: int = 1,
        max_workers: Optional[int] = None,
        respawn_budget: int = 3,
        backoff_s: float = 0.5,
        poll_interval_s: float = 0.1,
    ) -> None:
        if min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        if max_workers is not None and max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if respawn_budget < 0:
            raise ValueError("respawn_budget must be >= 0")
        self.fleet = fleet
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.respawn_budget = respawn_budget
        self.backoff_s = backoff_s
        self.poll_interval_s = poll_interval_s
        self._budget_left = respawn_budget

    def can_spawn(self) -> bool:
        """Whether a replacement is still possible (the ledger's
        ``recovery_possible`` hook)."""
        return self._budget_left > 0

    def _desired(self, active: int, work: int) -> int:
        """The demand band: clamp(work_left, min_workers, max_workers)."""
        if work <= 0:
            return active
        ceiling = self.max_workers if self.max_workers is not None else active
        return max(self.min_workers, min(ceiling, work))

    def run(
        self,
        state: Any,
        enlist: Callable[[Tuple[str, int]], str],
    ) -> None:
        """Supervise ``state`` until the drive finishes.

        ``enlist`` is the driver's callback: given a freshly spawned
        member's address it registers a worker thread and returns the
        ledger label.  Called by :meth:`ShardDriver.drive` on a dedicated
        thread; not meant to be invoked twice.
        """
        backoff = self.backoff_s
        next_spawn_at = 0.0
        try:
            while not state.finished():
                # Members whose process died: the driver notices the broken
                # connection on its own; reaping here just records them so
                # the fleet's books stay clean.
                self.fleet.reap_dead()
                for label in state.drain_retired():
                    self.fleet.stop_member(label)

                active = len(state.active_workers())
                work = state.work_left()
                desired = self._desired(active, work)

                if work > 0 and active < desired:
                    if self._budget_left <= 0:
                        if active == 0:
                            state.fail(
                                "supervisor",
                                None,
                                f"respawn budget exhausted with {work} "
                                f"shard(s) unfinished and no workers left",
                            )
                            return
                        # Degraded but alive: the survivors finish the work.
                    elif time.monotonic() >= next_spawn_at:
                        self._budget_left -= 1
                        next_spawn_at = time.monotonic() + backoff
                        backoff *= 2
                        try:
                            address, label = self.fleet.spawn_member()
                        except Exception as error:
                            state.log(
                                "spawn-failed",
                                "supervisor",
                                None,
                                f"{error} (budget left: {self._budget_left})",
                            )
                        else:
                            enlist(address)
                            state.log(
                                "spawn",
                                label,
                                None,
                                f"replacement member up "
                                f"(budget left: {self._budget_left})",
                            )
                elif work > 0 and active > desired:
                    # One retirement request per heartbeat; the member
                    # confirms between requests and lands in
                    # drain_retired() above on a later beat.
                    state.request_retire()

                time.sleep(self.poll_interval_s)
        finally:
            # The drive is over (or failed): stop anything that confirmed
            # retirement after the last heartbeat.
            for label in state.drain_retired():
                self.fleet.stop_member(label)
