"""Typed request/response messages of the certification service.

Every interaction with :class:`~repro.service.core.CertificationService` —
in-process through :mod:`repro.api`, or over the JSON-lines wire protocol of
:mod:`repro.service.protocol` — is one of the dataclasses here.  They are
plain data: JSON round-trippable (``to_dict``/``from_dict``), with no
references to schemes, graphs or caches, so the same message works across a
process or socket boundary.

Failures are data too.  Instead of letting ``NotAYesInstance``, registry
``RegistryError`` s, ``GraphSpecError`` s or the exact-decision
``ValueError`` of ``holds()`` escape as tracebacks, the service maps each to
an :class:`ErrorResponse` carrying a machine-readable ``code`` from
:data:`ERROR_CODES` plus the human-readable message — callers switch on the
code, humans read the message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.engines import VALID_ENGINES, validate_engine

#: Machine-readable error codes an :class:`ErrorResponse` may carry.
ERROR_CODES: Tuple[str, ...] = (
    "unknown-scheme",      # registry key not found (message lists suggestions)
    "invalid-param",       # parameter validation failed (type/range/unknown key)
    "invalid-graph",       # graph specifier did not resolve to a graph
    "invalid-request",     # malformed wire message / unknown op / bad field
    "invalid-formula",     # a --formula failed to parse or compile (message
                           # carries the offending token position)
    "not-a-yes-instance",  # the honest prover was asked to prove a no-instance
    "undecidable",         # ground truth raised (e.g. exact treedepth too large)
    "skipped",             # batch member not run because the batch exited early
    "timeout",             # the request's deadline expired before it finished
    "cancelled",           # cancelled by a cancel op / dead connection / batch stop
    "connect-timeout",     # client: could not connect within the retry budget
    "internal-error",      # anything else; the message carries the repr
    "superseded",          # driver-side: a late answer for a dispatch that was
                           # re-assigned (fencing discarded it, never merged)
)


class ProtocolError(ValueError):
    """A wire message that does not decode into a known request."""


def _dataclass_dict(message: Any) -> Dict[str, Any]:
    data: Dict[str, Any] = {"op": message.op}
    for spec in fields(message):
        value = getattr(message, spec.name)
        if isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, Mapping):
            value = dict(value)
        data[spec.name] = value
    return data


def _validate_fault_tolerance_fields(message: Any) -> None:
    """Validate the ``deadline_s`` / ``request_id`` / ``attempt`` trio every
    work-carrying request shares (bad values raise ValueError, which the wire
    path turns into a ``ProtocolError`` — the sender's fault, never a
    traceback).  ``attempt`` is the shard driver's fencing counter: it rides
    along so a response can be correlated with the dispatch attempt that
    produced it, and a late answer for a superseded attempt can be
    discarded instead of merged twice."""
    deadline = getattr(message, "deadline_s", None)
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise ValueError(f"deadline_s must be a number of seconds, got {deadline!r}")
        if deadline <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline!r}")
        object.__setattr__(message, "deadline_s", float(deadline))
    request_id = getattr(message, "request_id", None)
    if request_id is not None and not isinstance(request_id, str):
        raise ValueError(f"request_id must be a string, got {request_id!r}")
    attempt = getattr(message, "attempt", None)
    if attempt is not None:
        if isinstance(attempt, bool) or not isinstance(attempt, int):
            raise ValueError(f"attempt must be an integer, got {attempt!r}")
        if attempt < 1:
            raise ValueError(f"attempt must be at least 1, got {attempt!r}")


def _validate_engine_field(
    message: Any, allowed: Sequence[str] = VALID_ENGINES
) -> None:
    """Validate the ``engine`` field at the message boundary.

    Raises ValueError (→ ``ProtocolError`` on the wire path) listing the
    valid engines from the one shared place, so a bad engine never travels
    further than decoding.
    """
    engine = getattr(message, "engine", None)
    if not isinstance(engine, str):
        raise ValueError(f"engine must be a string, got {engine!r}")
    validate_engine(engine, allowed=allowed, context=f"{message.op!r} requests")


def _validate_scheme_or_formula(message: Any) -> None:
    """Enforce the scheme/formula exclusivity shared by certify and sweep.

    Exactly one of ``scheme`` (a registry key) and ``formula`` (MSO concrete
    syntax, compiled on the fly) must be set.  Raises ValueError — which the
    wire path turns into a ``ProtocolError`` per the one-error-shape
    convention — so a request carrying both or neither never reaches a
    handler.
    """
    scheme = getattr(message, "scheme", None)
    formula = getattr(message, "formula", None)
    if scheme is not None and formula is not None:
        raise ValueError("'scheme' and 'formula' are mutually exclusive; set one")
    if scheme is None and formula is None:
        raise ValueError("one of 'scheme' or 'formula' is required")
    if formula is not None and not isinstance(formula, str):
        raise ValueError(f"formula must be a string, got {formula!r}")
    if scheme is not None and not isinstance(scheme, str):
        raise ValueError(f"scheme must be a string, got {scheme!r}")


def _normalize_shard(shard: Any) -> Optional[Tuple[int, int]]:
    if shard is None:
        return None
    try:
        index, count = shard
        return (int(index), int(count))
    except (TypeError, ValueError):
        raise ValueError(f"shard must be an (i, k) pair, got {shard!r}") from None


def _from_dict(cls, data: Mapping[str, Any], *, kind: str):
    payload = dict(data)
    op = payload.pop("op", cls.op)
    if op != cls.op:
        raise ProtocolError(f"expected a {cls.op!r} {kind}, got op {op!r}")
    known = {spec.name for spec in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(f"unknown {cls.op!r} field(s) {unknown}")
    try:
        # TypeError: missing/duplicate fields; ValueError/TypeError from
        # __post_init__: field values that do not coerce (sizes=["a"],
        # params="abc").  All are the sender's fault, so all are protocol
        # errors — never tracebacks.
        return cls(**payload)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad {cls.op!r} {kind}: {error}") from None


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CertifyRequest:
    """One certification question: run ``scheme`` on ``graph``, full harness.

    ``graph`` is a ``family:size`` / ``file:PATH`` specifier (the shared
    language of :func:`repro.graphs.generators.build_graph_spec`); in-process
    callers may hand the service an already-built graph alongside the
    request, in which case ``graph`` is just the label reported back.
    ``include_certificates`` asks for the raw per-vertex certificates of a
    yes-instance in the response.

    ``deadline_s`` bounds the whole request: past the deadline the service
    answers a structured ``timeout`` error instead of blocking the
    connection.  ``request_id`` makes the request idempotently resubmittable
    — the service remembers the response per id, so a retry after a broken
    transport replays the answer instead of recomputing it (and the id is
    the handle a ``cancel`` op targets).

    ``formula`` (mutually exclusive with ``scheme``) asks for an *ephemeral*
    scheme compiled from MSO concrete syntax instead of a catalogue lookup;
    ``params`` then carries the compilation knobs (``t``, ``k``, ``route``,
    ``model``) and parse/compile failures answer with the
    ``invalid-formula`` code.
    """

    op = "certify"

    graph: str
    scheme: Optional[str] = None
    formula: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    trials: int = 20
    engine: str = "auto"
    include_certificates: bool = False
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None
    attempt: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        _validate_scheme_or_formula(self)
        _validate_engine_field(self)
        _validate_fault_tolerance_fields(self)

    def to_dict(self) -> Dict[str, Any]:
        return _dataclass_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CertifyRequest":
        return _from_dict(cls, data, kind="request")


@dataclass(frozen=True)
class SweepRequest:
    """A whole certificate-size series as one request.

    Mirrors :class:`repro.experiments.SweepSpec` field-for-field (the service
    builds the spec and runs it through the one declarative pipeline); the
    response carries the artifact payload, bound verdict included.

    ``shard=(i, k)`` runs only the grid points with global index ≡ i (mod k)
    — the wire form of ``sweep --shard i/k``, which is what lets the shard
    driver fan one experiment out over a fleet of serve processes and merge
    the partial payloads back into the exact unsharded artifact.

    ``formula`` (mutually exclusive with ``scheme``) sweeps an *ephemeral*
    scheme compiled from MSO concrete syntax; ``params`` then carries the
    compilation knobs (``t``, ``k``, ``route``, ``model``) and the run goes
    through :class:`repro.experiments.FormulaSpec` instead of ``SweepSpec``.
    """

    op = "sweep"

    family: str
    sizes: Tuple[int, ...]
    scheme: Optional[str] = None
    formula: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    trials: int = 20
    seed: int = 0
    engine: str = "auto"
    check_bound: bool = True
    measure: str = "full"
    id_exponent: Optional[int] = None
    shard: Optional[Tuple[int, int]] = None
    name: Optional[str] = None
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None
    attempt: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "shard", _normalize_shard(self.shard))
        _validate_scheme_or_formula(self)
        _validate_engine_field(self)
        _validate_fault_tolerance_fields(self)

    def to_dict(self) -> Dict[str, Any]:
        return _dataclass_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepRequest":
        return _from_dict(cls, data, kind="request")


@dataclass(frozen=True)
class FormulaRequest:
    """A certificate-size series for an ad-hoc MSO formula as one request.

    Mirrors :class:`repro.experiments.FormulaSpec` field-for-field, the same
    way :class:`SweepRequest` mirrors ``SweepSpec`` — including the
    ``shard`` restriction, so formula series fan out over the shard driver
    exactly like catalogue sweeps.  The formula is compiled once per serve
    process (fingerprint-keyed cache) and evaluated at every grid point;
    parse/compile failures answer with the ``invalid-formula`` code.
    """

    op = "formula"

    formula: str
    family: str
    sizes: Tuple[int, ...]
    t: int = 2
    k: Optional[int] = None
    route: str = "treedepth"
    model: str = "auto"
    trials: int = 20
    seed: int = 0
    engine: str = "auto"
    check_bound: bool = True
    shard: Optional[Tuple[int, int]] = None
    name: Optional[str] = None
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None
    attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.formula, str) or not self.formula.strip():
            raise ValueError("formula must be a non-empty string")
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "shard", _normalize_shard(self.shard))
        _validate_engine_field(self)
        _validate_fault_tolerance_fields(self)

    def to_dict(self) -> Dict[str, Any]:
        return _dataclass_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FormulaRequest":
        return _from_dict(cls, data, kind="request")


@dataclass(frozen=True)
class StatsRequest:
    """Ask the service for its request counters and cache statistics."""

    op = "stats"

    def to_dict(self) -> Dict[str, Any]:
        return _dataclass_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StatsRequest":
        return _from_dict(cls, data, kind="request")


@dataclass(frozen=True)
class LowerBoundRequest:
    """A whole Section-7 lower-bound search as one request.

    Mirrors :class:`repro.experiments.LowerBoundSpec` field-for-field, the
    same way :class:`SweepRequest` mirrors ``SweepSpec`` — including the
    ``shard`` restriction, so lower-bound searches fan out over the shard
    driver exactly like sweeps do.
    """

    op = "lower-bound"

    construction: str
    sizes: Tuple[int, ...]
    check_dichotomy: bool = True
    simulate: bool = False
    simulate_bits: int = 1
    max_side_bits: int = 12
    engine: str = "auto"
    check_bound: bool = True
    seed: int = 0
    shard: Optional[Tuple[int, int]] = None
    name: Optional[str] = None
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None
    attempt: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "shard", _normalize_shard(self.shard))
        _validate_engine_field(self, allowed=("compiled", "delta", "vector", "auto"))
        _validate_fault_tolerance_fields(self)

    def to_dict(self) -> Dict[str, Any]:
        return _dataclass_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LowerBoundRequest":
        return _from_dict(cls, data, kind="request")


@dataclass(frozen=True)
class RadiusRequest:
    """A whole Appendix A.1 radius-verification series as one request.

    Mirrors :class:`repro.experiments.RadiusSpec` field-for-field, the same
    way :class:`SweepRequest` mirrors ``SweepSpec`` — including the
    ``shard`` restriction, so radius series ride ``shard-drive`` like every
    other experiment kind.  (No ``engine`` field: the radius simulator is
    its own engine — it explores radius-``r`` balls, not certificate
    assignments.)
    """

    op = "radius"

    family: str
    sizes: Tuple[int, ...]
    bound: int = 3
    radius: int = 0
    seed: int = 0
    shard: Optional[Tuple[int, int]] = None
    name: Optional[str] = None
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None
    attempt: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "shard", _normalize_shard(self.shard))
        _validate_fault_tolerance_fields(self)

    def to_dict(self) -> Dict[str, Any]:
        return _dataclass_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RadiusRequest":
        return _from_dict(cls, data, kind="request")


@dataclass(frozen=True)
class HealthRequest:
    """Ask a serve process whether it is alive, and how loaded it is.

    The answer (worker liveness, queue depth, in-flight gauge, uptime) is
    what the shard driver uses to tell a dead or wedged worker from a busy
    one — and what a supervisor polls between requests.
    """

    op = "health"

    def to_dict(self) -> Dict[str, Any]:
        return _dataclass_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HealthRequest":
        return _from_dict(cls, data, kind="request")


@dataclass(frozen=True)
class CancelRequest:
    """Cooperatively cancel the request known under ``request_id``.

    Queued work is cancelled outright (its submitter gets a ``cancelled``
    error); in-flight work has its cancel scope signalled, so handlers that
    check it (sweep grid loops, scope-aware waits) stop early.  Cancelling
    an unknown or already-finished id is not an error — the response data
    says what state the id was found in.
    """

    op = "cancel"

    request_id: str

    def __post_init__(self) -> None:
        if not isinstance(self.request_id, str) or not self.request_id:
            raise ValueError(
                f"request_id must be a non-empty string, got {self.request_id!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return _dataclass_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CancelRequest":
        return _from_dict(cls, data, kind="request")


_REQUEST_TYPES: Dict[str, type] = {
    cls.op: cls
    for cls in (
        CertifyRequest,
        SweepRequest,
        FormulaRequest,
        LowerBoundRequest,
        RadiusRequest,
        StatsRequest,
        HealthRequest,
        CancelRequest,
    )
}


def request_from_dict(data: Mapping[str, Any]) -> "Request":
    """Re-hydrate any request by its ``op`` discriminator."""
    op = data.get("op")
    cls = _REQUEST_TYPES.get(op)
    if cls is None:
        raise ProtocolError(
            f"unknown request op {op!r}; known ops: "
            f"{', '.join(sorted(_REQUEST_TYPES))}, shutdown"
        )
    return cls.from_dict(data)


@dataclass(frozen=True)
class BatchRequest:
    """Many requests as one wire message, answered through the worker pool.

    The batch rides :meth:`~repro.service.core.CertificationService.
    submit_many`, so ``stop_on_failure=True`` gives wire callers the same
    batch-level early exit as in-process ones: after the first error or
    failed verdict, still-queued members are answered with ``skipped``
    errors instead of running.  Batches cannot nest, and ``shutdown`` cannot
    ride in one (a batch member never terminates the session).

    ``deadline_s`` bounds the *whole* batch: members still queued when the
    deadline expires are tail-cancelled and answered with ``timeout``
    errors, so a batch can never hold a connection hostage.
    """

    op = "batch"

    requests: Tuple["Request", ...]
    stop_on_failure: bool = False
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        _validate_fault_tolerance_fields(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "requests": [request.to_dict() for request in self.requests],
            "stop_on_failure": self.stop_on_failure,
            "deadline_s": self.deadline_s,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchRequest":
        payload = dict(data)
        op = payload.pop("op", cls.op)
        if op != cls.op:
            raise ProtocolError(f"expected a 'batch' request, got op {op!r}")
        raw_requests = payload.pop("requests", None)
        stop_on_failure = payload.pop("stop_on_failure", False)
        deadline_s = payload.pop("deadline_s", None)
        request_id = payload.pop("request_id", None)
        unknown = sorted(payload)
        if unknown:
            raise ProtocolError(f"unknown 'batch' field(s) {unknown}")
        if not isinstance(raw_requests, (list, tuple)):
            raise ProtocolError("a 'batch' request needs a 'requests' list")
        if not isinstance(stop_on_failure, bool):
            raise ProtocolError("stop_on_failure must be a boolean")
        requests = []
        for position, entry in enumerate(raw_requests):
            if not isinstance(entry, Mapping):
                raise ProtocolError(f"batch request #{position} must be a JSON object")
            entry_op = entry.get("op")
            if entry_op == cls.op:
                raise ProtocolError("batch requests cannot nest")
            if entry_op == "shutdown":
                raise ProtocolError("shutdown cannot ride in a batch")
            try:
                requests.append(request_from_dict(entry))
            except ProtocolError as error:
                raise ProtocolError(f"batch request #{position}: {error}") from None
        try:
            return cls(
                requests=tuple(requests),
                stop_on_failure=stop_on_failure,
                deadline_s=deadline_s,
                request_id=request_id,
            )
        except ValueError as error:
            raise ProtocolError(f"bad 'batch' request: {error}") from None


Request = Union[
    CertifyRequest,
    SweepRequest,
    FormulaRequest,
    LowerBoundRequest,
    RadiusRequest,
    StatsRequest,
    HealthRequest,
    CancelRequest,
    BatchRequest,
]

_REQUEST_TYPES[BatchRequest.op] = BatchRequest


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CertifyResponse:
    """The verdict on one :class:`CertifyRequest`.

    ``to_payload`` is *the* JSON verdict — ``repro.cli certify --json`` and
    the ``serve`` wire protocol both print exactly this dictionary, so the
    two surfaces cannot drift apart.
    """

    op = "certify"
    ok = True

    scheme: str
    registry_key: str
    graph: str
    vertices: int
    edges: int
    holds: bool
    accepted: Optional[bool]
    sound: Optional[bool]
    max_certificate_bits: int
    bound: str
    engine: str
    seed: int
    certificates: Optional[Dict[str, Dict[str, Any]]] = None
    engine_resolved: Optional[str] = None
    """Concrete engine the evaluation ran on — differs from ``engine``
    exactly when the request asked for ``"auto"``."""

    @property
    def verdict_ok(self) -> bool:
        """False exactly when a yes-instance's honest proof was rejected —
        the condition the CLI turns into a non-zero exit status."""
        return not (self.holds and self.accepted is False)

    def to_payload(self) -> Dict[str, Any]:
        """The canonical verdict dictionary (certificates only if requested)."""
        payload = {
            "scheme": self.scheme,
            "registry_key": self.registry_key,
            "graph": self.graph,
            "vertices": self.vertices,
            "edges": self.edges,
            "holds": self.holds,
            "accepted": self.accepted,
            "sound": self.sound,
            "max_certificate_bits": self.max_certificate_bits,
            "bound": self.bound,
            "engine": self.engine,
            "engine_resolved": self.engine_resolved,
            "seed": self.seed,
        }
        if self.certificates is not None:
            payload["certificates"] = dict(self.certificates)
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "ok": True, "result": self.to_payload()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CertifyResponse":
        result = dict(data.get("result") or {})
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(result) - known)
        if unknown:
            raise ProtocolError(f"unknown certify result field(s) {unknown}")
        try:
            return cls(**result)
        except TypeError as error:
            raise ProtocolError(f"bad certify response: {error}") from None


@dataclass(frozen=True)
class SweepResponse:
    """The artifact payload of one :class:`SweepRequest`.

    ``result`` is exactly what :func:`repro.experiments.write_artifact`
    would have written (spec, points, series, bound verdict, fitted
    exponent), so wire consumers read the same schema as artifact files.
    """

    op = "sweep"
    ok = True

    result: Dict[str, Any]

    @property
    def clean(self) -> bool:
        ok = bool(self.result.get("all_accepted")) and bool(self.result.get("all_sound"))
        bound = self.result.get("bound")
        if bound is not None:
            ok = ok and bool(bound.get("ok"))
        return ok

    @property
    def series(self) -> Dict[int, int]:
        return {int(n): bits for n, bits in (self.result.get("series") or {}).items()}

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "ok": True, "result": dict(self.result)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResponse":
        return cls(result=dict(data.get("result") or {}))


@dataclass(frozen=True)
class FormulaResponse:
    """The artifact payload of one :class:`FormulaRequest`.

    ``result`` is exactly what :func:`repro.experiments.write_artifact`
    would have written for the series (kind ``"formula"``), so wire
    consumers (and the shard driver's merge) read the same schema as
    artifact files.
    """

    op = "formula"
    ok = True

    result: Dict[str, Any]

    @property
    def clean(self) -> bool:
        ok = bool(self.result.get("all_accepted")) and bool(self.result.get("all_sound"))
        bound = self.result.get("bound")
        if bound is not None:
            ok = ok and bool(bound.get("ok"))
        return ok

    @property
    def series(self) -> Dict[int, int]:
        return {int(n): bits for n, bits in (self.result.get("series") or {}).items()}

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "ok": True, "result": dict(self.result)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FormulaResponse":
        return cls(result=dict(data.get("result") or {}))


@dataclass(frozen=True)
class LowerBoundResponse:
    """The artifact payload of one :class:`LowerBoundRequest`.

    ``result`` is exactly what :func:`repro.experiments.write_artifact`
    would have written for the search, so wire consumers (and the shard
    driver's merge) read the same schema as artifact files.
    """

    op = "lower-bound"
    ok = True

    result: Dict[str, Any]

    @property
    def clean(self) -> bool:
        ok = bool(self.result.get("all_ok"))
        bound = self.result.get("bound")
        if bound is not None:
            ok = ok and bool(bound.get("ok"))
        return ok

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "ok": True, "result": dict(self.result)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LowerBoundResponse":
        return cls(result=dict(data.get("result") or {}))


@dataclass(frozen=True)
class RadiusResponse:
    """The artifact payload of one :class:`RadiusRequest`.

    ``result`` is exactly what :func:`repro.experiments.write_artifact`
    would have written for the series, so wire consumers (and the shard
    driver's merge) read the same schema as artifact files.
    """

    op = "radius"
    ok = True

    result: Dict[str, Any]

    @property
    def clean(self) -> bool:
        ok = bool(self.result.get("all_ok"))
        bound = self.result.get("bound")
        if bound is not None:
            ok = ok and bool(bound.get("ok"))
        return ok

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "ok": True, "result": dict(self.result)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RadiusResponse":
        return cls(result=dict(data.get("result") or {}))


@dataclass(frozen=True)
class StatsResponse:
    """Service counters: requests served, errors, per-cache hit/miss/size."""

    op = "stats"
    ok = True

    result: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "ok": True, "result": dict(self.result)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StatsResponse":
        return cls(result=dict(data.get("result") or {}))


@dataclass(frozen=True)
class HealthResponse:
    """Liveness and load: workers, queue depth, in-flight gauge, uptime."""

    op = "health"
    ok = True

    result: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "ok": True, "result": dict(self.result)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HealthResponse":
        return cls(result=dict(data.get("result") or {}))


@dataclass(frozen=True)
class CancelResponse:
    """What a ``cancel`` op found: the id's state and whether it was hit.

    ``result`` carries ``request_id``, ``cancelled`` (did the cancel change
    anything) and ``state`` — ``"queued"`` (cancelled before it ran),
    ``"running"`` (scope signalled; cooperative handlers stop early),
    ``"finished"`` (already answered; response cached for replay) or
    ``"unknown"`` (never seen).
    """

    op = "cancel"
    ok = True

    result: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "ok": True, "result": dict(self.result)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CancelResponse":
        return cls(result=dict(data.get("result") or {}))


@dataclass(frozen=True)
class ErrorResponse:
    """A failure, as data: a machine-readable code plus the message.

    ``request_op`` names the request kind that failed (when known), so a
    batched caller can correlate errors with submissions.

    ``partial`` carries salvageable progress, when there is any: a
    ``timeout``/``cancelled`` answer for a sharded experiment includes the
    grid points that *did* finish (``{"points": [...]}``), so the shard
    driver can keep the completed prefix and re-dispatch only the remainder.
    The field is omitted from the wire form when empty, keeping existing
    error payloads byte-identical.
    """

    op = "error"
    ok = False

    code: str
    message: str
    request_op: Optional[str] = None
    partial: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(
                f"unknown error code {self.code!r}; use one of {ERROR_CODES}"
            )
        if self.partial is not None and not isinstance(self.partial, Mapping):
            raise ValueError(f"partial must be a mapping, got {self.partial!r}")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "op": self.op,
            "ok": False,
            "code": self.code,
            "message": self.message,
            "request_op": self.request_op,
        }
        if self.partial is not None:
            data["partial"] = dict(self.partial)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorResponse":
        try:
            return cls(
                code=data["code"],
                message=data.get("message", ""),
                request_op=data.get("request_op"),
                partial=data.get("partial"),
            )
        except (KeyError, ValueError) as error:
            raise ProtocolError(f"bad error response: {error}") from None


_RESPONSE_TYPES: Dict[str, type] = {
    cls.op: cls
    for cls in (
        CertifyResponse,
        SweepResponse,
        FormulaResponse,
        LowerBoundResponse,
        RadiusResponse,
        StatsResponse,
        HealthResponse,
        CancelResponse,
        ErrorResponse,
    )
}


def response_from_dict(data: Mapping[str, Any]) -> "Response":
    """Re-hydrate any response by its ``op`` discriminator."""
    op = data.get("op")
    cls = _RESPONSE_TYPES.get(op)
    if cls is None:
        raise ProtocolError(
            f"unknown response op {op!r}; known ops: {', '.join(sorted(_RESPONSE_TYPES))}"
        )
    return cls.from_dict(data)


@dataclass(frozen=True)
class BatchResponse:
    """The per-member responses of one :class:`BatchRequest`, in order.

    The batch envelope itself is always ``ok``; failures live in the member
    responses (``skipped`` errors mark members cancelled by
    ``stop_on_failure``).
    """

    op = "batch"
    ok = True

    responses: Tuple["Response", ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "responses", tuple(self.responses))

    @property
    def all_ok(self) -> bool:
        return all(response.ok for response in self.responses)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "ok": True,
            "responses": [response.to_dict() for response in self.responses],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchResponse":
        raw = data.get("responses")
        if not isinstance(raw, (list, tuple)):
            raise ProtocolError("bad batch response: 'responses' must be a list")
        return cls(responses=tuple(response_from_dict(entry) for entry in raw))


Response = Union[
    CertifyResponse,
    SweepResponse,
    FormulaResponse,
    LowerBoundResponse,
    RadiusResponse,
    StatsResponse,
    HealthResponse,
    CancelResponse,
    ErrorResponse,
    BatchResponse,
]

_RESPONSE_TYPES[BatchResponse.op] = BatchResponse
