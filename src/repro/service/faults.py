"""Deterministic fault injection for the service and its wire protocol.

The robustness claims of the fault-tolerant fabric — deadlines that always
answer, cancellation that actually stops work, a shard driver that survives
dead workers — are only worth something if they are *tested against real
faults*.  This module is the controlled way to cause them: a
:class:`FaultInjector` holds a list of :class:`FaultRule`\\ s and is hooked
into two layers,

* **service layer** — :meth:`FaultInjector.before_handle` runs at the top
  of :meth:`repro.service.core.CertificationService.handle`; the ``freeze``
  action turns a handler into a scope-aware stall (it wakes the moment the
  request's deadline or cancel fires, so a frozen handler exercises exactly
  the timeout path);
* **wire layer** — the protocol loops consult :meth:`FaultInjector.
  wire_fault` after computing each response line and apply the returned
  rule: ``drop`` swallows the response, ``delay`` stalls it, ``garble``
  corrupts its bytes (framing intact), ``hangup`` closes the connection
  unanswered, ``kill`` terminates the whole process via ``os._exit``
  — the worker-crash the shard driver must survive — and ``partition``
  opens a *healing* network partition: for the rule's ``seconds`` the
  process accepts connections but neither answers in-flight requests nor
  handles new ones, then resumes and sends everything it was holding
  (the late-answer scenario partition-aware supervision must fence off).

Rules are matched deterministically against a per-layer request counter
(1-based) and optionally against the request ``op``, so a test can say
"kill this worker on its 3rd request" or "freeze every sweep" and get the
same failure every run.  ``kill`` must only ever be injected into a
*subprocess* worker (the CLI's ``--fault`` flag); installing it on an
in-process service would take the test runner down with it.  ``partition``
and ``straggle`` are safe in-process: they stall, they never exit.

Action grammar (the CLI's repeatable ``--fault`` flag) is always
``ACTION[:key=value,...]`` with keys ``op=`` (restrict to one request
kind), ``nth=`` (fire on exactly the N-th matching request, 1-based),
``after=`` (fire on every request strictly past the N-th) and
``seconds=`` (the duration knob of ``delay``/``freeze``/``partition``/
``straggle``).  The catalogue::

    kill:after=3          # os._exit on every wire response past the 3rd
    freeze:seconds=30     # stall every handler 30 s (or until cancelled)
    freeze:op=sweep,seconds=0   # stall sweeps until their scope fires
    drop:nth=2            # swallow exactly the 2nd response line
    garble:nth=1,op=certify     # corrupt the 1st certify response
    delay:nth=1,seconds=0.2     # send the 1st response 200 ms late
    hangup:nth=1          # close the connection instead of answering
    partition:op=sweep,nth=1,seconds=8  # drop off the network for 8 s when
                          # the 1st sweep answer is due, then heal and send it
    straggle:op=sweep,seconds=0.3       # become a straggler: stall 0.3 s
                          # after every completed grid point (scope-aware)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

from repro.experiments.spec import ExperimentCancelled

#: Actions applied to a response line at the transport.
WIRE_ACTIONS = ("drop", "delay", "garble", "hangup", "kill", "partition")
#: Actions applied inside the service, before a handler runs (``freeze``)
#: or between completed grid points (``straggle``).
SERVICE_ACTIONS = ("freeze", "straggle")
FAULT_ACTIONS = WIRE_ACTIONS + SERVICE_ACTIONS

#: Exit status of a ``kill`` fault — distinctive on purpose, so a driver
#: test can tell an injected crash from a real one.
KILL_EXIT_CODE = 86


class FaultSpecError(ValueError):
    """A ``--fault`` spec string that does not parse into a rule."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: an action plus when it applies.

    ``nth`` fires on exactly the N-th matching-layer request (1-based);
    ``after`` fires on every request strictly past the N-th; both ``None``
    fires on every request.  ``op`` additionally restricts to one request
    kind.  ``seconds`` parameterises ``delay`` and ``freeze`` (for
    ``freeze``, ``0`` means "until the request's scope fires" — only
    meaningful under a deadline or cancel).
    """

    action: str
    op: Optional[str] = None
    nth: Optional[int] = None
    after: Optional[int] = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise FaultSpecError(
                f"unknown fault action {self.action!r}; use one of {FAULT_ACTIONS}"
            )
        if self.nth is not None and self.after is not None:
            raise FaultSpecError("a fault rule takes nth= or after=, not both")
        for name in ("nth", "after"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise FaultSpecError(f"{name} must be >= 1, got {value}")
        if self.seconds < 0:
            raise FaultSpecError(f"seconds must be >= 0, got {self.seconds}")
        if self.action in ("partition", "straggle") and self.seconds <= 0:
            raise FaultSpecError(
                f"a {self.action!r} fault needs seconds= > 0 (the window length)"
            )

    def matches(self, op: Optional[str], index: int) -> bool:
        if self.op is not None and op != self.op:
            return False
        if self.nth is not None:
            return index == self.nth
        if self.after is not None:
            return index > self.after
        return True

    @classmethod
    def parse(cls, spec: str) -> "FaultRule":
        """Parse ``action[:key=value,...]`` into a rule."""
        action, _, params_spec = spec.strip().partition(":")
        kwargs: dict = {}
        if params_spec:
            for item in params_spec.split(","):
                key, separator, value = item.partition("=")
                key = key.strip()
                if not separator or key not in ("op", "nth", "after", "seconds"):
                    raise FaultSpecError(
                        f"bad fault parameter {item!r} in {spec!r}; "
                        "use op=/nth=/after=/seconds="
                    )
                try:
                    kwargs[key] = (
                        value.strip()
                        if key == "op"
                        else float(value) if key == "seconds" else int(value)
                    )
                except ValueError:
                    raise FaultSpecError(
                        f"bad value {value!r} for {key} in {spec!r}"
                    ) from None
        return cls(action=action.strip(), **kwargs)


class FaultInjector:
    """Match a rule list against the request stream, deterministically.

    Each layer keeps its own 1-based counter (``handled`` for the service
    hook, ``responded`` for the wire hook), so the same injector serves
    both without the counts interleaving.  Every fault actually applied is
    appended to :attr:`log` as ``(layer, action, op, index)`` — the
    assertion surface of the fault tests.
    """

    def __init__(self, rules: Iterable[FaultRule]) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self._lock = threading.Lock()
        self._handled = 0
        self._responded = 0
        self._straggled = 0
        # Monotonic instant the current partition window heals; 0 = no
        # partition. All transport traffic stalls until this passes.
        self._partition_until = 0.0
        self.log: List[Tuple[str, str, Optional[str], int]] = []

    @classmethod
    def parse(cls, specs: Iterable[str]) -> "FaultInjector":
        return cls(FaultRule.parse(spec) for spec in specs)

    def _note(self, layer: str, rule: FaultRule, op: Optional[str], index: int) -> None:
        with self._lock:
            self.log.append((layer, rule.action, op, index))

    # -- service layer -------------------------------------------------------

    def before_handle(self, request: Any, scope: Optional[Any] = None) -> None:
        """The hook :meth:`CertificationService.handle` runs before dispatch.

        Applies ``freeze`` rules: the handler thread stalls for the rule's
        ``seconds`` — but always *scope-aware* when a scope is supplied, so
        an expired deadline or a cancel wakes it immediately instead of
        leaving a worker thread wedged past its request's lifetime.
        """
        op = getattr(request, "op", None)
        with self._lock:
            self._handled += 1
            index = self._handled
        for rule in self.rules:
            if rule.action != "freeze" or not rule.matches(op, index):
                continue
            self._note("service", rule, op, index)
            timeout = rule.seconds or None
            if scope is not None:
                scope.wait(timeout)
                reason = scope.check()
                if reason:
                    # The freeze ended because the scope fired, not because
                    # it ran its course: the request must answer with the
                    # structured stop error, not race ahead and compute a
                    # real answer at (or past) its deadline.
                    raise ExperimentCancelled(reason)
            else:
                threading.Event().wait(timeout)

    # -- wire layer ----------------------------------------------------------

    def wire_fault(self, op: Optional[str]) -> Optional[FaultRule]:
        """The first wire rule matching this response, or ``None``.

        Called by the transport loops once per answered request line; the
        caller applies the returned rule (the transport owns the socket and
        the process, so drop/hangup/kill happen there, not here).
        """
        with self._lock:
            self._responded += 1
            index = self._responded
        for rule in self.rules:
            if rule.action in WIRE_ACTIONS and rule.matches(op, index):
                self._note("wire", rule, op, index)
                return rule
        return None

    def apply_delay(self, rule: FaultRule) -> None:
        time.sleep(rule.seconds)

    # -- partition windows ---------------------------------------------------

    def begin_partition(self, seconds: float) -> None:
        """Open (or extend) a partition window of ``seconds`` from now.

        While the window is open every transport loop blocks in
        :meth:`partition_wait` — connections are still *accepted* (the OS
        does that), but nothing is read off them and nothing is answered,
        which is exactly what a network partition looks like from outside:
        reachable, silent.  When the window passes, held responses go out.
        """
        with self._lock:
            self._partition_until = max(
                self._partition_until, time.monotonic() + seconds
            )

    def partition_wait(self) -> None:
        """Block until the partition (if any) heals; cheap when there is none."""
        while True:
            with self._lock:
                remaining = self._partition_until - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.05))

    def partitioned(self) -> bool:
        with self._lock:
            return self._partition_until > time.monotonic()

    # -- per-point stragglers ------------------------------------------------

    def straggle(self, op: Optional[str], scope: Optional[Any] = None) -> None:
        """Apply ``straggle`` rules between completed grid points.

        Called by the service's per-point progress sink with its own 1-based
        counter (one tick per completed point, across requests).  A matching
        rule stalls the handler for ``seconds`` — scope-aware when a scope is
        supplied, so a deadline expiring mid-stall turns the request into a
        structured ``timeout`` answer that *already carries* the finished
        points.  This is the deterministic way to manufacture a straggling
        shard with a salvageable prefix.
        """
        with self._lock:
            self._straggled += 1
            index = self._straggled
        for rule in self.rules:
            if rule.action != "straggle" or not rule.matches(op, index):
                continue
            self._note("service", rule, op, index)
            if scope is not None:
                scope.wait(rule.seconds)
            else:
                time.sleep(rule.seconds)
            return


def garble_line(line: str) -> str:
    """Corrupt a response line's content while keeping its framing.

    Every ``"`` becomes ``#`` — reliably not JSON, still exactly one
    newline-terminated line, so the connection stays synchronised and the
    client exercises its bad-payload retry path rather than hanging.
    """
    return line.rstrip("\n").replace('"', "#") + "\n"
