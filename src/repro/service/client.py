"""A thin client for the certification service's wire protocol.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.service.protocol` over either transport:

* :meth:`ServiceClient.connect` — a localhost TCP connection to a running
  ``python -m repro.cli serve --tcp HOST:PORT`` process (retries briefly so
  "start the server in the background, then connect" needs no sleep);
* :meth:`ServiceClient.stdio` — spawn ``python -m repro.cli serve`` as a
  child process and talk over its pipes (no network at all).

Methods mirror the request types and return the typed responses of
:mod:`repro.service.messages`; an error from the server comes back as an
:class:`ErrorResponse` value, never an exception — only transport failures
(connection refused, server died, protocol garbage) raise.

Example::

    with ServiceClient.stdio() as client:
        verdict = client.certify(scheme="treedepth", params={"t": 3}, graph="path:7")
        assert verdict.ok and verdict.accepted
        print(client.stats().result["caches_since_start"])
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from typing import IO, Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.service.messages import (
    BatchRequest,
    BatchResponse,
    CertifyRequest,
    CertifyResponse,
    ErrorResponse,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    SweepRequest,
    SweepResponse,
    response_from_dict,
)
from repro.service.protocol import SHUTDOWN_OP, connect, encode_line


class ServiceTransportError(ConnectionError):
    """The conversation itself broke: no connection, EOF mid-request, garbage."""


class ServiceClient:
    """One conversation with a serve process, over pipes or a socket."""

    def __init__(
        self,
        reader: IO[str],
        writer: IO[str],
        process: Optional[subprocess.Popen] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._process = process
        self._closed = False

    # -- constructors --------------------------------------------------------

    @classmethod
    def connect(
        cls, host: str = "127.0.0.1", port: int = 8765, retries: int = 50,
        retry_delay: float = 0.1, read_timeout: Optional[float] = None,
    ) -> "ServiceClient":
        """Connect to a TCP serve process, retrying while it starts up.

        ``read_timeout`` optionally bounds each response wait; by default
        reads block indefinitely, matching the stdio transport (requests
        may legitimately take minutes of server-side compute).
        """
        last_error: Optional[Exception] = None
        for _ in range(max(1, retries)):
            try:
                sock = connect(host, port, read_timeout=read_timeout)
                break
            except OSError as error:
                last_error = error
                time.sleep(retry_delay)
        else:
            raise ServiceTransportError(
                f"could not connect to {host}:{port}: {last_error}"
            ) from last_error
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        return cls(reader=stream, writer=stream)

    @classmethod
    def stdio(cls, command: Optional[Sequence[str]] = None) -> "ServiceClient":
        """Spawn a serve child process and talk over its stdin/stdout."""
        command = list(command or (sys.executable, "-m", "repro.cli", "serve"))
        process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,  # line-buffered: one request line, one response line
        )
        assert process.stdin is not None and process.stdout is not None
        return cls(reader=process.stdout, writer=process.stdin, process=process)

    # -- the conversation ----------------------------------------------------

    def _roundtrip(self, data: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise ServiceTransportError("the client is closed")
        try:
            self._writer.write(encode_line(data))
            self._writer.flush()
            line = self._reader.readline()
        except (OSError, ValueError) as error:
            raise ServiceTransportError(f"transport failed: {error}") from error
        if not line:
            raise ServiceTransportError("the server closed the connection")
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServiceTransportError(f"unparseable response line: {line!r}") from error
        return payload

    def request(self, request: Request) -> Response:
        """Send any typed request and return the typed response."""
        return response_from_dict(self._roundtrip(request.to_dict()))

    def certify(
        self,
        scheme: str,
        graph: str,
        params: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        trials: int = 20,
        engine: str = "compiled",
        include_certificates: bool = False,
    ) -> Union[CertifyResponse, ErrorResponse]:
        return self.request(
            CertifyRequest(
                scheme=scheme,
                graph=graph,
                params=dict(params or {}),
                seed=seed,
                trials=trials,
                engine=engine,
                include_certificates=include_certificates,
            )
        )

    def sweep(
        self,
        scheme: str,
        family: str,
        sizes: Sequence[int],
        params: Optional[Mapping[str, Any]] = None,
        trials: int = 20,
        seed: int = 0,
        **kwargs: Any,
    ) -> Union[SweepResponse, ErrorResponse]:
        return self.request(
            SweepRequest(
                scheme=scheme,
                family=family,
                sizes=tuple(sizes),
                params=dict(params or {}),
                trials=trials,
                seed=seed,
                **kwargs,
            )
        )

    def submit_many(
        self,
        requests: Sequence[Request],
        stop_on_failure: bool = False,
    ) -> Union[List[Response], ErrorResponse]:
        """Send a whole batch as one ``batch`` wire request.

        Returns the per-request responses in order — the remote counterpart
        of :meth:`CertificationService.submit_many`, including the
        ``stop_on_failure`` early exit (cancelled members come back as
        ``skipped`` errors).  A failure of the batch envelope itself (e.g. a
        member that does not decode) comes back as a single
        :class:`ErrorResponse` value.
        """
        response = self.request(
            BatchRequest(requests=tuple(requests), stop_on_failure=stop_on_failure)
        )
        if isinstance(response, BatchResponse):
            return list(response.responses)
        return response

    def stats(self) -> Union[StatsResponse, ErrorResponse]:
        return self.request(StatsRequest())

    def shutdown(self) -> bool:
        """Ask the server to stop; True when it acknowledged."""
        payload = self._roundtrip({"op": SHUTDOWN_OP})
        return bool(payload.get("ok")) and payload.get("op") == SHUTDOWN_OP

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the transport (and reap the child process, if we spawned one)."""
        if self._closed:
            return
        self._closed = True
        for stream in {self._writer, self._reader}:
            try:
                stream.close()
            except OSError:
                pass
        if self._process is not None:
            try:
                self._process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety net
                self._process.kill()
                self._process.wait()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        # End a piped session politely so the child exits by itself; a TCP
        # session just disconnects (shutting the shared server down is the
        # owner's call, not every client's).
        if self._process is not None and not self._closed:
            try:
                self.shutdown()
            except ServiceTransportError:
                pass
        self.close()
