"""A thin client for the certification service's wire protocol.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.service.protocol` over either transport:

* :meth:`ServiceClient.connect` — a localhost TCP connection to a running
  ``python -m repro.cli serve --tcp HOST:PORT`` process (retries briefly so
  "start the server in the background, then connect" needs no sleep);
* :meth:`ServiceClient.stdio` — spawn ``python -m repro.cli serve`` as a
  child process and talk over its pipes (no network at all).

Methods mirror the request types and return the typed responses of
:mod:`repro.service.messages`; an error from the server comes back as an
:class:`ErrorResponse` value, never an exception — only transport failures
(connection refused, server died, protocol garbage) raise.

Fault tolerance: :meth:`ServiceClient.connect` retries with exponential
backoff plus jitter under a total deadline (a thundering herd of shard
workers reconnecting to a restarted server spreads out instead of
stampeding), and :meth:`ServiceClient.request` can retry a broken
conversation — it stamps the request with a ``request_id`` so the server's
idempotent replay makes the retry exactly-once even when the failure hit
after the work was done.

Example::

    with ServiceClient.stdio() as client:
        verdict = client.certify(scheme="treedepth", params={"t": 3}, graph="path:7")
        assert verdict.ok and verdict.accepted
        print(client.stats().result["caches_since_start"])
"""

from __future__ import annotations

import dataclasses
import json
import random
import socket
import subprocess
import sys
import time
import uuid
from typing import IO, Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.service.messages import (
    BatchRequest,
    BatchResponse,
    CancelRequest,
    CancelResponse,
    CertifyRequest,
    CertifyResponse,
    ErrorResponse,
    FormulaRequest,
    FormulaResponse,
    HealthRequest,
    HealthResponse,
    LowerBoundRequest,
    LowerBoundResponse,
    RadiusRequest,
    RadiusResponse,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    SweepRequest,
    SweepResponse,
    response_from_dict,
)
from repro.service.protocol import SHUTDOWN_OP, connect, encode_line

#: Ceiling on one backoff sleep; growth past this only adds jitter spread.
_MAX_BACKOFF_S = 1.0


def _backoff_delay(base: float, attempt: int) -> float:
    """Exponential backoff with full jitter: ``U(0.5, 1) * base * 2^attempt``.

    The random factor decorrelates a fleet of clients retrying against the
    same restarted server; the cap keeps late attempts responsive.
    """
    delay = min(base * (2.0 ** attempt), _MAX_BACKOFF_S)
    return delay * (0.5 + random.random() / 2.0)


class ServiceTransportError(ConnectionError):
    """The conversation itself broke: no connection, EOF mid-request, garbage.

    ``timed_out`` distinguishes *silence* (a read that hit its timeout —
    the server is reachable but not answering, which is what a partition
    or a wedged handler looks like) from a positive failure (reset, EOF,
    refused).  Partition-aware supervision keys off this: a timed-out
    conversation makes a worker a *suspect*, not a confirmed corpse.
    """

    def __init__(self, message: str, *, timed_out: bool = False) -> None:
        super().__init__(message)
        self.timed_out = timed_out


class ServiceConnectTimeout(ServiceTransportError):
    """The connect retry budget (attempts or deadline) ran out.

    Carries the machine-readable ``connect-timeout`` code — callers that
    report errors as data (the shard driver) convert it via :meth:`error`
    instead of reparsing the message.  ``refused`` records whether the last
    attempt was actively refused (nothing listening: a confirmed-dead
    signal) rather than merely timing out (possibly partitioned).
    """

    code = "connect-timeout"

    def __init__(self, message: str, *, refused: bool = False) -> None:
        super().__init__(message, timed_out=not refused)
        self.refused = refused

    def error(self) -> ErrorResponse:
        """This failure as the wire's structured error value."""
        return ErrorResponse(code=self.code, message=str(self))


class ServiceClient:
    """One conversation with a serve process, over pipes or a socket."""

    def __init__(
        self,
        reader: IO[str],
        writer: IO[str],
        process: Optional[subprocess.Popen] = None,
        endpoint: Optional[Tuple[str, int, Optional[float], Optional[float]]] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._process = process
        self._endpoint = endpoint
        self._closed = False

    # -- constructors --------------------------------------------------------

    @classmethod
    def connect(
        cls, host: str = "127.0.0.1", port: int = 8765, retries: int = 50,
        retry_delay: float = 0.1, read_timeout: Optional[float] = None,
        connect_deadline_s: Optional[float] = 15.0,
        reconnect_deadline_s: Optional[float] = None,
    ) -> "ServiceClient":
        """Connect to a TCP serve process, retrying while it starts up.

        Failed attempts back off exponentially from ``retry_delay`` with
        full jitter (see :func:`_backoff_delay`) under two caps: at most
        ``retries`` attempts and at most ``connect_deadline_s`` seconds in
        total.  Exhausting either raises :class:`ServiceConnectTimeout`,
        whose ``connect-timeout`` code is the structured form of the
        failure (the last ``OSError`` stays chained for humans).

        ``read_timeout`` optionally bounds each response wait; by default
        reads block indefinitely, matching the stdio transport (requests
        may legitimately take minutes of server-side compute).

        ``reconnect_deadline_s`` bounds the *mid-conversation* reconnect a
        retried :meth:`request` performs.  The generous initial deadline
        exists for servers still starting up; once a conversation has been
        established, a refused port usually means the process died, so
        callers that probe liveness themselves (the shard driver) pass a
        small budget here to detect death quickly.  ``None`` inherits
        ``connect_deadline_s``.
        """
        deadline_at = (
            time.monotonic() + connect_deadline_s
            if connect_deadline_s is not None
            else None
        )
        attempts = max(1, retries)
        last_error: Optional[Exception] = None
        sock = None
        for attempt in range(attempts):
            try:
                sock = connect(host, port, read_timeout=read_timeout)
                break
            except OSError as error:
                last_error = error
            if attempt + 1 >= attempts:
                break
            delay = _backoff_delay(retry_delay, attempt)
            if deadline_at is not None:
                budget = deadline_at - time.monotonic()
                if budget <= 0:
                    break
                delay = min(delay, budget)
            time.sleep(delay)
        if sock is None:
            raise ServiceConnectTimeout(
                f"could not connect to {host}:{port} "
                f"within the retry budget: {last_error}",
                refused=isinstance(last_error, ConnectionRefusedError),
            ) from last_error
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        reconnect_budget = (
            reconnect_deadline_s
            if reconnect_deadline_s is not None
            else connect_deadline_s
        )
        return cls(
            reader=stream,
            writer=stream,
            endpoint=(host, port, read_timeout, reconnect_budget),
        )

    @classmethod
    def stdio(cls, command: Optional[Sequence[str]] = None) -> "ServiceClient":
        """Spawn a serve child process and talk over its stdin/stdout."""
        command = list(command or (sys.executable, "-m", "repro.cli", "serve"))
        process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,  # line-buffered: one request line, one response line
        )
        assert process.stdin is not None and process.stdout is not None
        return cls(reader=process.stdout, writer=process.stdin, process=process)

    # -- the conversation ----------------------------------------------------

    def _roundtrip(self, data: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise ServiceTransportError("the client is closed")
        try:
            self._writer.write(encode_line(data))
            self._writer.flush()
            line = self._reader.readline()
        except (OSError, ValueError) as error:
            raise ServiceTransportError(
                f"transport failed: {error}",
                timed_out=isinstance(error, socket.timeout),
            ) from error
        if not line:
            raise ServiceTransportError("the server closed the connection")
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServiceTransportError(f"unparseable response line: {line!r}") from error
        return payload

    def _reconnect(self) -> None:
        """Re-establish a broken TCP transport (stdio cannot reconnect)."""
        if self._endpoint is None:
            raise ServiceTransportError(
                "this transport cannot reconnect (no TCP endpoint)"
            )
        host, port, read_timeout, reconnect_budget = self._endpoint
        for stream in {self._writer, self._reader}:
            try:
                stream.close()
            except OSError:
                pass
        fresh = ServiceClient.connect(
            host, port, read_timeout=read_timeout,
            connect_deadline_s=reconnect_budget,
        )
        self._reader = fresh._reader
        self._writer = fresh._writer
        self._closed = False

    def request(
        self, request: Request, retries: int = 0, retry_delay: float = 0.2
    ) -> Response:
        """Send any typed request and return the typed response.

        With ``retries > 0`` a broken conversation (connection reset, EOF,
        an unparseable response line) is retried up to that many extra
        times, reconnecting the TCP transport and backing off with jitter
        between attempts.  The request is stamped with a ``request_id``
        first (when its type carries one), so a resend of work the server
        already finished replays the cached response instead of running it
        twice — retries are idempotent, not at-least-once.
        """
        if (
            retries > 0
            and hasattr(request, "request_id")
            and request.request_id is None
        ):
            request = dataclasses.replace(request, request_id=uuid.uuid4().hex)
        data = request.to_dict()
        attempt = 0
        while True:
            try:
                return response_from_dict(self._roundtrip(data))
            except ServiceTransportError:
                if attempt >= retries:
                    raise
                time.sleep(_backoff_delay(retry_delay, attempt))
                attempt += 1
                if self._endpoint is not None:
                    try:
                        self._reconnect()
                    except ServiceTransportError:
                        # The server may still be coming back; the next
                        # roundtrip fails fast and consumes an attempt.
                        pass

    def certify(
        self,
        scheme: Optional[str] = None,
        graph: str = "",
        params: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        trials: int = 20,
        engine: str = "auto",
        include_certificates: bool = False,
        formula: Optional[str] = None,
        **kwargs: Any,
    ) -> Union[CertifyResponse, ErrorResponse]:
        """One certification question; ``kwargs`` pass through to the
        request (``deadline_s``, ``request_id``) and to :meth:`request`
        (``retries``, ``retry_delay``).  ``formula`` (mutually exclusive
        with ``scheme``) compiles an ephemeral MSO scheme server-side, with
        ``params`` carrying the compilation knobs."""
        retry_kwargs = {
            key: kwargs.pop(key) for key in ("retries", "retry_delay") if key in kwargs
        }
        return self.request(
            CertifyRequest(
                scheme=scheme,
                formula=formula,
                graph=graph,
                params=dict(params or {}),
                seed=seed,
                trials=trials,
                engine=engine,
                include_certificates=include_certificates,
                **kwargs,
            ),
            **retry_kwargs,
        )

    def sweep(
        self,
        scheme: Optional[str] = None,
        family: str = "",
        sizes: Sequence[int] = (),
        params: Optional[Mapping[str, Any]] = None,
        trials: int = 20,
        seed: int = 0,
        formula: Optional[str] = None,
        **kwargs: Any,
    ) -> Union[SweepResponse, ErrorResponse]:
        return self.request(
            SweepRequest(
                scheme=scheme,
                formula=formula,
                family=family,
                sizes=tuple(sizes),
                params=dict(params or {}),
                trials=trials,
                seed=seed,
                **kwargs,
            )
        )

    def formula(
        self,
        formula: str,
        family: str,
        sizes: Sequence[int],
        **kwargs: Any,
    ) -> Union["FormulaResponse", ErrorResponse]:
        """Run a certificate-size series for an ad-hoc MSO formula.

        ``kwargs`` pass through to :class:`FormulaRequest` (including
        ``t``, ``k``, ``route``, ``model``, ``shard``, ``deadline_s`` and
        ``request_id``).
        """
        retry_kwargs = {
            key: kwargs.pop(key) for key in ("retries", "retry_delay") if key in kwargs
        }
        return self.request(
            FormulaRequest(formula=formula, family=family, sizes=tuple(sizes), **kwargs),
            **retry_kwargs,
        )

    def lower_bound(
        self,
        construction: str,
        sizes: Sequence[int],
        **kwargs: Any,
    ) -> Union[LowerBoundResponse, ErrorResponse]:
        """Run a whole Section-7 lower-bound search as one request.

        ``kwargs`` pass through to :class:`LowerBoundRequest` (including
        ``shard``, ``deadline_s`` and ``request_id``).
        """
        retry_kwargs = {
            key: kwargs.pop(key) for key in ("retries", "retry_delay") if key in kwargs
        }
        return self.request(
            LowerBoundRequest(construction=construction, sizes=tuple(sizes), **kwargs),
            **retry_kwargs,
        )

    def radius(
        self,
        family: str,
        sizes: Sequence[int],
        **kwargs: Any,
    ) -> Union[RadiusResponse, ErrorResponse]:
        """Run an Appendix-A.1 radius-verification series as one request.

        ``kwargs`` pass through to :class:`RadiusRequest` (including
        ``bound``, ``radius``, ``shard``, ``deadline_s`` and ``request_id``).
        """
        retry_kwargs = {
            key: kwargs.pop(key) for key in ("retries", "retry_delay") if key in kwargs
        }
        return self.request(
            RadiusRequest(family=family, sizes=tuple(sizes), **kwargs),
            **retry_kwargs,
        )

    def submit_many(
        self,
        requests: Sequence[Request],
        stop_on_failure: bool = False,
        **kwargs: Any,
    ) -> Union[List[Response], ErrorResponse]:
        """Send a whole batch as one ``batch`` wire request.

        Returns the per-request responses in order — the remote counterpart
        of :meth:`CertificationService.submit_many`, including the
        ``stop_on_failure`` early exit (cancelled members come back as
        ``skipped`` errors).  A failure of the batch envelope itself (e.g. a
        member that does not decode) comes back as a single
        :class:`ErrorResponse` value.  ``kwargs`` pass through to the
        :class:`BatchRequest` (``deadline_s``, ``request_id``).
        """
        retry_kwargs = {
            key: kwargs.pop(key) for key in ("retries", "retry_delay") if key in kwargs
        }
        response = self.request(
            BatchRequest(
                requests=tuple(requests), stop_on_failure=stop_on_failure, **kwargs
            ),
            **retry_kwargs,
        )
        if isinstance(response, BatchResponse):
            return list(response.responses)
        return response

    def stats(self) -> Union[StatsResponse, ErrorResponse]:
        return self.request(StatsRequest())

    def health(self) -> Union[HealthResponse, ErrorResponse]:
        """The server's liveness/load snapshot (never queued behind work)."""
        return self.request(HealthRequest())

    def cancel(self, request_id: str) -> Union[CancelResponse, ErrorResponse]:
        """Cancel the in-flight or queued request known under ``request_id``.

        Issue it from a *second* connection: the one waiting on the work is
        blocked until the cancelled request answers (with a ``cancelled``
        error).
        """
        return self.request(CancelRequest(request_id=request_id))

    def shutdown(self) -> bool:
        """Ask the server to stop; True when it acknowledged."""
        payload = self._roundtrip({"op": SHUTDOWN_OP})
        return bool(payload.get("ok")) and payload.get("op") == SHUTDOWN_OP

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the transport (and reap the child process, if we spawned one)."""
        if self._closed:
            return
        self._closed = True
        for stream in {self._writer, self._reader}:
            try:
                stream.close()
            except OSError:
                pass
        if self._process is not None:
            try:
                self._process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety net
                self._process.kill()
                self._process.wait()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        # End a piped session politely so the child exits by itself; a TCP
        # session just disconnects (shutting the shared server down is the
        # owner's call, not every client's).
        if self._process is not None and not self._closed:
            try:
                self.shutdown()
            except ServiceTransportError:
                pass
        self.close()
