"""The JSON-lines wire protocol of ``python -m repro.cli serve``.

One request per line in, one response per line out; every line is a single
JSON object whose ``op`` field names the message type
(:mod:`repro.service.messages`).  Two transports serve the same protocol:

* **stdio** — the server reads stdin and writes stdout, so a caller can
  pipe a batch of requests through one process (or keep the process alive
  behind a pair of pipes, which is what
  :meth:`repro.service.client.ServiceClient.stdio` does);
* **localhost TCP** — a threading server on ``127.0.0.1``; each connection
  speaks the same line protocol, and concurrent connections share the one
  service (and therefore its warm caches).

Four rules keep the protocol robust:

1. a malformed line is answered with an ``invalid-request`` error response,
   never a dropped connection;
2. the special request ``{"op": "shutdown"}`` is acknowledged with
   ``{"op": "shutdown", "ok": true}`` and then stops the server — the clean
   way to end a session (EOF / disconnect merely ends the connection);
3. responses are exactly one line of compact JSON with sorted keys, so
   byte-level comparisons (and the CLI-parity test) are meaningful;
4. request lines are read at most ``max_request_bytes`` at a time, so an
   oversized (or unterminated) line can never balloon server memory: the
   excess is drained without buffering, the sender gets a structured
   ``invalid-request`` error, and the connection keeps serving.
"""

from __future__ import annotations

import json
import os
import select
import socket
import socketserver
import threading
from typing import IO, Any, Callable, Dict, Optional, Tuple

from repro.service.core import CertificationService
from repro.service.faults import KILL_EXIT_CODE, FaultInjector, garble_line
from repro.service.messages import ErrorResponse, ProtocolError, request_from_dict

#: ``op`` of the session-terminating request and of its acknowledgement.
SHUTDOWN_OP = "shutdown"

#: Default cap on one request line (newline included).  Generous for every
#: real request shape — a thousand-member batch fits comfortably — while
#: keeping a hostile or broken sender from buffering unbounded memory.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

#: Read size used while discarding the tail of an oversized line.
_DRAIN_CHUNK = 1 << 16


def _oversized_line(max_request_bytes: int) -> str:
    """The structured answer to a request line that blew the size limit."""
    response = ErrorResponse(
        code="invalid-request",
        message=f"request line exceeds the {max_request_bytes}-byte limit",
    )
    return encode_line(response.to_dict())


def _read_limited_line(stream, max_request_bytes: int):
    """Read one line from a text or binary stream, capped at the limit.

    Returns ``(line, oversized)``; ``line`` is falsy at EOF.  An oversized
    line is consumed (drained in bounded chunks, never buffered whole) up to
    its newline so the stream stays synchronised on the next request.
    """
    line = stream.readline(max_request_bytes + 1)
    if not line:
        return line, False
    if isinstance(line, str):
        # Text streams cap readline by characters; enforce the advertised
        # *byte* limit too (encoding only non-ASCII lines — the protocol is
        # ASCII JSON, so the common case stays a C-speed scan).
        newline = "\n"
        oversized = len(line) > max_request_bytes or (
            not line.isascii() and len(line.encode("utf-8")) > max_request_bytes
        )
    else:
        newline = b"\n"
        oversized = len(line) > max_request_bytes
    if not oversized:
        return line, False
    chunk = line
    while chunk and not chunk.endswith(newline):
        chunk = stream.readline(_DRAIN_CHUNK)
    return line, True


def encode_line(data: Dict[str, Any]) -> str:
    """One protocol line: compact JSON, sorted keys, newline-terminated."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def handle_line(
    service: CertificationService,
    line: str,
    is_alive: Optional[Callable[[], bool]] = None,
) -> Tuple[str, bool]:
    """Answer one request line; returns ``(response line, keep going)``.

    ``is_alive`` is the transport's connection-death probe, threaded into
    :meth:`CertificationService.respond` so queued/in-flight work (a batch
    tail, a sweep) is cancelled when the asking client disappears.
    """
    try:
        data = json.loads(line)
        if not isinstance(data, dict):
            raise ProtocolError("a request must be a JSON object")
    except (json.JSONDecodeError, ProtocolError) as error:
        response = ErrorResponse(code="invalid-request", message=str(error))
        return encode_line(response.to_dict()), True
    if data.get("op") == SHUTDOWN_OP:
        return encode_line({"op": SHUTDOWN_OP, "ok": True}), False
    try:
        request = request_from_dict(data)
    except ProtocolError as error:
        response = ErrorResponse(code="invalid-request", message=str(error))
        return encode_line(response.to_dict()), True
    try:
        response = service.respond(request, is_alive=is_alive)
    except Exception as error:  # noqa: BLE001 - rule 1: answer, never die
        response = ErrorResponse(
            code="internal-error",
            message=f"{type(error).__name__}: {error}",
            request_op=getattr(request, "op", None),
        )
    return encode_line(response.to_dict()), True


def _line_op(line: str) -> Optional[str]:
    """The ``op`` of a request line, for fault matching (None if unparsable)."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return None
    return data.get("op") if isinstance(data, dict) else None


#: Disposition of a response line after wire-fault application.
_SEND, _SWALLOW, _HANGUP = "send", "swallow", "hangup"


def _apply_wire_fault(
    injector: Optional[FaultInjector], request_line: str, response_line: str
) -> Tuple[str, str]:
    """Run one response through the fault injector (if any).

    Returns ``(disposition, line)``: ``send`` the (possibly garbled,
    possibly delayed) line, ``swallow`` it silently, or ``hangup`` the
    connection.  A ``kill`` rule never returns — the process exits, which
    is the point.  A ``partition`` rule opens the injector's partition
    window and holds *this* response (and, via the loops' own
    ``partition_wait`` calls, every other connection's traffic) until the
    window heals — the held line then goes out late, exercising the
    driver's fencing of superseded answers.
    """
    if injector is None:
        return _SEND, response_line
    rule = injector.wire_fault(_line_op(request_line))
    if rule is None:
        return _SEND, response_line
    if rule.action == "kill":
        os._exit(KILL_EXIT_CODE)
    if rule.action == "delay":
        injector.apply_delay(rule)
        return _SEND, response_line
    if rule.action == "garble":
        return _SEND, garble_line(response_line)
    if rule.action == "drop":
        return _SWALLOW, response_line
    if rule.action == "partition":
        injector.begin_partition(rule.seconds)
        injector.partition_wait()
        return _SEND, response_line
    return _HANGUP, response_line


def serve_stdio(
    service: CertificationService,
    stdin: IO[str],
    stdout: IO[str],
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
) -> int:
    """Serve the line protocol over a stream pair until EOF or shutdown.

    Returns the number of lines answered.  Blank lines are ignored, so a
    trailing newline in a piped batch is harmless.  A line longer than
    ``max_request_bytes`` is drained and answered with an
    ``invalid-request`` error — the session keeps serving.
    """
    answered = 0
    injector = getattr(service, "fault_injector", None)
    while True:
        line, oversized = _read_limited_line(stdin, max_request_bytes)
        if not line:
            break
        if oversized:
            stdout.write(_oversized_line(max_request_bytes))
            stdout.flush()
            answered += 1
            continue
        if not line.strip():
            continue
        if injector is not None:
            # An open partition stalls new requests too: the line has been
            # read off the pipe (the network's buffers do that much), but
            # nothing is handled or answered until the window heals.
            injector.partition_wait()
        response_line, keep_going = handle_line(service, line)
        disposition, response_line = _apply_wire_fault(injector, line, response_line)
        if disposition == _HANGUP:
            break
        if disposition == _SEND:
            stdout.write(response_line)
            stdout.flush()
        answered += 1
        if not keep_going:
            break
    return answered


def _socket_alive(sock: socket.socket) -> bool:
    """Is the peer of this connection still there?

    A zero-timeout ``select`` plus a ``MSG_PEEK`` read distinguishes the
    three states without consuming protocol bytes: nothing readable means
    the peer is simply quiet (alive), readable-with-data means a pipelined
    request is waiting (alive), and readable-with-EOF — or any socket
    error — means the client is gone.
    """
    try:
        readable, _, _ = select.select([sock], [], [], 0)
        if not readable:
            return True
        return bool(sock.recv(1, socket.MSG_PEEK))
    except (BlockingIOError, InterruptedError):
        return True
    except (OSError, ValueError):
        return False


class _LineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        limit = self.server.max_request_bytes
        injector = getattr(self.server.service, "fault_injector", None)

        def is_alive() -> bool:
            return _socket_alive(self.connection)

        while True:
            raw, oversized = _read_limited_line(self.rfile, limit)
            if not raw:
                return
            if oversized:
                self.wfile.write(_oversized_line(limit).encode("utf-8"))
                self.wfile.flush()
                continue
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            if injector is not None:
                # Partitioned: the connection was accepted and the request
                # read, but handling stalls until the window heals — from
                # the client's side, reachable but silent.
                injector.partition_wait()
            response_line, keep_going = handle_line(
                self.server.service, line, is_alive=is_alive
            )
            disposition, response_line = _apply_wire_fault(injector, line, response_line)
            if disposition == _HANGUP:
                return
            if disposition == _SEND:
                try:
                    self.wfile.write(response_line.encode("utf-8"))
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    # The client vanished between computing the answer and
                    # sending it; nothing left to serve on this connection.
                    return
            if not keep_going:
                self.server.request_shutdown()
                return


class TCPProtocolServer(socketserver.ThreadingTCPServer):
    """A localhost line-protocol server; connections share one service."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: CertificationService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ):
        self.service = service
        self.max_request_bytes = max_request_bytes
        self._shutdown_requested = threading.Event()
        super().__init__((host, port), _LineHandler)

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.server_address[:2]
        return (host, port)

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (callable from handler threads)."""
        if not self._shutdown_requested.is_set():
            self._shutdown_requested.set()
            # shutdown() must come from outside the serve_forever thread.
            threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self) -> None:
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.server_close()


def serve_tcp(
    service: CertificationService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[threading.Event] = None,
    announce: Optional[IO[str]] = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
) -> Tuple[str, int]:
    """Serve the line protocol on localhost TCP until a shutdown request.

    Binds (``port=0`` picks a free port), optionally announces the bound
    address on ``announce`` and sets ``ready`` once listening — the hooks a
    supervisor or a test needs to know when to connect — then blocks until
    a client sends ``{"op": "shutdown"}``.  Returns the address it served.
    """
    server = TCPProtocolServer(
        service, host=host, port=port, max_request_bytes=max_request_bytes
    )
    bound = server.address
    if announce is not None:
        announce.write(f"serving on {bound[0]}:{bound[1]}\n")
        announce.flush()
    if ready is not None:
        ready.set()
    server.serve_until_shutdown()
    return bound


def connect(
    host: str,
    port: int,
    connect_timeout: float = 10.0,
    read_timeout: Optional[float] = None,
) -> socket.socket:
    """A connected TCP socket to a protocol server (used by the client).

    ``connect_timeout`` bounds connection establishment only; once
    connected the socket blocks for ``read_timeout`` (default: forever —
    certification requests legitimately run for minutes, and an expired
    read deadline would desynchronise the request/response stream).
    """
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(read_timeout)
    return sock
