"""Certification as a service: the long-lived batched service layer.

The paper's model — a prover assigns certificates once, verifiers re-check
locally forever — maps onto a service that compiles a topology once and then
answers many verification requests against it.  This package is that
service:

* :mod:`repro.service.messages` — typed request/response dataclasses
  (:class:`CertifyRequest`, :class:`SweepRequest`, :class:`CertifyResponse`,
  :class:`SweepResponse`) and the structured :class:`ErrorResponse` that
  maps ``NotAYesInstance`` / ``ValueError`` / parameter-validation failures
  to machine-readable error codes instead of tracebacks;
* :mod:`repro.service.core` — :class:`CertificationService`, the long-lived
  object that owns the LRU caches (compiled topologies, ``holds()`` ground
  truth, identifier assignments, decompositions, scheme instances) so they
  are reused *across* requests, with a bounded worker pool and batched
  submission (:meth:`CertificationService.submit_many`);
* :mod:`repro.service.protocol` — the JSON-lines wire protocol behind
  ``python -m repro.cli serve`` (stdio and localhost TCP modes);
* :mod:`repro.service.client` — :class:`ServiceClient`, a thin client for
  both transports.

Callers that just want a verdict should go through the :mod:`repro.api`
facade instead of instantiating these pieces directly.
"""

from repro.service.core import CertificationService
from repro.service.client import ServiceClient
from repro.service.messages import (
    ERROR_CODES,
    BatchRequest,
    BatchResponse,
    CertifyRequest,
    CertifyResponse,
    ErrorResponse,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    SweepRequest,
    SweepResponse,
    request_from_dict,
    response_from_dict,
)

__all__ = [
    "ERROR_CODES",
    "BatchRequest",
    "BatchResponse",
    "CertificationService",
    "CertifyRequest",
    "CertifyResponse",
    "ErrorResponse",
    "Request",
    "Response",
    "ServiceClient",
    "StatsRequest",
    "StatsResponse",
    "SweepRequest",
    "SweepResponse",
    "request_from_dict",
    "response_from_dict",
]
