"""Certification as a service: the long-lived batched service layer.

The paper's model — a prover assigns certificates once, verifiers re-check
locally forever — maps onto a service that compiles a topology once and then
answers many verification requests against it.  This package is that
service:

* :mod:`repro.service.messages` — typed request/response dataclasses
  (:class:`CertifyRequest`, :class:`SweepRequest`, :class:`LowerBoundRequest`,
  the ``health``/``cancel`` control ops and their responses) and the
  structured :class:`ErrorResponse` that maps ``NotAYesInstance`` /
  ``ValueError`` / parameter-validation failures — and now deadline expiry
  and cancellation — to machine-readable error codes instead of tracebacks;
* :mod:`repro.service.core` — :class:`CertificationService`, the long-lived
  object that owns the LRU caches (compiled topologies, ``holds()`` ground
  truth, identifier assignments, decompositions, scheme instances) so they
  are reused *across* requests, with a bounded worker pool, batched
  submission (:meth:`CertificationService.submit_many`), and the
  fault-tolerance entry point :meth:`CertificationService.respond`
  (per-request deadlines, cooperative cancellation, idempotent replay);
* :mod:`repro.service.protocol` — the JSON-lines wire protocol behind
  ``python -m repro.cli serve`` (stdio and localhost TCP modes);
* :mod:`repro.service.client` — :class:`ServiceClient`, a thin client for
  both transports with backoff-and-jitter connect and idempotent retry;
* :mod:`repro.service.driver` — the fault-tolerant shard driver behind
  ``python -m repro.cli shard-drive``: fan a sweep/lower-bound out over a
  fleet of serve processes, survive dead workers, merge the partial
  artifacts back into the exact unsharded result;
* :mod:`repro.service.faults` — deterministic fault injection (drop /
  delay / garble / hangup / kill / freeze) that makes all of the above
  testable.

Callers that just want a verdict should go through the :mod:`repro.api`
facade instead of instantiating these pieces directly.
"""

from repro.service.core import CancelScope, CertificationService
from repro.service.client import (
    ServiceClient,
    ServiceConnectTimeout,
    ServiceTransportError,
)
from repro.service.driver import (
    DriveReport,
    DriverError,
    LocalFleet,
    ShardDriver,
    drive,
)
from repro.service.faults import FaultInjector, FaultRule, FaultSpecError
from repro.service.messages import (
    ERROR_CODES,
    BatchRequest,
    BatchResponse,
    CancelRequest,
    CancelResponse,
    CertifyRequest,
    CertifyResponse,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    LowerBoundRequest,
    LowerBoundResponse,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    SweepRequest,
    SweepResponse,
    request_from_dict,
    response_from_dict,
)

__all__ = [
    "ERROR_CODES",
    "BatchRequest",
    "BatchResponse",
    "CancelRequest",
    "CancelResponse",
    "CancelScope",
    "CertificationService",
    "CertifyRequest",
    "CertifyResponse",
    "DriveReport",
    "DriverError",
    "ErrorResponse",
    "FaultInjector",
    "FaultRule",
    "FaultSpecError",
    "HealthRequest",
    "HealthResponse",
    "LocalFleet",
    "LowerBoundRequest",
    "LowerBoundResponse",
    "Request",
    "ShardDriver",
    "Response",
    "ServiceClient",
    "ServiceConnectTimeout",
    "ServiceTransportError",
    "StatsRequest",
    "StatsResponse",
    "SweepRequest",
    "SweepResponse",
    "drive",
    "request_from_dict",
    "response_from_dict",
]
