"""The long-lived certification service.

A :class:`CertificationService` is the compile-once split of PR 1 turned
into a resident process component: it owns the LRU caches (compiled
topologies, ``holds()`` ground truth, identifier assignments, treedepth /
treewidth decompositions — see :mod:`repro.caching` and
:mod:`repro.core.cache`) plus a cache of scheme *instances*, so the second
request for the same ``(graph, seed)`` re-verifies against an
already-compiled topology and an already-decided ground truth instead of
recomputing either.  Scheme instances must be cached here because the
``holds`` cache keys on scheme identity: a service that rebuilt the scheme
per request would never hit it.

Requests come in as the typed messages of :mod:`repro.service.messages` and
always come back as typed responses — every expected failure
(unknown scheme, bad parameter, unresolvable graph, no-instance handed to
the prover, a ground truth that raises) is an :class:`ErrorResponse` with a
machine-readable code, never a traceback.

Concurrency: a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
backs :meth:`submit` / :meth:`submit_many`.  The underlying caches are
thread-safe, and the per-request evaluation rides the engine's own batched
early-exit entry points (``run_many`` / ``any_accepted`` inside
:func:`~repro.core.scheme.evaluate_scheme`); :meth:`submit_many` adds
batch-level early exit on top — ``stop_on_failure`` cancels everything
queued behind the first failed verdict.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

import networkx as nx

from repro.caching import LRUCache, cache_stats, cache_stats_since
from repro.core.cache import cached_evaluation_identifiers
from repro.core.scheme import NotAYesInstance, evaluate_scheme
from repro.experiments import SweepSpec, run_sweep
from repro.graphs.generators import GraphSpecError, build_graph_spec
from repro.registry import REGISTRY, RegistryError, SchemeInfo
from repro.service.messages import (
    BatchRequest,
    BatchResponse,
    CertifyRequest,
    CertifyResponse,
    ErrorResponse,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    SweepRequest,
    SweepResponse,
)

_ENGINES = ("compiled", "legacy")

#: Default worker-pool width; deliberately small — the workload is CPU-bound.
DEFAULT_WORKERS = 4


class CertificationService:
    """One facade, many schemes: a resident prover/verifier answering requests.

    Parameters
    ----------
    workers:
        Width of the bounded worker pool behind :meth:`submit` /
        :meth:`submit_many` (synchronous :meth:`certify` / :meth:`sweep`
        calls never touch the pool).
    scheme_cache_size:
        How many scheme instances to keep alive, keyed by
        ``(registry key, resolved params)``.
    """

    def __init__(self, workers: int = DEFAULT_WORKERS, scheme_cache_size: int = 128) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._schemes = LRUCache(maxsize=scheme_cache_size)
        self._counter_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "certify": 0,
            "sweep": 0,
            "stats": 0,
            "errors": 0,
            "batches": 0,
        }
        self._cache_baseline = cache_stats()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down; synchronous calls keep working."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "CertificationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("the service is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="certify"
                )
            return self._pool

    # -- bookkeeping ---------------------------------------------------------

    def _count(self, kind: str) -> None:
        with self._counter_lock:
            self._counters[kind] = self._counters.get(kind, 0) + 1

    def stats(self) -> Dict[str, Any]:
        """Request counters plus per-cache hit/miss/size statistics.

        ``caches_since_start`` is the delta against the counters observed
        when this service was constructed — the numbers a cache-reuse test
        (or a dashboard) actually wants.
        """
        with self._counter_lock:
            counters = dict(self._counters)
        return {
            "service": {"workers": self.workers, "requests": counters},
            "schemes_cached": len(self._schemes),
            "caches": cache_stats(),
            "caches_since_start": cache_stats_since(self._cache_baseline),
        }

    # -- scheme instances ----------------------------------------------------

    def _scheme(self, info: SchemeInfo, params: Dict[str, Any]):
        key = (info.key, tuple(sorted(params.items(), key=repr)))
        return self._schemes.get_or_compute(key, lambda: info.factory(**params))

    # -- request handling ----------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Dispatch any typed request; the wire protocol's single entry point."""
        if isinstance(request, CertifyRequest):
            return self.certify(request)
        if isinstance(request, SweepRequest):
            return self.sweep(request)
        if isinstance(request, StatsRequest):
            self._count("stats")
            return StatsResponse(result=self.stats())
        if isinstance(request, BatchRequest):
            # The wire form of submit_many: the batch fans out over the
            # worker pool and early-exits exactly like the in-process call.
            return BatchResponse(
                responses=tuple(
                    self.submit_many(
                        request.requests, stop_on_failure=request.stop_on_failure
                    )
                )
            )
        self._count("errors")
        return ErrorResponse(
            code="invalid-request",
            message=f"unsupported request type {type(request).__name__}",
        )

    def certify(
        self, request: CertifyRequest, *, graph: Optional[nx.Graph] = None
    ) -> Union[CertifyResponse, ErrorResponse]:
        """Answer one certification question.

        ``graph`` lets in-process callers (the :mod:`repro.api` facade)
        hand over an already-built :class:`networkx.Graph`; wire callers
        always go through the ``family:size`` specifier in the request.
        """

        def fail(code: str, message: str) -> ErrorResponse:
            self._count("errors")
            return ErrorResponse(code=code, message=message, request_op=request.op)

        try:
            info = REGISTRY.get(request.scheme)
        except RegistryError as error:
            return fail("unknown-scheme", str(error))
        except TypeError:
            # e.g. an unhashable scheme value smuggled in over the wire.
            return fail("invalid-request", f"scheme must be a string, got {request.scheme!r}")
        try:
            params = info.resolve_params(request.params)
        except RegistryError as error:
            return fail("invalid-param", str(error))
        except TypeError:
            return fail("invalid-request", f"params must be a mapping, got {request.params!r}")
        if request.engine not in _ENGINES:
            return fail(
                "invalid-param",
                f"unknown engine {request.engine!r}; use one of {_ENGINES}",
            )
        # Integer seeds are part of the contract: they are what makes the
        # request deterministic and its caches reusable across callers.
        for name, value in (("seed", request.seed), ("trials", request.trials)):
            if not isinstance(value, int) or isinstance(value, bool):
                return fail("invalid-request", f"{name} must be an integer, got {value!r}")
        if request.trials < 0:
            return fail("invalid-param", "trials must be non-negative")
        if graph is None:
            try:
                graph = build_graph_spec(request.graph, seed=request.seed)
            except GraphSpecError as error:
                return fail("invalid-graph", str(error))

        try:
            scheme = self._scheme(info, params)
            report = evaluate_scheme(
                scheme,
                graph,
                seed=request.seed,
                adversarial_trials=request.trials,
                engine=request.engine,
            )
            certificates = None
            if request.include_certificates and report.holds:
                ids = cached_evaluation_identifiers(graph, request.seed)
                certificates = {
                    repr(vertex): {"id": ids[vertex], "hex": certificate.hex()}
                    for vertex, certificate in scheme.prove(graph, ids).items()
                }
        except NotAYesInstance as error:
            return fail("not-a-yes-instance", str(error))
        except ValueError as error:
            # The exact decision procedures raise when the instance is out of
            # their reach (e.g. treedepth on a long path without a model
            # builder) and the structural checks raise on malformed graphs.
            return fail("undecidable", str(error))
        except Exception as error:  # noqa: BLE001 - the service must not crash
            return fail("internal-error", f"{type(error).__name__}: {error}")

        self._count("certify")
        return CertifyResponse(
            scheme=scheme.name,
            registry_key=info.key,
            graph=request.graph,
            vertices=graph.number_of_nodes(),
            edges=graph.number_of_edges(),
            holds=report.holds,
            accepted=report.completeness_ok,
            sound=report.soundness_ok,
            max_certificate_bits=report.max_certificate_bits,
            bound=info.bound.label,
            engine=request.engine,
            seed=request.seed,
            certificates=certificates,
        )

    def sweep(self, request: SweepRequest) -> Union[SweepResponse, ErrorResponse]:
        """Run a whole declarative sweep as one request."""

        def fail(code: str, message: str) -> ErrorResponse:
            self._count("errors")
            return ErrorResponse(code=code, message=message, request_op=request.op)

        try:
            spec = SweepSpec(
                scheme=request.scheme,
                family=request.family,
                sizes=request.sizes,
                params=request.params,
                trials=request.trials,
                seed=request.seed,
                engine=request.engine,
                check_bound=request.check_bound,
                measure=request.measure,
                name=request.name,
            ).validate()
        except RegistryError as error:
            code = "unknown-scheme" if request.scheme not in REGISTRY else "invalid-param"
            return fail(code, str(error))
        try:
            result = self.run_sweep_spec(spec)
        except GraphSpecError as error:
            return fail("invalid-graph", str(error))
        except NotAYesInstance as error:
            return fail("not-a-yes-instance", str(error))
        except ValueError as error:
            return fail("undecidable", str(error))
        except Exception as error:  # noqa: BLE001
            return fail("internal-error", f"{type(error).__name__}: {error}")
        return SweepResponse(result=result.to_dict())

    def run_sweep_spec(self, spec: SweepSpec):
        """Execute a validated :class:`SweepSpec` inside this service.

        The in-process path :mod:`benchmarks/_harness` and the wire ``sweep``
        op share; it exists so every sweep a benchmark runs counts in
        :meth:`stats` and reuses this service's warm caches.
        """
        result = run_sweep(spec)
        self._count("sweep")
        return result

    # -- batched submission --------------------------------------------------

    def submit(self, request: Request) -> "Future[Response]":
        """Queue one request on the bounded worker pool.

        A :class:`BatchRequest` is rejected outright: its members need the
        pool slot the wrapping future would occupy, which deadlocks a
        saturated pool (in-process callers use :meth:`submit_many` directly;
        the wire protocol dispatches batches through :meth:`handle` on the
        connection thread).
        """
        if isinstance(request, BatchRequest):
            raise ValueError(
                "a batch cannot be queued on the worker pool; "
                "use submit_many(batch.requests) or handle(batch)"
            )
        return self._executor().submit(self.handle, request)

    def submit_many(
        self,
        requests: Iterable[Request],
        stop_on_failure: bool = False,
    ) -> List[Response]:
        """Run a batch through the worker pool, preserving order.

        With ``stop_on_failure`` the batch early-exits like the engine's
        ``any_accepted``: after the first response that is an error or a
        failed verdict, every request still waiting in the queue is
        cancelled and answered with a ``skipped`` error instead of running.
        """
        self._count("batches")
        batch: Sequence[Request] = list(requests)
        if any(isinstance(request, BatchRequest) for request in batch):
            # Nested batches would wait on pool slots their wrapper occupies
            # — the same deadlock submit() guards against.
            raise ValueError("batches cannot contain batches")
        futures = [self._executor().submit(self.handle, request) for request in batch]
        responses: List[Response] = []
        failed = False
        for request, future in zip(batch, futures):
            if failed and future.cancel():
                responses.append(
                    ErrorResponse(
                        code="skipped",
                        message="batch stopped early by a previous failure",
                        request_op=request.op,
                    )
                )
                continue
            response = future.result()
            responses.append(response)
            if stop_on_failure and not _response_ok(response):
                failed = True
        return responses


def _response_ok(response: Response) -> bool:
    """Did this response carry a clean verdict (for batch early exit)?"""
    if isinstance(response, ErrorResponse):
        return False
    if isinstance(response, CertifyResponse):
        return response.verdict_ok and response.sound is not False
    if isinstance(response, SweepResponse):
        return response.clean
    return True
