"""The long-lived certification service.

A :class:`CertificationService` is the compile-once split of PR 1 turned
into a resident process component: it owns the LRU caches (compiled
topologies, ``holds()`` ground truth, identifier assignments, treedepth /
treewidth decompositions — see :mod:`repro.caching` and
:mod:`repro.core.cache`) plus a cache of scheme *instances*, so the second
request for the same ``(graph, seed)`` re-verifies against an
already-compiled topology and an already-decided ground truth instead of
recomputing either.  Scheme instances must be cached here because the
``holds`` cache keys on scheme identity: a service that rebuilt the scheme
per request would never hit it.

Requests come in as the typed messages of :mod:`repro.service.messages` and
always come back as typed responses — every expected failure
(unknown scheme, bad parameter, unresolvable graph, no-instance handed to
the prover, a ground truth that raises) is an :class:`ErrorResponse` with a
machine-readable code, never a traceback.

Concurrency: a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
backs :meth:`submit` / :meth:`submit_many`.  The underlying caches are
thread-safe, and the per-request evaluation rides the engine's own batched
early-exit entry points (``run_many`` / ``any_accepted`` inside
:func:`~repro.core.scheme.evaluate_scheme`); :meth:`submit_many` adds
batch-level early exit on top — ``stop_on_failure`` cancels everything
queued behind the first failed verdict.

Fault tolerance: the wire protocol routes every request through
:meth:`respond`, which enforces the request's deadline (a frozen or slow
handler becomes a structured ``timeout`` error, never a hung connection),
registers the request id with a :class:`CancelScope` so a ``cancel`` op —
or a dead connection detected mid-batch — can stop queued and in-flight
work cooperatively, and replays completed responses idempotently when the
same ``request_id`` is resubmitted after a broken transport.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

import networkx as nx

from repro.caching import LRUCache, cache_stats, cache_stats_since
from repro.core.cache import cached_evaluation_identifiers
from repro.core.scheme import NotAYesInstance, evaluate_scheme
from repro.experiments import (
    ExperimentCancelled,
    FormulaSpec,
    LowerBoundSpec,
    RadiusSpec,
    SweepSpec,
    run_formula,
    run_lower_bound,
    run_radius,
    run_sweep,
)
from repro.formulas import (
    FormulaError,
    compile_formula,
    formula_cache_stats,
    resolve_formula_params,
)
from repro.graphs.generators import GraphSpecError, build_graph_spec
from repro.lower_bounds.catalog import LOWER_BOUND_CONSTRUCTIONS
from repro.registry import REGISTRY, RegistryError, SchemeInfo
from repro.service.messages import (
    BatchRequest,
    BatchResponse,
    CancelRequest,
    CancelResponse,
    CertifyRequest,
    CertifyResponse,
    ErrorResponse,
    FormulaRequest,
    FormulaResponse,
    HealthRequest,
    HealthResponse,
    LowerBoundRequest,
    LowerBoundResponse,
    RadiusRequest,
    RadiusResponse,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    SweepRequest,
    SweepResponse,
)
from repro.engines import validate_engine

#: Default worker-pool width; deliberately small — the workload is CPU-bound.
DEFAULT_WORKERS = 4

#: How often a scope-supervised wait re-checks for cancellation, expiry and
#: connection death.  Coarse enough to stay off the profile, fine enough
#: that a cancel lands within human reaction time.
_POLL_INTERVAL_S = 0.05


class CancelScope:
    """The cooperative stop-signal one request (or batch) runs under.

    A scope combines three stop conditions — an explicit :meth:`cancel`, a
    wall-clock deadline, and an optional ``is_alive`` probe (the connection
    that asked for the work) — behind one :meth:`check` that returns the
    stop *reason* (an error code: ``"cancelled"`` or ``"timeout"``) or
    ``None``.  Handlers poll it at natural boundaries (between batch
    members, between sweep grid points); scope-aware waits block on
    :meth:`wait` so an external cancel wakes them immediately.
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        is_alive: Optional[Callable[[], bool]] = None,
    ) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None
        self.deadline_at = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        self.is_alive = is_alive
        self._points_lock = threading.Lock()
        self._points: List[Dict[str, Any]] = []

    def note_point(self, point: Any) -> None:
        """Record one completed unit of work (a grid point) for salvage.

        Runners report finished points here as they land; when the scope
        trips, the structured ``timeout``/``cancelled`` answer carries a
        snapshot of everything noted so far, so a driver can keep the
        completed prefix instead of re-running the whole shard.
        """
        data = point.to_dict() if hasattr(point, "to_dict") else dict(point)
        with self._points_lock:
            self._points.append(data)

    def partial_points(self) -> List[Dict[str, Any]]:
        """A snapshot of the points noted so far (safe to call while the
        handler is still appending on another thread)."""
        with self._points_lock:
            return list(self._points)

    def cancel(self, reason: str = "cancelled") -> None:
        """Signal the scope; the first reason wins (later calls are no-ops)."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    def cancelled(self) -> bool:
        return self._event.is_set()

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (never negative); None = unbounded."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - time.monotonic())

    def check(self) -> Optional[str]:
        """The stop reason, if any of the three conditions has triggered."""
        if self._event.is_set():
            return self._reason
        if self.deadline_at is not None and time.monotonic() >= self.deadline_at:
            self.cancel("timeout")
            return self._reason
        if self.is_alive is not None and not self.is_alive():
            self.cancel("cancelled")
            return self._reason
        return None

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until cancelled (True) or ``timeout`` elapses (False).

        The deadline is honoured: the wait never outlives it.  This is what
        a scope-aware sleep (e.g. the fault injector's frozen handler) calls
        instead of ``time.sleep`` — cancellation wakes it immediately.
        """
        budget = self.remaining()
        if budget is not None and (timeout is None or budget < timeout):
            timeout = budget
        flag = self._event.wait(timeout)
        self.check()  # a deadline that expired during the wait becomes a reason
        return flag or self._event.is_set()


class _Inflight:
    """Registry entry of one supervised request: its scope and its future."""

    __slots__ = ("scope", "future")

    def __init__(self, scope: CancelScope, future: Optional["Future[Response]"] = None):
        self.scope = scope
        self.future = future


class CertificationService:
    """One facade, many schemes: a resident prover/verifier answering requests.

    Parameters
    ----------
    workers:
        Width of the bounded worker pool behind :meth:`submit` /
        :meth:`submit_many` (synchronous :meth:`certify` / :meth:`sweep`
        calls never touch the pool).
    scheme_cache_size:
        How many scheme instances to keep alive, keyed by
        ``(registry key, resolved params)``.
    default_deadline_s:
        Deadline applied by :meth:`respond` to requests that do not carry
        their own ``deadline_s``; ``None`` (the default) means unbounded.
    completed_cache_size:
        How many finished responses to keep for idempotent replay: a
        request resubmitted with a ``request_id`` already answered gets the
        cached response back instead of re-running (the client's retry
        after a broken transport rides on this).
    """

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        scheme_cache_size: int = 128,
        default_deadline_s: Optional[float] = None,
        completed_cache_size: int = 256,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.default_deadline_s = default_deadline_s
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._schemes = LRUCache(maxsize=scheme_cache_size)
        self._counter_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "certify": 0,
            "sweep": 0,
            "formula": 0,
            "lower_bound": 0,
            "radius": 0,
            "stats": 0,
            "health": 0,
            "errors": 0,
            "batches": 0,
            "timeouts": 0,
            "cancelled": 0,
            "replayed": 0,
        }
        # Per-engine routing counters: how often each concrete engine
        # actually ran (one tick per certify evaluation / per executed
        # experiment point that reports an ``engine_resolved``).
        self._routing: Dict[str, int] = {}
        self._pending = 0
        self._cache_baseline = cache_stats()
        self._closed = False
        self._started_at = time.monotonic()
        self._inflight: Dict[str, _Inflight] = {}
        self._inflight_lock = threading.Lock()
        # Deliberately NOT in the global cache registry: replay is a wire
        # concern, and registering it would shift every cache-stats test.
        self._completed = LRUCache(maxsize=completed_cache_size)
        #: Optional :class:`repro.service.faults.FaultInjector` consulted at
        #: the top of :meth:`handle`; None in production.
        self.fault_injector: Optional[Any] = None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down; synchronous calls keep working."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "CertificationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("the service is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="certify"
                )
            return self._pool

    # -- bookkeeping ---------------------------------------------------------

    def _count(self, kind: str) -> None:
        with self._counter_lock:
            self._counters[kind] = self._counters.get(kind, 0) + 1

    def _count_routing(self, engines: Iterable[Optional[str]]) -> None:
        """Tick the per-engine routing counters (None entries are skipped)."""
        with self._counter_lock:
            for engine in engines:
                if engine is not None:
                    self._routing[engine] = self._routing.get(engine, 0) + 1

    def stats(self) -> Dict[str, Any]:
        """Request counters plus per-cache hit/miss/size statistics.

        ``caches_since_start`` is the delta against the counters observed
        when this service was constructed — the numbers a cache-reuse test
        (or a dashboard) actually wants.
        """
        with self._counter_lock:
            counters = dict(self._counters)
            routing = dict(self._routing)
        formula_cache = formula_cache_stats()
        return {
            "service": {
                "workers": self.workers,
                "requests": counters,
                "routing": routing,
                "formula_compile_hits": formula_cache["hits"],
                "formula_compile_misses": formula_cache["misses"],
            },
            "schemes_cached": len(self._schemes),
            "caches": cache_stats(),
            "caches_since_start": cache_stats_since(self._cache_baseline),
        }

    # -- scheme instances ----------------------------------------------------

    def _scheme(self, info: SchemeInfo, params: Dict[str, Any]):
        key = (info.key, tuple(sorted(params.items(), key=repr)))
        return self._schemes.get_or_compute(key, lambda: info.factory(**params))

    # -- request handling ----------------------------------------------------

    def handle(self, request: Request, scope: Optional[CancelScope] = None) -> Response:
        """Dispatch any typed request synchronously.

        ``scope`` is the cancel scope the work runs under (threaded through
        to the cooperative stop-checks of sweeps, lower-bound searches and
        batches); in-process callers that want no deadline simply omit it.
        Wire connections enter through :meth:`respond`, which builds the
        scope from the request's ``deadline_s`` and supervises the wait.
        """
        injector = self.fault_injector
        if injector is not None:
            injector.before_handle(request, scope)
        if isinstance(request, CertifyRequest):
            return self.certify(request)
        if isinstance(request, SweepRequest):
            return self.sweep(request, scope=scope)
        if isinstance(request, FormulaRequest):
            return self.formula(request, scope=scope)
        if isinstance(request, LowerBoundRequest):
            return self.lower_bound(request, scope=scope)
        if isinstance(request, RadiusRequest):
            return self.radius(request, scope=scope)
        if isinstance(request, StatsRequest):
            self._count("stats")
            return StatsResponse(result=self.stats())
        if isinstance(request, HealthRequest):
            return self.health()
        if isinstance(request, CancelRequest):
            return self.cancel_request(request)
        if isinstance(request, BatchRequest):
            # The wire form of submit_many: the batch fans out over the
            # worker pool and early-exits exactly like the in-process call.
            return BatchResponse(
                responses=tuple(
                    self.submit_many(
                        request.requests,
                        stop_on_failure=request.stop_on_failure,
                        scope=scope,
                    )
                )
            )
        self._count("errors")
        return ErrorResponse(
            code="invalid-request",
            message=f"unsupported request type {type(request).__name__}",
        )

    def respond(
        self,
        request: Request,
        *,
        is_alive: Optional[Callable[[], bool]] = None,
    ) -> Response:
        """Answer a wire request under the fault-tolerance contract.

        This is what the protocol layer calls instead of :meth:`handle`.
        On top of plain dispatch it provides:

        * **deadlines** — the request's ``deadline_s`` (or the service's
          ``default_deadline_s``) bounds the wait; expiry answers with a
          structured ``timeout`` error, never a hung connection, even if
          the handler itself is frozen;
        * **cancellation** — work-carrying requests register their
          ``request_id`` so a ``cancel`` op (from any connection) or a dead
          client connection (``is_alive`` probe) stops queued and in-flight
          work cooperatively;
        * **idempotent replay** — a ``request_id`` that already finished
          returns its cached response without re-running, which makes a
          client retry after a broken transport exactly-once in effect.

        Control-plane ops (``stats``, ``health``, ``cancel``) bypass the
        worker pool entirely so they stay responsive while the pool is
        saturated or wedged.
        """
        if isinstance(request, (StatsRequest, HealthRequest, CancelRequest)):
            # Control-plane first: a CancelRequest's request_id names its
            # *target*, not itself — it must never hit the replay cache.
            return self.handle(request)
        request_id = getattr(request, "request_id", None)
        if request_id is not None:
            cached = self._completed.get(request_id)
            if cached is not None:
                self._count("replayed")
                return cached
        deadline_s = getattr(request, "deadline_s", None)
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        scope = CancelScope(deadline_s=deadline_s, is_alive=is_alive)
        entry = _Inflight(scope)
        if request_id is not None:
            with self._inflight_lock:
                self._inflight[request_id] = entry
        try:
            if isinstance(request, BatchRequest):
                # Batches run on the connection thread (their members need
                # the pool slots — see submit()); submit_many enforces the
                # scope between members, so the deadline still binds.
                try:
                    response = self.handle(request, scope=scope)
                except ExperimentCancelled as error:
                    response = self._stopped_error(error.reason, request.op)
            else:
                response = self._supervised(request, scope, entry)
        finally:
            if request_id is not None:
                with self._inflight_lock:
                    self._inflight.pop(request_id, None)
        if request_id is not None and not _stopped_response(response):
            # timeout/cancelled answers are not replayable: a retry of that
            # id is a fresh attempt, not a duplicate delivery.
            self._completed.put(request_id, response)
        return response

    def _supervised(
        self, request: Request, scope: CancelScope, entry: _Inflight
    ) -> Response:
        """Run one request on the pool, polling the scope while waiting."""
        try:
            future = self._executor().submit(self.handle, request, scope=scope)
        except RuntimeError:
            # The pool is closed (service shutting down). Synchronous calls
            # keep working on a closed service, so answer on this thread —
            # the scope still reaches the handler's stop-checks.
            try:
                return self.handle(request, scope=scope)
            except ExperimentCancelled as error:
                return self._stopped_error(error.reason, request.op)
        entry.future = future
        self._track_pending(future)
        while True:
            try:
                return future.result(timeout=_POLL_INTERVAL_S)
            except FutureTimeoutError:
                reason = scope.check()
                if reason is None:
                    continue
                future.cancel()
                return self._stopped_error(reason, request.op, scope=scope)
            except CancelledError:
                reason = scope.check() or "cancelled"
                return self._stopped_error(reason, request.op, scope=scope)
            except ExperimentCancelled as error:
                # A stop-check fired before the handler reached its own
                # ExperimentCancelled mapping (e.g. a scope-aware freeze
                # ahead of dispatch): same structured answer.
                return self._stopped_error(error.reason, request.op, scope=scope)

    def _stopped_error(
        self, reason: str, request_op: str, scope: Optional[CancelScope] = None
    ) -> ErrorResponse:
        """The structured answer for a request stopped by its scope.

        When the scope collected completed grid points before tripping, the
        answer salvages them in its ``partial`` field — promptly (the answer
        never waits for the handler to unwind) but losslessly.
        """
        self._count("timeouts" if reason == "timeout" else "cancelled")
        message = (
            "deadline expired before the request finished"
            if reason == "timeout"
            else "request cancelled before it finished"
        )
        return ErrorResponse(
            code=reason,
            message=message,
            request_op=request_op,
            partial=_partial_payload(scope),
        )

    def _point_sink(
        self, op: str, scope: Optional[CancelScope]
    ) -> Optional[Callable[[Any], None]]:
        """The per-point progress callback a runner gets, or None.

        Completed points are noted on the scope (for salvage into a partial
        ``timeout`` answer) and the fault injector's ``straggle`` action gets
        its chance to slow the run between points — scope-aware, so an
        injected straggler still honours deadlines and cancellation.
        """
        injector = self.fault_injector
        if scope is None and injector is None:
            return None

        def on_point(point: Any) -> None:
            if scope is not None:
                scope.note_point(point)
            if injector is not None:
                injector.straggle(op, scope)

        return on_point

    def _track_pending(self, future: "Future[Response]") -> None:
        """Maintain the queued-or-running gauge the ``health`` op exposes."""
        with self._counter_lock:
            self._pending += 1

        def _done(_: "Future[Response]") -> None:
            with self._counter_lock:
                self._pending -= 1

        future.add_done_callback(_done)

    def health(self) -> HealthResponse:
        """Liveness and load, the shard driver's dead-or-busy discriminator."""
        self._count("health")
        with self._counter_lock:
            counters = dict(self._counters)
            pending = self._pending
        with self._inflight_lock:
            inflight = len(self._inflight)
        with self._pool_lock:
            closed = self._closed
            pool = self._pool
            threads = getattr(pool, "_threads", ()) if pool is not None else ()
            alive = sum(1 for thread in threads if thread.is_alive())
        return HealthResponse(
            result={
                "ok": not closed,
                "workers": self.workers,
                "worker_threads_alive": alive,
                "queue_depth": pending,
                "inflight": inflight,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "default_deadline_s": self.default_deadline_s,
                "formula_cache_size": formula_cache_stats()["size"],
                "requests": counters,
            }
        )

    def cancel_request(self, request: CancelRequest) -> CancelResponse:
        """Resolve a ``cancel`` op against the in-flight registry."""
        with self._inflight_lock:
            entry = self._inflight.get(request.request_id)
        if entry is None:
            state = "finished" if request.request_id in self._completed else "unknown"
            return CancelResponse(
                result={
                    "request_id": request.request_id,
                    "cancelled": False,
                    "state": state,
                }
            )
        future = entry.future
        state = "queued" if future is not None and future.cancel() else "running"
        entry.scope.cancel("cancelled")
        return CancelResponse(
            result={"request_id": request.request_id, "cancelled": True, "state": state}
        )

    def certify(
        self, request: CertifyRequest, *, graph: Optional[nx.Graph] = None
    ) -> Union[CertifyResponse, ErrorResponse]:
        """Answer one certification question.

        ``graph`` lets in-process callers (the :mod:`repro.api` facade)
        hand over an already-built :class:`networkx.Graph`; wire callers
        always go through the ``family:size`` specifier in the request.

        A request carrying ``formula`` instead of ``scheme`` compiles an
        ephemeral scheme through :mod:`repro.formulas` (``params`` holds
        the compilation knobs); parse/compile failures answer with the
        structured ``invalid-formula`` code, never a traceback.
        """

        def fail(code: str, message: str) -> ErrorResponse:
            self._count("errors")
            return ErrorResponse(code=code, message=message, request_op=request.op)

        compiled = None
        info = None
        if request.formula is not None:
            try:
                compiled = compile_formula(
                    request.formula, **resolve_formula_params(request.params)
                )
            except FormulaError as error:
                return fail("invalid-formula", str(error))
            except TypeError:
                return fail(
                    "invalid-request", f"params must be a mapping, got {request.params!r}"
                )
        else:
            try:
                info = REGISTRY.get(request.scheme)
            except RegistryError as error:
                return fail("unknown-scheme", str(error))
            except TypeError:
                # e.g. an unhashable scheme value smuggled in over the wire.
                return fail(
                    "invalid-request", f"scheme must be a string, got {request.scheme!r}"
                )
            try:
                params = info.resolve_params(request.params)
            except RegistryError as error:
                return fail("invalid-param", str(error))
            except TypeError:
                return fail(
                    "invalid-request", f"params must be a mapping, got {request.params!r}"
                )
        try:
            validate_engine(request.engine, context="certify requests")
        except ValueError as error:
            return fail("invalid-param", str(error))
        # Integer seeds are part of the contract: they are what makes the
        # request deterministic and its caches reusable across callers.
        for name, value in (("seed", request.seed), ("trials", request.trials)):
            if not isinstance(value, int) or isinstance(value, bool):
                return fail("invalid-request", f"{name} must be an integer, got {value!r}")
        if request.trials < 0:
            return fail("invalid-param", "trials must be non-negative")
        if graph is None:
            try:
                graph = build_graph_spec(request.graph, seed=request.seed)
            except GraphSpecError as error:
                return fail("invalid-graph", str(error))

        try:
            scheme = compiled.scheme if compiled is not None else self._scheme(info, params)
            report = evaluate_scheme(
                scheme,
                graph,
                seed=request.seed,
                adversarial_trials=request.trials,
                engine=request.engine,
            )
            certificates = None
            if request.include_certificates and report.holds:
                ids = cached_evaluation_identifiers(graph, request.seed)
                certificates = {
                    repr(vertex): {"id": ids[vertex], "hex": certificate.hex()}
                    for vertex, certificate in scheme.prove(graph, ids).items()
                }
        except NotAYesInstance as error:
            return fail("not-a-yes-instance", str(error))
        except ValueError as error:
            # The exact decision procedures raise when the instance is out of
            # their reach (e.g. treedepth on a long path without a model
            # builder) and the structural checks raise on malformed graphs.
            return fail("undecidable", str(error))
        except Exception as error:  # noqa: BLE001 - the service must not crash
            return fail("internal-error", f"{type(error).__name__}: {error}")

        self._count("certify")
        self._count_routing((report.engine_resolved,))
        return CertifyResponse(
            scheme=scheme.name,
            registry_key="formula" if compiled is not None else info.key,
            graph=request.graph,
            vertices=graph.number_of_nodes(),
            edges=graph.number_of_edges(),
            holds=report.holds,
            accepted=report.completeness_ok,
            sound=report.soundness_ok,
            max_certificate_bits=report.max_certificate_bits,
            bound=compiled.bound_label if compiled is not None else info.bound.label,
            engine=request.engine,
            engine_resolved=report.engine_resolved,
            seed=request.seed,
            certificates=certificates,
        )

    def sweep(
        self, request: SweepRequest, scope: Optional[CancelScope] = None
    ) -> Union[SweepResponse, "FormulaResponse", ErrorResponse]:
        """Run a whole declarative sweep (or one shard of it) as one request.

        A request carrying ``formula`` instead of ``scheme`` runs through
        :class:`~repro.experiments.FormulaSpec` (``params`` holds the
        compilation knobs) and answers with a :class:`FormulaResponse` —
        the artifact payload then has kind ``"formula"``.
        """

        def fail(code: str, message: str) -> ErrorResponse:
            self._count("errors")
            return ErrorResponse(code=code, message=message, request_op=request.op)

        if request.formula is not None:
            if request.measure != "full":
                return fail("invalid-param", "formula sweeps only support measure='full'")
            if request.id_exponent is not None:
                return fail("invalid-param", "formula sweeps do not support id_exponent")
            try:
                knobs = resolve_formula_params(request.params)
            except FormulaError as error:
                return fail("invalid-formula", str(error))
            return self.formula(
                FormulaRequest(
                    formula=request.formula,
                    family=request.family,
                    sizes=request.sizes,
                    t=knobs["t"],
                    k=knobs["k"],
                    route=knobs["route"],
                    model=knobs["model"],
                    trials=request.trials,
                    seed=request.seed,
                    engine=request.engine,
                    check_bound=request.check_bound,
                    shard=request.shard,
                    name=request.name,
                ),
                scope=scope,
            )
        try:
            spec = SweepSpec(
                scheme=request.scheme,
                family=request.family,
                sizes=request.sizes,
                params=request.params,
                trials=request.trials,
                seed=request.seed,
                engine=request.engine,
                check_bound=request.check_bound,
                measure=request.measure,
                id_exponent=request.id_exponent,
                shard=request.shard,
                name=request.name,
            ).validate()
        except RegistryError as error:
            code = "unknown-scheme" if request.scheme not in REGISTRY else "invalid-param"
            return fail(code, str(error))
        try:
            result = self.run_sweep_spec(spec, scope=scope)
        except ExperimentCancelled as error:
            self._count("errors")
            return ErrorResponse(
                code=error.reason,
                message=f"sweep stopped: {error.reason}",
                request_op=request.op,
                partial=_partial_payload(scope),
            )
        except GraphSpecError as error:
            return fail("invalid-graph", str(error))
        except NotAYesInstance as error:
            return fail("not-a-yes-instance", str(error))
        except ValueError as error:
            return fail("undecidable", str(error))
        except Exception as error:  # noqa: BLE001
            return fail("internal-error", f"{type(error).__name__}: {error}")
        return SweepResponse(result=result.to_dict())

    def run_sweep_spec(self, spec: SweepSpec, scope: Optional[CancelScope] = None):
        """Execute a validated :class:`SweepSpec` inside this service.

        The in-process path :mod:`benchmarks/_harness` and the wire ``sweep``
        op share; it exists so every sweep a benchmark runs counts in
        :meth:`stats` and reuses this service's warm caches.
        """
        result = run_sweep(
            spec,
            should_stop=scope.check if scope is not None else None,
            on_point=self._point_sink("sweep", scope),
        )
        self._count("sweep")
        self._count_routing(point.engine_resolved for point in result.points)
        return result

    def formula(
        self, request: FormulaRequest, scope: Optional[CancelScope] = None
    ) -> Union[FormulaResponse, ErrorResponse]:
        """Run a certificate-size series for an ad-hoc MSO formula.

        The formula is compiled once (fingerprint-keyed cache, shared with
        ``certify --formula``) and evaluated over the grid like a catalogue
        sweep; parse/compile failures answer with ``invalid-formula``.
        """

        def fail(code: str, message: str) -> ErrorResponse:
            self._count("errors")
            return ErrorResponse(code=code, message=message, request_op=request.op)

        try:
            spec = FormulaSpec(
                formula=request.formula,
                family=request.family,
                sizes=request.sizes,
                t=request.t,
                k=request.k,
                route=request.route,
                model=request.model,
                trials=request.trials,
                seed=request.seed,
                engine=request.engine,
                check_bound=request.check_bound,
                shard=request.shard,
                name=request.name,
            ).validate()
        except FormulaError as error:
            return fail("invalid-formula", str(error))
        except RegistryError as error:
            return fail("invalid-param", str(error))
        try:
            result = run_formula(
                spec,
                should_stop=scope.check if scope is not None else None,
                on_point=self._point_sink("formula", scope),
            )
        except ExperimentCancelled as error:
            self._count("errors")
            return ErrorResponse(
                code=error.reason,
                message=f"formula series stopped: {error.reason}",
                request_op=request.op,
                partial=_partial_payload(scope),
            )
        except GraphSpecError as error:
            return fail("invalid-graph", str(error))
        except NotAYesInstance as error:
            return fail("not-a-yes-instance", str(error))
        except FormulaError as error:
            return fail("invalid-formula", str(error))
        except ValueError as error:
            return fail("undecidable", str(error))
        except Exception as error:  # noqa: BLE001
            return fail("internal-error", f"{type(error).__name__}: {error}")
        self._count("formula")
        self._count_routing(point.engine_resolved for point in result.points)
        return FormulaResponse(result=result.to_dict())

    def lower_bound(
        self, request: LowerBoundRequest, scope: Optional[CancelScope] = None
    ) -> Union[LowerBoundResponse, ErrorResponse]:
        """Run a Section-7 lower-bound search (or one shard of it)."""

        def fail(code: str, message: str) -> ErrorResponse:
            self._count("errors")
            return ErrorResponse(code=code, message=message, request_op=request.op)

        try:
            spec = LowerBoundSpec(
                construction=request.construction,
                sizes=request.sizes,
                check_dichotomy=request.check_dichotomy,
                simulate=request.simulate,
                simulate_bits=request.simulate_bits,
                max_side_bits=request.max_side_bits,
                engine=request.engine,
                check_bound=request.check_bound,
                seed=request.seed,
                shard=request.shard,
                name=request.name,
            ).validate()
        except RegistryError as error:
            code = (
                "unknown-scheme"
                if request.construction not in LOWER_BOUND_CONSTRUCTIONS
                else "invalid-param"
            )
            return fail(code, str(error))
        try:
            result = run_lower_bound(
                spec,
                should_stop=scope.check if scope is not None else None,
                on_point=self._point_sink("lower-bound", scope),
            )
        except ExperimentCancelled as error:
            self._count("errors")
            return ErrorResponse(
                code=error.reason,
                message=f"lower-bound search stopped: {error.reason}",
                request_op=request.op,
                partial=_partial_payload(scope),
            )
        except ValueError as error:
            return fail("undecidable", str(error))
        except Exception as error:  # noqa: BLE001
            return fail("internal-error", f"{type(error).__name__}: {error}")
        self._count("lower_bound")
        self._count_routing(point.engine_resolved for point in result.points)
        return LowerBoundResponse(result=result.to_dict())

    def radius(
        self, request: RadiusRequest, scope: Optional[CancelScope] = None
    ) -> Union[RadiusResponse, ErrorResponse]:
        """Run an Appendix-A.1 radius-verification series as one request."""

        def fail(code: str, message: str) -> ErrorResponse:
            self._count("errors")
            return ErrorResponse(code=code, message=message, request_op=request.op)

        try:
            spec = RadiusSpec(
                family=request.family,
                sizes=request.sizes,
                bound=request.bound,
                radius=request.radius,
                seed=request.seed,
                shard=request.shard,
                name=request.name,
            ).validate()
        except RegistryError as error:
            return fail("invalid-param", str(error))
        try:
            result = run_radius(
                spec,
                should_stop=scope.check if scope is not None else None,
                on_point=self._point_sink("radius", scope),
            )
        except ExperimentCancelled as error:
            self._count("errors")
            return ErrorResponse(
                code=error.reason,
                message=f"radius series stopped: {error.reason}",
                request_op=request.op,
                partial=_partial_payload(scope),
            )
        except GraphSpecError as error:
            return fail("invalid-graph", str(error))
        except ValueError as error:
            return fail("undecidable", str(error))
        except Exception as error:  # noqa: BLE001
            return fail("internal-error", f"{type(error).__name__}: {error}")
        self._count("radius")
        return RadiusResponse(result=result.to_dict())

    # -- batched submission --------------------------------------------------

    def submit(self, request: Request) -> "Future[Response]":
        """Queue one request on the bounded worker pool.

        A :class:`BatchRequest` is rejected outright: its members need the
        pool slot the wrapping future would occupy, which deadlocks a
        saturated pool (in-process callers use :meth:`submit_many` directly;
        the wire protocol dispatches batches through :meth:`handle` on the
        connection thread).
        """
        if isinstance(request, BatchRequest):
            raise ValueError(
                "a batch cannot be queued on the worker pool; "
                "use submit_many(batch.requests) or handle(batch)"
            )
        future = self._executor().submit(self.handle, request)
        self._track_pending(future)
        return future

    def submit_many(
        self,
        requests: Iterable[Request],
        stop_on_failure: bool = False,
        scope: Optional[CancelScope] = None,
    ) -> List[Response]:
        """Run a batch through the worker pool, preserving order.

        With ``stop_on_failure`` the batch early-exits like the engine's
        ``any_accepted``: after the first response that is an error or a
        failed verdict, every request still waiting in the queue is
        cancelled and answered with a ``skipped`` error instead of running.

        ``scope`` (supplied by :meth:`respond` for wire batches) bounds the
        whole batch: when its deadline expires, its ``cancel`` fires, or
        the connection that asked dies, the queued tail is cancelled and
        every unanswered member comes back as a structured ``timeout`` /
        ``cancelled`` error — including the member running at the moment
        the scope tripped (its handler sees the scope and stops early).
        """
        self._count("batches")
        batch: Sequence[Request] = list(requests)
        if any(isinstance(request, BatchRequest) for request in batch):
            # Nested batches would wait on pool slots their wrapper occupies
            # — the same deadlock submit() guards against.
            raise ValueError("batches cannot contain batches")
        executor = self._executor()
        futures = []
        for request in batch:
            future = executor.submit(self.handle, request, scope=scope)
            self._track_pending(future)
            futures.append(future)
        responses: List[Response] = []
        failed = False
        stop_reason: Optional[str] = None
        # The walk below must stay syscall-free between waits: a cancel
        # sweep that yields the GIL per member (e.g. by probing the
        # connection) lets the CPU-bound workers start tail members between
        # cancels, defeating the early exit.  The scope is therefore only
        # consulted inside _scoped_result (where we block anyway); the
        # moment it trips, the whole remaining tail is cancelled at once.
        for position, (request, future) in enumerate(zip(batch, futures)):
            if stop_reason is not None:
                future.cancel()
                responses.append(
                    ErrorResponse(
                        code=stop_reason,
                        message=f"batch stopped ({stop_reason}) before this "
                        "request finished",
                        request_op=request.op,
                    )
                )
                continue
            if failed and future.cancel():
                responses.append(
                    ErrorResponse(
                        code="skipped",
                        message="batch stopped early by a previous failure",
                        request_op=request.op,
                    )
                )
                continue
            if scope is None:
                response = future.result()
            else:
                response = self._scoped_result(future, scope, request)
                if _stopped_response(response):
                    stop_reason = response.code
                    for pending in futures[position + 1 :]:
                        pending.cancel()
            responses.append(response)
            if stop_on_failure and not failed and not _response_ok(response):
                failed = True
                # Sweep the whole queued tail now: cancelling lazily, one
                # member per walk step, lets the workers stay ahead of the
                # walk and start members the early exit promised to skip.
                for pending in futures[position + 1 :]:
                    pending.cancel()
        return responses

    def _scoped_result(
        self, future: "Future[Response]", scope: CancelScope, request: Request
    ) -> Response:
        """Await one batch member under the batch's scope."""
        while True:
            try:
                return future.result(timeout=_POLL_INTERVAL_S)
            except FutureTimeoutError:
                reason = scope.check()
                if reason is None:
                    continue
                future.cancel()
                return self._stopped_error(reason, request.op)
            except CancelledError:
                reason = scope.check() or "cancelled"
                return self._stopped_error(reason, request.op)
            except ExperimentCancelled as error:
                return self._stopped_error(error.reason, request.op)


def _response_ok(response: Response) -> bool:
    """Did this response carry a clean verdict (for batch early exit)?"""
    if isinstance(response, ErrorResponse):
        return False
    if isinstance(response, CertifyResponse):
        return response.verdict_ok and response.sound is not False
    if isinstance(
        response, (SweepResponse, FormulaResponse, LowerBoundResponse, RadiusResponse)
    ):
        return response.clean
    return True


def _partial_payload(scope: Optional[CancelScope]) -> Optional[Dict[str, Any]]:
    """The salvageable-progress payload of a tripped scope, or None."""
    if scope is None:
        return None
    points = scope.partial_points()
    return {"points": points} if points else None


def _stopped_response(response: Response) -> bool:
    """Was this response a scope trip (timeout/cancel) rather than an answer?"""
    return isinstance(response, ErrorResponse) and response.code in (
        "timeout",
        "cancelled",
    )
