"""The self-healing shard driver: one experiment, an elastic fleet of workers.

``sweep --shard i/k`` (PR 3) made experiments shardable by hand: run the
``k`` shards yourself, keep every process alive yourself, ``merge`` the
partial artifacts yourself.  This module automates the whole loop and makes
it survive failures:

* :class:`LocalFleet` spawns ``python -m repro.cli serve --tcp 127.0.0.1:0``
  child processes and collects the addresses they announce (optionally with
  fault-injection flags — the chaos harness).  Each member's stderr is
  drained by a background thread into a bounded tail, so a member that dies
  on startup surfaces *its own* diagnostics, and members can be spawned and
  stopped individually mid-drive (the supervisor's levers);
* :class:`ShardDriver` dispatches the shards ``(0,k) .. (k-1,k)`` of one
  :class:`~repro.experiments.spec.ExperimentSpec` to the fleet as wire
  ``sweep`` / ``lower-bound`` requests, detects dead or wedged workers,
  re-dispatches lost shards to the survivors, and degrades gracefully all
  the way down to a single worker;
* the partial payloads are stitched back through
  :func:`~repro.experiments.artifacts.merge_artifacts`, so the driven
  result equals the unsharded run's artifact *exactly* (byte-identical
  under :func:`~repro.experiments.artifacts.canonical_payload`, which
  normalises only wall-clock timings).

Three self-healing mechanisms sit on top of the PR-6 retry loop:

**Straggler splitting** (``split=True``).  A shard ``(s, d)`` is the strided
index set ``s, s+d, s+2d, ...`` — so after its first ``m`` points the
*remainder* is still a plain arithmetic progression, and splitting it ``p``
ways yields the ordinary shards ``(s + (m+j)·d, d·p)``.  When a shard times
out or its worker dies, the driver does not re-run it whole: any finished
prefix carried by the structured ``timeout`` answer (the server's partial
salvage) is kept as a completed pseudo-shard, and only the remainder is
re-dispatched — split across the survivors so the slowest shard stops
gating the drive.  Because sub-shards are just ``(i, k)`` pairs with global
indices and derived per-point seeds, they ride the existing wire requests
and :func:`merge_artifacts` stitches them byte-identically.

**Partition-aware supervision.**  A transport failure no longer means
"dead": a fresh-connection probe classifies the worker as *alive* (answer
arrived — retry here), *confirmed dead* (connection refused — the process
is gone), or *suspect* (reachable but silent — a partition or a wedge).  A
suspect's shard is redistributed immediately, then the driver probes with
backoff: a recovered suspect rejoins the fleet, an exhausted one is
declared dead.  Every dispatch carries a monotonically fencing ``attempt``
number, so when a partition heals and the presumed-dead worker's late
answer finally lands, the stale completion is *discarded* (logged as
``superseded``), never merged twice.

**Elastic fleets.**  :meth:`ShardDriver.drive` accepts a supervisor (see
:class:`repro.service.supervisor.FleetSupervisor`) that watches the drive's
ledger, spawns replacement members when the fleet shrinks below the demand
band, and retires idle members when the queue drains — all within a
bounded respawn budget, so a crash-looping fleet converges to a clean
failure instead of spawning forever.

Failure taxonomy: transport errors and ``timeout`` / ``cancelled`` /
``internal-error`` responses are *transient* (the shard is retried, up to
``max_attempts`` dispatches); every other error code — ``unknown-scheme``,
``invalid-param``, ... — is *permanent* (retrying a bad spec on another
worker cannot help) and aborts the drive with a :class:`DriverError`.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.artifacts import (
    ARTIFACT_SCHEMA,
    ExperimentResult,
    merge_artifacts,
    result_from_payload,
)
from repro.experiments.formula import FormulaSpec
from repro.experiments.lower_bound import LowerBoundSpec
from repro.experiments.radius import RadiusSpec
from repro.experiments.spec import ExperimentSpec, SweepSpec
from repro.service.client import (
    ServiceClient,
    ServiceConnectTimeout,
    ServiceTransportError,
)
from repro.service.messages import (
    ErrorResponse,
    FormulaRequest,
    FormulaResponse,
    HealthResponse,
    LowerBoundRequest,
    LowerBoundResponse,
    RadiusRequest,
    RadiusResponse,
    Request,
    Response,
    SweepRequest,
    SweepResponse,
)

#: Error codes worth retrying on another worker (or the same one later).
#: Everything else is the request's own fault and aborts the drive.
TRANSIENT_CODES = ("timeout", "cancelled", "connect-timeout", "internal-error")

#: Default grace added to a shard's deadline to obtain the client read
#: timeout: the server answers a structured ``timeout`` *within* the
#: deadline, so a read exceeding deadline + grace means the worker itself
#: is gone, wedged, or on the wrong side of a partition.
_READ_GRACE_S = 10.0


class DriverError(RuntimeError):
    """The drive could not complete: a permanent error, an exhausted shard,
    or the whole fleet lost while work remained."""


@dataclass(frozen=True)
class DriveReport:
    """What one :meth:`ShardDriver.drive` run did, worker by worker.

    ``result`` is the merged experiment result; ``assignments`` maps each
    *original* shard index to the worker that first landed work for it;
    ``attempts`` counts dispatches per original shard (1 = no retry was
    needed; a split shard reports the deepest attempt among its pieces);
    ``workers_lost`` lists the workers that died or wedged mid-drive;
    ``events`` is the ordered fault log — ``(event, worker, item, detail)``
    tuples.  The healing counters: ``shards_split`` work items replaced by
    sub-shards, ``points_salvaged`` grid points rescued from partial
    (timed-out) answers, ``points_redispatched`` grid points that had to be
    re-run elsewhere — the drive's "re-verified work", strictly less than
    whole-shard reruns whenever salvage succeeded.
    """

    result: ExperimentResult
    shards: int
    assignments: Dict[int, str] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)
    workers_lost: Tuple[str, ...] = ()
    events: Tuple[Tuple[str, str, Optional[int], str], ...] = ()
    shards_split: int = 0
    points_salvaged: int = 0
    points_redispatched: int = 0
    workers_spawned: Tuple[str, ...] = ()
    workers_retired: Tuple[str, ...] = ()

    @property
    def redispatched(self) -> Tuple[int, ...]:
        """Shards that needed more than one dispatch to complete."""
        return tuple(sorted(i for i, n in self.attempts.items() if n > 1))


@dataclass
class _WorkItem:
    """One dispatchable unit of the drive: a strided slice of the grid.

    The initial items are the shards ``(0,k) .. (k-1,k)``; splitting mints
    new items (ids from ``k`` upward) whose ``origin`` still names the
    original shard, so reporting stays in the user's shard vocabulary.
    ``indices`` is the item's global grid coverage — ``None`` when the
    state was built without a grid size (splitting disabled).
    """

    id: int
    start: int
    stride: int
    origin: int
    indices: Optional[Tuple[int, ...]] = None


class _DriveState:
    """The shared ledger of one drive: queue, attempts, payloads, fatalities.

    All mutation happens under one condition variable; worker threads block
    in :meth:`next_shard` when the queue is momentarily empty (another
    worker may still die and requeue its item) and wake on every change.
    Completions and give-backs are *fenced* by the dispatch attempt number:
    an answer for a superseded dispatch — e.g. from a partitioned worker
    whose shard was split and finished elsewhere — is discarded, not merged
    twice.
    """

    def __init__(
        self,
        shard_count: int,
        max_attempts: int,
        workers: Sequence[str],
        grid_size: Optional[int] = None,
        split: bool = False,
    ):
        self.count = shard_count
        self.max_attempts = max_attempts
        self.split = split
        self.cond = threading.Condition()
        self.items: Dict[int, _WorkItem] = {}
        for index in range(shard_count):
            indices = (
                tuple(range(index, grid_size, shard_count))
                if grid_size is not None
                else None
            )
            self.items[index] = _WorkItem(index, index, shard_count, index, indices)
        self._next_id = shard_count
        self.queue: deque = deque(range(shard_count))
        self.outstanding = set(range(shard_count))
        self.attempts: Dict[int, int] = {i: 0 for i in range(shard_count)}
        self.payloads: Dict[int, Dict[str, Any]] = {}
        self.assignments: Dict[int, str] = {}
        self.inflight: Dict[str, int] = {}
        self.alive = set(workers)
        self.retiring: set = set()
        self.retired: List[str] = []
        self._retired_unstopped: List[str] = []
        self.spawned: List[str] = []
        self.lost: List[str] = []
        self.fatal: Optional[str] = None
        self.events: List[Tuple[str, str, Optional[int], str]] = []
        self.shards_split = 0
        self.points_salvaged = 0
        self.points_redispatched = 0
        #: Hook consulted before "all workers lost" turns fatal: a
        #: supervisor with respawn budget left returns True and the drive
        #: stays open for the replacement it is about to spawn.
        self.recovery_possible: Optional[Callable[[], bool]] = None

    # Every public method below expects to be called WITHOUT the lock held.

    def log(self, event: str, worker: str, shard: Optional[int], detail: str) -> None:
        with self.cond:
            self.events.append((event, worker, shard, detail))

    def finished(self) -> bool:
        with self.cond:
            return self.fatal is not None or not self.outstanding

    def work_left(self) -> int:
        with self.cond:
            return len(self.outstanding)

    def active_workers(self) -> List[str]:
        with self.cond:
            return sorted(self.alive - self.retiring)

    def item(self, index: int) -> Optional[_WorkItem]:
        with self.cond:
            return self.items.get(index)

    def ticket(self, index: int) -> Tuple[int, int, int]:
        """The claimed item's ``(start, stride, attempt)`` dispatch ticket."""
        with self.cond:
            item = self.items[index]
            return item.start, item.stride, self.attempts[index]

    def next_shard(self, worker: str) -> Optional[int]:
        """Claim the next work item to run, or None when the drive is over.

        A worker marked for retirement confirms it here — between requests,
        never under an in-flight dispatch — unless it has meanwhile become
        the last active worker, in which case the retirement is cancelled.
        """
        with self.cond:
            while True:
                if self.fatal is not None or not self.outstanding:
                    self.inflight.pop(worker, None)
                    return None
                if worker in self.retiring:
                    others = [w for w in self.alive if w not in self.retiring and w != worker]
                    if others:
                        self.retiring.discard(worker)
                        self.alive.discard(worker)
                        self.retired.append(worker)
                        self._retired_unstopped.append(worker)
                        self.inflight.pop(worker, None)
                        self.events.append(
                            ("retired", worker, None, "scale-down confirmed")
                        )
                        self.cond.notify_all()
                        return None
                    self.retiring.discard(worker)
                    self.events.append(
                        ("retire-cancelled", worker, None, "last active worker; staying")
                    )
                if self.queue:
                    index = self.queue.popleft()
                    self.attempts[index] += 1
                    self.inflight[worker] = index
                    return index
                # Queue drained but items are still in flight elsewhere; if
                # one of those workers dies its item comes back here.
                self.cond.wait(0.05)

    def complete(
        self,
        index: int,
        worker: str,
        payload: Dict[str, Any],
        attempt: Optional[int] = None,
    ) -> None:
        with self.cond:
            if self.inflight.get(worker) == index:
                del self.inflight[worker]
            stale = index not in self.outstanding or (
                attempt is not None and attempt != self.attempts.get(index)
            )
            if stale:
                # The fencing discard: a re-dispatched (or split) item may
                # race its presumed-dead first worker.  First answer wins;
                # a late one — however it got here — must not merge twice.
                self.events.append(
                    (
                        "superseded",
                        worker,
                        index,
                        f"late answer for item {index} "
                        f"(attempt {attempt}, current {self.attempts.get(index)}) discarded",
                    )
                )
                self.cond.notify_all()
                return
            item = self.items.get(index)
            origin = item.origin if item is not None else index
            self.payloads[index] = payload
            self.outstanding.discard(index)
            self.assignments.setdefault(origin, worker)
            self.cond.notify_all()

    def requeue(
        self, index: int, worker: str, detail: str, attempt: Optional[int] = None
    ) -> None:
        """Put an item back after a transient failure (attempt-capped)."""
        self._give_back(index, worker, detail, attempt=attempt, allow_split=False)

    def redistribute(
        self,
        index: int,
        worker: str,
        detail: str,
        attempt: Optional[int] = None,
        salvaged: Optional[Tuple[int, Dict[str, Any]]] = None,
        exclude: Optional[str] = None,
    ) -> None:
        """Give an item back, splitting its remainder across survivors.

        ``salvaged`` is the ``(prefix_length, payload)`` of any finished
        prefix rescued from a partial answer; the prefix is recorded as a
        completed pseudo-item and only the remainder is re-dispatched.
        ``exclude`` names a worker (typically the suspect the item was
        taken from) that must not count as a survivor when sizing pieces.
        Falls back to a plain requeue when splitting is off or the item's
        grid coverage is unknown.
        """
        self._give_back(
            index,
            worker,
            detail,
            attempt=attempt,
            salvaged=salvaged,
            exclude=exclude,
            allow_split=True,
        )

    def _give_back(
        self,
        index: int,
        worker: str,
        detail: str,
        attempt: Optional[int] = None,
        salvaged: Optional[Tuple[int, Dict[str, Any]]] = None,
        exclude: Optional[str] = None,
        allow_split: bool = True,
    ) -> None:
        with self.cond:
            if self.inflight.get(worker) == index:
                del self.inflight[worker]
            if index not in self.outstanding:
                # A re-dispatch already completed (or a split consumed) this
                # item; the late failure of the first dispatch is moot.
                self.events.append(("retry", worker, index, detail))
                self.cond.notify_all()
                return
            if attempt is not None and attempt != self.attempts.get(index):
                self.events.append(
                    (
                        "superseded",
                        worker,
                        index,
                        f"stale give-back of item {index} "
                        f"(attempt {attempt}, current {self.attempts.get(index)}): {detail}",
                    )
                )
                self.cond.notify_all()
                return
            if self.attempts[index] >= self.max_attempts:
                self.events.append(("retry", worker, index, detail))
                self.fatal = (
                    f"shard {index} failed {self.attempts[index]} time(s), "
                    f"giving up (last: {detail})"
                )
                self.cond.notify_all()
                return
            item = self.items.get(index)
            if (
                allow_split
                and self.split
                and item is not None
                and item.indices is not None
            ):
                self._split_locked(item, worker, detail, salvaged, exclude)
            else:
                self.events.append(("retry", worker, index, detail))
                self.queue.append(index)
            self.cond.notify_all()

    def _split_locked(
        self,
        item: _WorkItem,
        worker: str,
        detail: str,
        salvaged: Optional[Tuple[int, Dict[str, Any]]],
        exclude: Optional[str],
    ) -> None:
        """Replace a live item with salvage + sub-shards (lock held).

        The item covers the strided indices ``start, start+stride, ...``;
        its first ``m`` points may be salvaged from a partial answer, and
        the remainder — still an arithmetic progression — splits ``p`` ways
        into the ordinary shards ``(start + (m+j)·stride, stride·p)``.
        """
        index = item.id
        prefix = 0
        if salvaged is not None:
            prefix, payload = salvaged
            pseudo = _WorkItem(
                self._next_id,
                item.start,
                item.stride,
                item.origin,
                item.indices[:prefix],
            )
            self._next_id += 1
            self.items[pseudo.id] = pseudo
            self.attempts[pseudo.id] = self.attempts[index]
            self.payloads[pseudo.id] = payload
            self.assignments.setdefault(item.origin, worker)
            self.points_salvaged += prefix
        remaining = item.indices[prefix:]
        self.outstanding.discard(index)
        if not remaining:
            self.events.append(
                (
                    "salvage",
                    worker,
                    index,
                    f"all {prefix} remaining point(s) salvaged from the "
                    f"partial answer: {detail}",
                )
            )
            return
        survivors = sum(
            1
            for candidate in self.alive
            if candidate not in self.retiring and candidate != exclude
        )
        pieces = max(1, min(survivors, len(remaining)))
        if prefix == 0 and pieces == 1:
            # Nothing salvaged and nobody to share with: a "split" would
            # re-dispatch the identical index set under a new id — requeue.
            self.outstanding.add(index)
            self.events.append(("retry", worker, index, detail))
            self.queue.append(index)
            return
        stride = item.stride * pieces
        children = []
        for piece in range(pieces):
            child = _WorkItem(
                self._next_id,
                remaining[piece],
                stride,
                item.origin,
                tuple(remaining[piece::pieces]),
            )
            self._next_id += 1
            self.items[child.id] = child
            self.attempts[child.id] = self.attempts[index]
            self.outstanding.add(child.id)
            self.queue.append(child.id)
            children.append(child.id)
        self.shards_split += 1
        self.points_redispatched += len(remaining)
        self.events.append(
            (
                "split",
                worker,
                index,
                f"{prefix} point(s) salvaged, {len(remaining)} remaining "
                f"point(s) split {pieces} way(s) as item(s) {children}: {detail}",
            )
        )

    def fail(self, worker: str, index: Optional[int], detail: str) -> None:
        """A permanent failure: abort the whole drive."""
        with self.cond:
            self.events.append(("fatal", worker, index, detail))
            if self.fatal is None:
                self.fatal = detail
            self.cond.notify_all()

    def suspect(
        self, worker: str, index: int, detail: str, attempt: Optional[int] = None
    ) -> None:
        """Mark a worker suspect and take its held item away *now*.

        The worker stays in the fleet (it may recover and rejoin); its item
        is redistributed immediately so survivors make progress while the
        probe-retry loop decides the suspect's fate.
        """
        self.log("suspect", worker, index, detail)
        self._give_back(
            index, worker, detail, attempt=attempt, exclude=worker, allow_split=True
        )

    def worker_lost(self, worker: str, index: Optional[int], detail: str) -> None:
        """Drop a worker from the fleet, redistributing the item it held."""
        with self.cond:
            self.events.append(("worker-lost", worker, index, detail))
            self.alive.discard(worker)
            self.retiring.discard(worker)
            self.inflight.pop(worker, None)
            self.lost.append(worker)
            if index is not None and index in self.outstanding:
                item = self.items.get(index)
                if self.attempts[index] >= self.max_attempts:
                    self.fatal = (
                        f"shard {index} lost with worker {worker} after "
                        f"{self.attempts[index]} attempt(s): {detail}"
                    )
                elif self.split and item is not None and item.indices is not None:
                    self._split_locked(item, worker, detail, None, None)
                else:
                    self.queue.append(index)
            if not self.alive and self.outstanding and self.fatal is None:
                recoverable = (
                    self.recovery_possible is not None and self.recovery_possible()
                )
                if not recoverable:
                    self.fatal = (
                        f"all {len(self.lost)} worker(s) lost with "
                        f"{len(self.outstanding)} shard(s) unfinished"
                    )
            self.cond.notify_all()

    # -- the supervisor's levers ---------------------------------------------

    def add_worker(self, worker: str) -> None:
        """Register a freshly spawned replacement member."""
        with self.cond:
            self.alive.add(worker)
            self.spawned.append(worker)
            self.events.append(
                ("worker-spawned", worker, None, "replacement joined the fleet")
            )
            self.cond.notify_all()

    def request_retire(self) -> Optional[str]:
        """Pick a member for scale-down; idle preferred, never the last.

        The retirement is a *request*: the worker confirms it in
        :meth:`next_shard` once idle, so an in-flight dispatch always lands
        before its worker leaves — the scale-down race is resolved in the
        completion's favour.
        """
        with self.cond:
            candidates = [w for w in self.alive if w not in self.retiring]
            if len(candidates) <= 1:
                return None
            idle = sorted(w for w in candidates if w not in self.inflight)
            busy = sorted(w for w in candidates if w in self.inflight)
            target = (idle or busy)[-1]
            self.retiring.add(target)
            self.events.append(("retire", target, None, "scale-down requested"))
            self.cond.notify_all()
            return target

    def drain_retired(self) -> List[str]:
        """Confirmed retirements whose processes still need stopping."""
        with self.cond:
            drained = self._retired_unstopped
            self._retired_unstopped = []
            return drained

    def report_attempts(self) -> Dict[int, int]:
        """Dispatch counts folded back onto the original shard indices.

        A split shard's pieces inherit the parent's count, so the deepest
        piece tells how many times *some* part of the shard was dispatched.
        """
        with self.cond:
            out: Dict[int, int] = {}
            for item_id, count in self.attempts.items():
                item = self.items.get(item_id)
                origin = item.origin if item is not None else item_id
                out[origin] = max(out.get(origin, 0), count)
            return out


class ShardDriver:
    """Dispatch one experiment's shards to a fleet of serve processes.

    Parameters
    ----------
    deadline_s:
        Per-shard request deadline.  The server answers an expired shard
        with a structured ``timeout`` error (retried elsewhere); the client
        read additionally times out at deadline + grace, so even a worker
        frozen solid cannot wedge the drive.  ``None`` trusts the workers.
    max_attempts:
        Dispatch cap per shard; default ``max(3, fleet size + 1)`` so a
        cascade of dying workers cannot exhaust a shard that a survivor
        would complete.
    request_retries:
        Same-worker transport retries per dispatch (idempotent via
        ``request_id`` replay) before the failure is escalated to the
        health probe / re-dispatch machinery.
    health_timeout_s:
        Budget for the fresh-connection health probe that classifies a
        worker after a transport error (alive / suspect / dead).
    connect_deadline_s:
        Budget for each worker's initial connection (with the client's
        jittered exponential backoff inside).
    split:
        Enable straggler mitigation: a timed-out or orphaned shard keeps
        its salvaged prefix and re-dispatches only the remainder, split
        across the survivors as sub-shards.
    read_grace_s:
        Grace past the deadline before a client read is declared a
        transport failure (default 10 s; lower it to detect partitions
        faster in tests and chaos drives).
    suspect_probes:
        Probe rounds granted to a suspect (reachable-but-silent) worker
        before it is declared dead; ``0`` declares on first suspicion.
    suspect_backoff_s:
        Initial delay between suspect probes, doubled each round.
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        max_attempts: Optional[int] = None,
        request_retries: int = 1,
        health_timeout_s: float = 5.0,
        connect_deadline_s: float = 10.0,
        split: bool = False,
        read_grace_s: float = _READ_GRACE_S,
        suspect_probes: int = 3,
        suspect_backoff_s: float = 0.5,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if read_grace_s <= 0:
            raise ValueError("read_grace_s must be positive")
        if suspect_probes < 0:
            raise ValueError("suspect_probes must be >= 0")
        if suspect_backoff_s < 0:
            raise ValueError("suspect_backoff_s must be >= 0")
        self.deadline_s = deadline_s
        self.max_attempts = max_attempts
        self.request_retries = request_retries
        self.health_timeout_s = health_timeout_s
        self.connect_deadline_s = connect_deadline_s
        self.split = split
        self.read_grace_s = read_grace_s
        self.suspect_probes = suspect_probes
        self.suspect_backoff_s = suspect_backoff_s

    # -- fleet plumbing ------------------------------------------------------

    def _read_timeout(self) -> Optional[float]:
        if self.deadline_s is None:
            return None
        return self.deadline_s + self.read_grace_s

    def _connect(self, worker: Tuple[str, int]) -> ServiceClient:
        host, port = worker
        return ServiceClient.connect(
            host,
            port,
            read_timeout=self._read_timeout(),
            connect_deadline_s=self.connect_deadline_s,
            # Mid-conversation reconnects fail fast: if the port refuses
            # after a broken exchange the worker is almost certainly dead,
            # and _probe makes the actual liveness call — burning the full
            # initial-connect budget here just delays recovery.
            reconnect_deadline_s=1.0,
        )

    def _probe(self, worker: Tuple[str, int]) -> str:
        """Classify a worker on a fresh, short-timeout connection.

        Returns ``"alive"`` (the health probe answered), ``"dead"`` (the
        connection was refused or reset — the process is confirmed gone),
        or ``"suspect"`` (reachable but silent: connects are accepted yet
        nothing answers — what a network partition or a wedged process
        looks like from outside).  The distinction is what keeps a
        partitioned-but-alive worker from being buried prematurely *and*
        keeps the drive from waiting on it.
        """
        host, port = worker
        try:
            probe = ServiceClient.connect(
                host,
                port,
                retries=3,
                retry_delay=0.05,
                read_timeout=self.health_timeout_s,
                connect_deadline_s=self.health_timeout_s,
            )
        except ServiceConnectTimeout as error:
            return "dead" if error.refused else "suspect"
        except ServiceTransportError:
            return "dead"
        try:
            response = probe.health()
            ok = isinstance(response, HealthResponse) and bool(
                response.result.get("ok")
            )
            return "alive" if ok else "dead"
        except ServiceTransportError as error:
            return "suspect" if error.timed_out else "dead"
        finally:
            probe.close()

    def _healthy(self, worker: Tuple[str, int]) -> bool:
        """The binary view of :meth:`_probe` (dead-or-busy discriminator)."""
        return self._probe(worker) == "alive"

    # -- requests ------------------------------------------------------------

    def shard_request(
        self,
        spec: ExperimentSpec,
        index: int,
        count: int,
        attempt: Optional[int] = None,
    ) -> Request:
        """The wire request for shard ``(index, count)`` of ``spec``."""
        payload = spec.to_dict()
        kind = payload.pop("kind", None)
        payload["shard"] = (index, count)
        payload["deadline_s"] = self.deadline_s
        payload["attempt"] = attempt
        suffix = f"-a{attempt}" if attempt is not None else ""
        payload["request_id"] = (
            f"drive-{uuid.uuid4().hex[:8]}-shard{index}of{count}{suffix}"
        )
        if isinstance(spec, SweepSpec):
            # The wire side has no ``processes`` (each worker parallelises
            # itself); it is merge-normalised away anyway.
            payload.pop("processes", None)
            return SweepRequest(**payload)
        if isinstance(spec, FormulaSpec):
            return FormulaRequest(**payload)
        if isinstance(spec, LowerBoundSpec):
            return LowerBoundRequest(**payload)
        if isinstance(spec, RadiusSpec):
            return RadiusRequest(**payload)
        raise DriverError(f"cannot drive experiment kind {kind!r}")

    @staticmethod
    def _payload_of(response: Response) -> Optional[Dict[str, Any]]:
        if isinstance(
            response,
            (SweepResponse, FormulaResponse, LowerBoundResponse, RadiusResponse),
        ):
            return response.result
        return None

    def _salvage(
        self,
        state: _DriveState,
        spec: ExperimentSpec,
        index: int,
        response: ErrorResponse,
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """Extract the finished prefix of a timed-out item's partial answer.

        The server's structured ``timeout`` / ``cancelled`` errors carry the
        grid points that *did* finish before the scope fired.  Only the
        maximal in-order prefix of the item's index progression is kept —
        that is what keeps the remainder an arithmetic progression the
        split can express as ordinary ``(i, k)`` shards.  Returns
        ``(prefix_length, artifact_payload)`` or ``None``.
        """
        if not self.split or response.code not in ("timeout", "cancelled"):
            return None
        item = state.item(index)
        if item is None or item.indices is None:
            return None
        partial = response.partial or {}
        points = partial.get("points") or []
        by_index: Dict[int, Dict[str, Any]] = {}
        for point in points:
            if isinstance(point, Mapping) and isinstance(point.get("index"), int):
                by_index[point["index"]] = dict(point)
        prefix: List[Dict[str, Any]] = []
        for global_index in item.indices:
            found = by_index.get(global_index)
            if found is None:
                break
            prefix.append(found)
        if not prefix:
            return None
        sharded = replace(spec, shard=(item.start, item.stride))
        payload = {
            "schema": ARTIFACT_SCHEMA,
            "kind": type(spec).kind,
            "spec": sharded.to_dict(),
            "points": prefix,
            "bound": None,
            "fit": None,
        }
        return len(prefix), payload

    # -- the drive -----------------------------------------------------------

    def drive(
        self,
        spec: ExperimentSpec,
        workers: Sequence[Tuple[str, int]],
        shards: Optional[int] = None,
        supervisor: Optional[Any] = None,
    ) -> DriveReport:
        """Run ``spec`` sharded across ``workers``; returns the merged result.

        ``shards`` defaults to the fleet size.  The drive completes as long
        as at least one worker survives (or, with a ``supervisor``, as long
        as the respawn budget can keep producing one); a permanent error
        response, an attempt-exhausted shard, or the unrecoverable loss of
        the whole fleet raises :class:`DriverError`.
        """
        if not workers:
            raise DriverError("the drive needs at least one worker")
        spec = spec.unsharded()
        spec.validate()
        count = shards if shards is not None else len(workers)
        if count < 1:
            raise DriverError("shards must be at least 1")
        labels = [f"{host}:{port}" for host, port in workers]
        max_attempts = (
            self.max_attempts
            if self.max_attempts is not None
            else max(3, len(workers) + 1)
        )
        state = _DriveState(
            count,
            max_attempts,
            labels,
            grid_size=len(spec.sizes),
            split=self.split,
        )

        threads: List[threading.Thread] = []
        threads_lock = threading.Lock()

        def launch(worker: Tuple[str, int], label: str) -> None:
            thread = threading.Thread(
                target=self._worker_loop,
                args=(state, worker, label, spec),
                name=f"shard-drive-{label}",
                daemon=True,
            )
            with threads_lock:
                threads.append(thread)
            thread.start()

        sup_thread: Optional[threading.Thread] = None
        if supervisor is not None:
            state.recovery_possible = supervisor.can_spawn

            def enlist(address: Tuple[str, int]) -> str:
                label = f"{address[0]}:{address[1]}"
                state.add_worker(label)
                launch(address, label)
                return label

            sup_thread = threading.Thread(
                target=supervisor.run,
                args=(state, enlist),
                name="fleet-supervisor",
                daemon=True,
            )

        for worker, label in zip(workers, labels):
            launch(worker, label)
        if sup_thread is not None:
            sup_thread.start()

        while True:
            with threads_lock:
                current = list(threads)
            for thread in current:
                thread.join(timeout=0.2)
            with threads_lock:
                drained = all(not thread.is_alive() for thread in threads)
            if drained:
                if supervisor is None or state.finished():
                    break
                # Workers are all gone but the supervisor may still spawn a
                # replacement (or declare the drive unrecoverable).
                time.sleep(0.05)
        if sup_thread is not None:
            sup_thread.join(timeout=30)

        if state.fatal is not None:
            raise DriverError(state.fatal)
        parts = [
            result_from_payload(state.payloads[index])
            for index in sorted(state.payloads)
        ]
        return DriveReport(
            result=merge_artifacts(parts),
            shards=count,
            assignments=dict(state.assignments),
            attempts=state.report_attempts(),
            workers_lost=tuple(state.lost),
            events=tuple(state.events),
            shards_split=state.shards_split,
            points_salvaged=state.points_salvaged,
            points_redispatched=state.points_redispatched,
            workers_spawned=tuple(state.spawned),
            workers_retired=tuple(state.retired),
        )

    def _worker_loop(
        self,
        state: _DriveState,
        worker: Tuple[str, int],
        label: str,
        spec: ExperimentSpec,
    ) -> None:
        try:
            client = self._connect(worker)
        except (ServiceConnectTimeout, ServiceTransportError) as error:
            state.worker_lost(label, None, f"connect failed: {error}")
            return
        try:
            while True:
                index = state.next_shard(label)
                if index is None:
                    return
                start, stride, attempt = state.ticket(index)
                request = self.shard_request(spec, start, stride, attempt=attempt)
                try:
                    response = client.request(request, retries=self.request_retries)
                except ServiceTransportError as error:
                    # The conversation broke mid-item.  A probe on a fresh
                    # connection classifies the worker: alive means retry
                    # here, dead means the item goes to the survivors,
                    # suspect enters the probe-retry limbo below.
                    client.close()
                    verdict = self._probe(worker)
                    if verdict == "alive":
                        state.requeue(
                            index, label, f"transport: {error}", attempt=attempt
                        )
                        try:
                            client = self._connect(worker)
                        except (ServiceConnectTimeout, ServiceTransportError) as err:
                            state.worker_lost(label, None, f"reconnect failed: {err}")
                            return
                        continue
                    if verdict == "suspect":
                        replacement = self._ride_out_suspicion(
                            state, worker, label, index, attempt, error
                        )
                        if replacement is None:
                            return
                        client = replacement
                        continue
                    state.worker_lost(label, index, f"transport: {error}")
                    return
                payload = self._payload_of(response)
                if payload is not None:
                    state.complete(index, label, payload, attempt=attempt)
                elif isinstance(response, ErrorResponse):
                    if response.code in TRANSIENT_CODES:
                        salvaged = self._salvage(state, spec, index, response)
                        state.redistribute(
                            index,
                            label,
                            f"{response.code}: {response.message}",
                            attempt=attempt,
                            salvaged=salvaged,
                        )
                    else:
                        state.fail(
                            label,
                            index,
                            f"permanent {response.code!r} error on shard {index}: "
                            f"{response.message}",
                        )
                        return
                else:
                    state.fail(
                        label,
                        index,
                        f"unexpected {type(response).__name__} answer to shard {index}",
                    )
                    return
        finally:
            client.close()

    def _ride_out_suspicion(
        self,
        state: _DriveState,
        worker: Tuple[str, int],
        label: str,
        index: int,
        attempt: int,
        error: Exception,
    ) -> Optional[ServiceClient]:
        """Suspect limbo: give the item away now, probe with backoff.

        Returns a fresh client when the worker recovers (it rejoins the
        fleet), or ``None`` after declaring it dead — either way the held
        item was already redistributed, so survivors never waited on the
        verdict.  A late answer the suspect still produces is fenced off by
        the attempt number it carries.
        """
        state.suspect(label, index, f"unreachable but possibly alive: {error}", attempt=attempt)
        backoff = self.suspect_backoff_s
        for round_number in range(self.suspect_probes):
            if state.finished():
                # The drive is over; nobody needs this worker's verdict.
                state.worker_lost(
                    label, None, "suspect abandoned: the drive finished without it"
                )
                return None
            time.sleep(backoff)
            backoff *= 2
            verdict = self._probe(worker)
            if verdict == "alive":
                try:
                    client = self._connect(worker)
                except (ServiceConnectTimeout, ServiceTransportError) as err:
                    state.worker_lost(label, None, f"reconnect failed: {err}")
                    return None
                state.log(
                    "recovered",
                    label,
                    None,
                    f"probe answered on round {round_number + 1}; rejoining the fleet",
                )
                return client
            if verdict == "dead":
                break
        state.worker_lost(
            label,
            None,
            f"declared dead after {self.suspect_probes} suspect probe(s): {error}",
        )
        return None


class _Member:
    """One fleet member: its process, announced address and stderr tail.

    A background thread drains the child's stderr for the member's whole
    lifetime: the first ``serving on HOST:PORT`` line becomes the address,
    everything else lands in a bounded tail — which is what turns "member 1
    failed to start (exit code 2)" into a message that *shows* the child's
    actual complaint.
    """

    _ANNOUNCE = "serving on "

    def __init__(self, index: int, process: subprocess.Popen) -> None:
        self.index = index
        self.process = process
        self.address: Optional[Tuple[str, int]] = None
        self.announced = threading.Event()
        self.stderr_tail: deque = deque(maxlen=40)
        self.reaped = False
        self._drain_thread = threading.Thread(
            target=self._drain, name=f"fleet-member-{index}-stderr", daemon=True
        )
        self._drain_thread.start()

    @property
    def label(self) -> str:
        if self.address is not None:
            return f"{self.address[0]}:{self.address[1]}"
        return f"member-{self.index}"

    def _drain(self) -> None:
        stream = self.process.stderr
        if stream is None:
            self.announced.set()
            return
        try:
            for line in stream:
                text = line.rstrip("\n")
                if self.address is None and text.startswith(self._ANNOUNCE):
                    host, _, port = text[len(self._ANNOUNCE):].strip().rpartition(":")
                    try:
                        self.address = (host, int(port))
                    except ValueError:
                        self.stderr_tail.append(text)
                    self.announced.set()
                    continue
                self.stderr_tail.append(text)
        except ValueError:
            # The stream was closed under us during fleet shutdown.
            pass
        finally:
            # EOF (or closure) must wake a startup waiter: the member died
            # without announcing and the tail now holds its last words.
            self.announced.set()

    def tail_suffix(self, lines: int = 10) -> str:
        tail = [line for line in self.stderr_tail if line.strip()]
        if not tail:
            return ""
        joined = "\n  ".join(tail[-lines:])
        return f"; stderr tail:\n  {joined}"

    def shutdown(self, timeout_s: float = 10.0) -> None:
        if self.process.poll() is None:
            self.process.terminate()
        try:
            self.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:  # pragma: no cover - safety net
            self.process.kill()
            self.process.wait()
        self._drain_thread.join(timeout=5)
        if self.process.stderr is not None:
            self.process.stderr.close()


class LocalFleet:
    """A disposable fleet of local serve processes for the shard driver.

    Spawns ``count`` children running ``python -m repro.cli serve --tcp
    127.0.0.1:0`` and collects the ``serving on HOST:PORT`` address each
    announces on stderr.  ``faults`` maps a member index to the
    fault-injection specs (see :mod:`repro.service.faults`) passed to that
    member's ``--fault`` flags — the chaos harness: spawn three workers,
    give one a ``kill`` rule, and watch the driver route around the corpse.
    Members spawned later (the supervisor's replacements) keep counting
    indices upward, so chaos tests can pre-install faults on replacements
    too.

    Beyond the initial ``start()``, the fleet is *elastic*:
    :meth:`spawn_member` adds one member mid-drive, :meth:`stop_member`
    retires one by its ``host:port`` label, and :meth:`reap_dead` notices
    members whose process exited.  Use as a context manager; exit
    terminates whatever is still running.
    """

    def __init__(
        self,
        count: int,
        serve_workers: int = 2,
        deadline_s: Optional[float] = None,
        faults: Optional[Dict[int, Sequence[str]]] = None,
        python: Optional[str] = None,
        startup_timeout_s: float = 30.0,
    ) -> None:
        if count < 1:
            raise ValueError("a fleet needs at least one member")
        self.count = count
        self.serve_workers = serve_workers
        self.deadline_s = deadline_s
        self.faults = dict(faults or {})
        self.python = python or sys.executable
        self.startup_timeout_s = startup_timeout_s
        self.members: List[_Member] = []

    @property
    def processes(self) -> List[subprocess.Popen]:
        return [member.process for member in self.members]

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [
            member.address for member in self.members if member.address is not None
        ]

    def _command(self, index: int) -> List[str]:
        command = [
            self.python, "-m", "repro.cli", "serve",
            "--tcp", "127.0.0.1:0",
            "--workers", str(self.serve_workers),
        ]
        if self.deadline_s is not None:
            command += ["--deadline", str(self.deadline_s)]
        for fault in self.faults.get(index, ()):
            command += ["--fault", fault]
        return command

    def _child_env(self) -> Dict[str, str]:
        # Members must import ``repro`` regardless of how the parent found
        # it (installed, or run with PYTHONPATH=src from the checkout).
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        paths = env.get("PYTHONPATH", "")
        if package_root not in paths.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + paths if paths else "")
            )
        return env

    def _launch(self) -> _Member:
        index = len(self.members)
        process = subprocess.Popen(
            self._command(index),
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=self._child_env(),
        )
        member = _Member(index, process)
        self.members.append(member)
        return member

    def _await_announce(self, member: _Member, budget_s: float) -> None:
        if not member.announced.wait(max(budget_s, 0)):
            raise DriverError(
                f"fleet member {member.index} did not announce within "
                f"{self.startup_timeout_s}s{member.tail_suffix()}"
            )
        if member.address is None:
            raise DriverError(
                f"fleet member {member.index} failed to start "
                f"(exit code {member.process.poll()}){member.tail_suffix()}"
            )

    def start(self) -> List[Tuple[str, int]]:
        """Spawn the fleet; returns the announced ``(host, port)`` list."""
        deadline_at = time.monotonic() + self.startup_timeout_s
        try:
            for _ in range(self.count):
                self._launch()
            for member in self.members:
                self._await_announce(member, deadline_at - time.monotonic())
        except DriverError:
            self.stop()
            raise
        return list(self.addresses)

    def spawn_member(self) -> Tuple[Tuple[str, int], str]:
        """Spawn one additional member; returns its ``(address, label)``.

        On startup failure the stillborn member is shut down and a
        :class:`DriverError` carrying its stderr tail is raised — the
        supervisor charges its respawn budget either way.
        """
        member = self._launch()
        try:
            self._await_announce(member, self.startup_timeout_s)
        except DriverError:
            member.shutdown()
            raise
        return member.address, member.label

    def stop_member(self, label: str) -> bool:
        """Terminate the member announced at ``label``; False if unknown."""
        for member in self.members:
            if member.address is not None and member.label == label:
                if member.process.poll() is None:
                    member.shutdown()
                return True
        return False

    def reap_dead(self) -> List[str]:
        """Labels of announced members whose process has exited (once each)."""
        dead = []
        for member in self.members:
            if (
                not member.reaped
                and member.address is not None
                and member.process.poll() is not None
            ):
                member.reaped = True
                dead.append(member.label)
        return dead

    def stop(self) -> None:
        """Terminate every member still running and reap them all."""
        for member in self.members:
            if member.process.poll() is None:
                member.process.terminate()
        for member in self.members:
            member.shutdown()

    def __enter__(self) -> List[Tuple[str, int]]:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def drive(
    spec: ExperimentSpec,
    workers: Sequence[Tuple[str, int]],
    shards: Optional[int] = None,
    supervisor: Optional[Any] = None,
    **driver_kwargs: Any,
) -> DriveReport:
    """One-call drive: ``ShardDriver(**driver_kwargs).drive(spec, workers)``."""
    return ShardDriver(**driver_kwargs).drive(
        spec, workers, shards=shards, supervisor=supervisor
    )
