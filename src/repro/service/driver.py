"""The fault-tolerant shard driver: one experiment, a fleet of workers.

``sweep --shard i/k`` (PR 3) made experiments shardable by hand: run the
``k`` shards yourself, keep every process alive yourself, ``merge`` the
partial artifacts yourself.  This module automates the whole loop and makes
it survive failures:

* :class:`LocalFleet` spawns ``python -m repro.cli serve --tcp 127.0.0.1:0``
  child processes and collects the addresses they announce (optionally with
  fault-injection flags — the chaos harness);
* :class:`ShardDriver` dispatches the shards ``(0,k) .. (k-1,k)`` of one
  :class:`~repro.experiments.spec.ExperimentSpec` to the fleet as wire
  ``sweep`` / ``lower-bound`` requests, detects dead or wedged workers
  (transport failures arbitrated by a fresh-connection health probe,
  per-shard deadlines answered as structured ``timeout`` errors),
  re-dispatches lost shards to the survivors, and degrades gracefully all
  the way down to a single worker;
* the partial payloads are stitched back through
  :func:`~repro.experiments.artifacts.merge_artifacts`, so the driven
  result equals the unsharded run's artifact *exactly* (byte-identical
  under :func:`~repro.experiments.artifacts.canonical_payload`, which
  normalises only wall-clock timings).

Shards keep their global grid indices and derived per-point seeds, which is
what makes re-dispatching safe: a shard that ran 1.5 times (once on a
worker that died mid-send, once on a survivor) produces the same points
both times, and the idempotent replay cache deduplicates retries that hit
the *same* worker.

Failure taxonomy: transport errors and ``timeout`` / ``cancelled`` /
``internal-error`` responses are *transient* (the shard is retried, up to
``max_attempts`` dispatches); every other error code — ``unknown-scheme``,
``invalid-param``, ... — is *permanent* (retrying a bad spec on another
worker cannot help) and aborts the drive with a :class:`DriverError`.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.artifacts import (
    ExperimentResult,
    merge_artifacts,
    result_from_payload,
)
from repro.experiments.formula import FormulaSpec
from repro.experiments.lower_bound import LowerBoundSpec
from repro.experiments.radius import RadiusSpec
from repro.experiments.spec import ExperimentSpec, SweepSpec
from repro.service.client import (
    ServiceClient,
    ServiceConnectTimeout,
    ServiceTransportError,
)
from repro.service.messages import (
    ErrorResponse,
    FormulaRequest,
    FormulaResponse,
    HealthResponse,
    LowerBoundRequest,
    LowerBoundResponse,
    RadiusRequest,
    RadiusResponse,
    Request,
    Response,
    SweepRequest,
    SweepResponse,
)

#: Error codes worth retrying on another worker (or the same one later).
#: Everything else is the request's own fault and aborts the drive.
TRANSIENT_CODES = ("timeout", "cancelled", "connect-timeout", "internal-error")

#: Grace added to a shard's deadline to obtain the client read timeout: the
#: server answers a structured ``timeout`` *within* the deadline, so a read
#: exceeding deadline + grace means the worker itself is gone or wedged.
_READ_GRACE_S = 10.0


class DriverError(RuntimeError):
    """The drive could not complete: a permanent error, an exhausted shard,
    or the whole fleet lost while work remained."""


@dataclass(frozen=True)
class DriveReport:
    """What one :meth:`ShardDriver.drive` run did, worker by worker.

    ``result`` is the merged experiment result; ``assignments`` maps each
    shard index to the worker that finally answered it; ``attempts`` counts
    dispatches per shard (1 = no retry was needed); ``workers_lost`` lists
    the workers that died or wedged mid-drive; ``events`` is the ordered
    fault log — ``(event, worker, shard, detail)`` tuples.
    """

    result: ExperimentResult
    shards: int
    assignments: Dict[int, str] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)
    workers_lost: Tuple[str, ...] = ()
    events: Tuple[Tuple[str, str, Optional[int], str], ...] = ()

    @property
    def redispatched(self) -> Tuple[int, ...]:
        """Shards that needed more than one dispatch to complete."""
        return tuple(sorted(i for i, n in self.attempts.items() if n > 1))


class _DriveState:
    """The shared ledger of one drive: queue, attempts, payloads, fatalities.

    All mutation happens under one condition variable; worker threads block
    in :meth:`next_shard` when the queue is momentarily empty (another
    worker may still die and requeue its shard) and wake on every change.
    """

    def __init__(self, shard_count: int, max_attempts: int, workers: Sequence[str]):
        self.count = shard_count
        self.max_attempts = max_attempts
        self.cond = threading.Condition()
        self.queue: deque = deque(range(shard_count))
        self.attempts: Dict[int, int] = {i: 0 for i in range(shard_count)}
        self.payloads: Dict[int, Dict[str, Any]] = {}
        self.assignments: Dict[int, str] = {}
        self.alive = set(workers)
        self.lost: List[str] = []
        self.fatal: Optional[str] = None
        self.events: List[Tuple[str, str, Optional[int], str]] = []

    # Every method below expects to be called WITHOUT the lock held.

    def log(self, event: str, worker: str, shard: Optional[int], detail: str) -> None:
        with self.cond:
            self.events.append((event, worker, shard, detail))

    def finished(self) -> bool:
        with self.cond:
            return self.fatal is not None or len(self.payloads) == self.count

    def next_shard(self, worker: str) -> Optional[int]:
        """Claim the next shard to run, or None when the drive is over."""
        with self.cond:
            while True:
                if self.fatal is not None or len(self.payloads) == self.count:
                    return None
                if self.queue:
                    index = self.queue.popleft()
                    self.attempts[index] += 1
                    return index
                # Queue drained but shards are still in flight elsewhere; if
                # one of those workers dies its shard comes back here.
                self.cond.wait(0.05)

    def complete(self, index: int, worker: str, payload: Dict[str, Any]) -> None:
        with self.cond:
            # A re-dispatched shard may race its presumed-dead first worker;
            # both answers are identical by construction, first one wins.
            self.payloads.setdefault(index, payload)
            self.assignments.setdefault(index, worker)
            self.cond.notify_all()

    def requeue(self, index: int, worker: str, detail: str) -> None:
        """Put a shard back after a transient failure (attempt-capped)."""
        with self.cond:
            self.events.append(("retry", worker, index, detail))
            if index in self.payloads:
                # A re-dispatch already completed this shard; the late
                # failure of the first dispatch is moot.
                pass
            elif self.attempts[index] >= self.max_attempts:
                self.fatal = (
                    f"shard {index} failed {self.attempts[index]} time(s), "
                    f"giving up (last: {detail})"
                )
            else:
                self.queue.append(index)
            self.cond.notify_all()

    def fail(self, worker: str, index: Optional[int], detail: str) -> None:
        """A permanent failure: abort the whole drive."""
        with self.cond:
            self.events.append(("fatal", worker, index, detail))
            if self.fatal is None:
                self.fatal = detail
            self.cond.notify_all()

    def worker_lost(self, worker: str, index: Optional[int], detail: str) -> None:
        """Drop a worker from the fleet, requeueing the shard it held."""
        with self.cond:
            self.events.append(("worker-lost", worker, index, detail))
            self.alive.discard(worker)
            self.lost.append(worker)
            if index is not None and index not in self.payloads:
                if self.attempts[index] >= self.max_attempts:
                    self.fatal = (
                        f"shard {index} lost with worker {worker} after "
                        f"{self.attempts[index]} attempt(s): {detail}"
                    )
                else:
                    self.queue.append(index)
            if not self.alive and len(self.payloads) < self.count and self.fatal is None:
                self.fatal = (
                    f"all {len(self.lost)} worker(s) lost with "
                    f"{self.count - len(self.payloads)} shard(s) unfinished"
                )
            self.cond.notify_all()


class ShardDriver:
    """Dispatch one experiment's shards to a fleet of serve processes.

    Parameters
    ----------
    deadline_s:
        Per-shard request deadline.  The server answers an expired shard
        with a structured ``timeout`` error (retried elsewhere); the client
        read additionally times out at deadline + grace, so even a worker
        frozen solid cannot wedge the drive.  ``None`` trusts the workers.
    max_attempts:
        Dispatch cap per shard; default ``max(3, fleet size + 1)`` so a
        cascade of dying workers cannot exhaust a shard that a survivor
        would complete.
    request_retries:
        Same-worker transport retries per dispatch (idempotent via
        ``request_id`` replay) before the failure is escalated to the
        health probe / re-dispatch machinery.
    health_timeout_s:
        Budget for the fresh-connection health probe that arbitrates
        "worker dead" vs "connection hiccup" after a transport error.
    connect_deadline_s:
        Budget for each worker's initial connection (with the client's
        jittered exponential backoff inside).
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        max_attempts: Optional[int] = None,
        request_retries: int = 1,
        health_timeout_s: float = 5.0,
        connect_deadline_s: float = 10.0,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.deadline_s = deadline_s
        self.max_attempts = max_attempts
        self.request_retries = request_retries
        self.health_timeout_s = health_timeout_s
        self.connect_deadline_s = connect_deadline_s

    # -- fleet plumbing ------------------------------------------------------

    def _read_timeout(self) -> Optional[float]:
        if self.deadline_s is None:
            return None
        return self.deadline_s + _READ_GRACE_S

    def _connect(self, worker: Tuple[str, int]) -> ServiceClient:
        host, port = worker
        return ServiceClient.connect(
            host,
            port,
            read_timeout=self._read_timeout(),
            connect_deadline_s=self.connect_deadline_s,
        )

    def _healthy(self, worker: Tuple[str, int]) -> bool:
        """Probe a worker on a fresh, short-timeout connection.

        This is the dead-or-busy discriminator: the ``health`` op bypasses
        the worker pool, so a loaded-but-alive server answers immediately
        while a killed or wedged one fails the connect or the read.
        """
        host, port = worker
        try:
            probe = ServiceClient.connect(
                host,
                port,
                retries=3,
                retry_delay=0.05,
                read_timeout=self.health_timeout_s,
                connect_deadline_s=self.health_timeout_s,
            )
        except (ServiceConnectTimeout, ServiceTransportError):
            return False
        try:
            response = probe.health()
            return isinstance(response, HealthResponse) and bool(
                response.result.get("ok")
            )
        except ServiceTransportError:
            return False
        finally:
            probe.close()

    # -- requests ------------------------------------------------------------

    def shard_request(
        self, spec: ExperimentSpec, index: int, count: int
    ) -> Request:
        """The wire request for shard ``(index, count)`` of ``spec``."""
        payload = spec.to_dict()
        kind = payload.pop("kind", None)
        payload["shard"] = (index, count)
        payload["deadline_s"] = self.deadline_s
        payload["request_id"] = f"drive-{uuid.uuid4().hex[:8]}-shard{index}of{count}"
        if isinstance(spec, SweepSpec):
            # The wire side has no ``processes`` (each worker parallelises
            # itself); it is merge-normalised away anyway.
            payload.pop("processes", None)
            return SweepRequest(**payload)
        if isinstance(spec, FormulaSpec):
            return FormulaRequest(**payload)
        if isinstance(spec, LowerBoundSpec):
            return LowerBoundRequest(**payload)
        if isinstance(spec, RadiusSpec):
            return RadiusRequest(**payload)
        raise DriverError(f"cannot drive experiment kind {kind!r}")

    @staticmethod
    def _payload_of(response: Response) -> Optional[Dict[str, Any]]:
        if isinstance(
            response,
            (SweepResponse, FormulaResponse, LowerBoundResponse, RadiusResponse),
        ):
            return response.result
        return None

    # -- the drive -----------------------------------------------------------

    def drive(
        self,
        spec: ExperimentSpec,
        workers: Sequence[Tuple[str, int]],
        shards: Optional[int] = None,
    ) -> DriveReport:
        """Run ``spec`` sharded across ``workers``; returns the merged result.

        ``shards`` defaults to the fleet size.  The drive completes as long
        as at least one worker survives; a permanent error response, an
        attempt-exhausted shard, or the loss of the whole fleet raises
        :class:`DriverError` (with the fault log in the message).
        """
        if not workers:
            raise DriverError("the drive needs at least one worker")
        spec = spec.unsharded()
        spec.validate()
        count = shards if shards is not None else len(workers)
        if count < 1:
            raise DriverError("shards must be at least 1")
        labels = [f"{host}:{port}" for host, port in workers]
        max_attempts = (
            self.max_attempts
            if self.max_attempts is not None
            else max(3, len(workers) + 1)
        )
        state = _DriveState(count, max_attempts, labels)
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(state, worker, label, spec, count),
                name=f"shard-drive-{label}",
                daemon=True,
            )
            for worker, label in zip(workers, labels)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if state.fatal is not None:
            raise DriverError(state.fatal)
        parts = [
            result_from_payload(state.payloads[index]) for index in range(count)
        ]
        return DriveReport(
            result=merge_artifacts(parts),
            shards=count,
            assignments=dict(state.assignments),
            attempts=dict(state.attempts),
            workers_lost=tuple(state.lost),
            events=tuple(state.events),
        )

    def _worker_loop(
        self,
        state: _DriveState,
        worker: Tuple[str, int],
        label: str,
        spec: ExperimentSpec,
        count: int,
    ) -> None:
        try:
            client = self._connect(worker)
        except (ServiceConnectTimeout, ServiceTransportError) as error:
            state.worker_lost(label, None, f"connect failed: {error}")
            return
        try:
            while True:
                index = state.next_shard(label)
                if index is None:
                    return
                request = self.shard_request(spec, index, count)
                try:
                    response = client.request(request, retries=self.request_retries)
                except ServiceTransportError as error:
                    # The conversation broke mid-shard.  A health probe on a
                    # fresh connection arbitrates: a hiccup means reconnect
                    # and retry here, a dead worker means this thread exits
                    # and the shard goes back to the survivors.
                    client.close()
                    if not self._healthy(worker):
                        state.worker_lost(label, index, f"transport: {error}")
                        return
                    state.requeue(index, label, f"transport: {error}")
                    try:
                        client = self._connect(worker)
                    except (ServiceConnectTimeout, ServiceTransportError) as err:
                        state.worker_lost(label, None, f"reconnect failed: {err}")
                        return
                    continue
                payload = self._payload_of(response)
                if payload is not None:
                    state.complete(index, label, payload)
                elif isinstance(response, ErrorResponse):
                    if response.code in TRANSIENT_CODES:
                        state.requeue(
                            index, label, f"{response.code}: {response.message}"
                        )
                    else:
                        state.fail(
                            label,
                            index,
                            f"permanent {response.code!r} error on shard {index}: "
                            f"{response.message}",
                        )
                        return
                else:
                    state.fail(
                        label,
                        index,
                        f"unexpected {type(response).__name__} answer to shard {index}",
                    )
                    return
        finally:
            client.close()


class LocalFleet:
    """A disposable fleet of local serve processes for the shard driver.

    Spawns ``count`` children running ``python -m repro.cli serve --tcp
    127.0.0.1:0`` and collects the ``serving on HOST:PORT`` address each
    announces on stderr.  ``faults`` maps a member index to the
    fault-injection specs (see :mod:`repro.service.faults`) passed to that
    member's ``--fault`` flags — the chaos harness: spawn three workers,
    give one a ``kill`` rule, and watch the driver route around the corpse.

    Use as a context manager; exit terminates whatever is still running.
    """

    def __init__(
        self,
        count: int,
        serve_workers: int = 2,
        deadline_s: Optional[float] = None,
        faults: Optional[Dict[int, Sequence[str]]] = None,
        python: Optional[str] = None,
        startup_timeout_s: float = 30.0,
    ) -> None:
        if count < 1:
            raise ValueError("a fleet needs at least one member")
        self.count = count
        self.serve_workers = serve_workers
        self.deadline_s = deadline_s
        self.faults = dict(faults or {})
        self.python = python or sys.executable
        self.startup_timeout_s = startup_timeout_s
        self.processes: List[subprocess.Popen] = []
        self.addresses: List[Tuple[str, int]] = []

    def _command(self, index: int) -> List[str]:
        command = [
            self.python, "-m", "repro.cli", "serve",
            "--tcp", "127.0.0.1:0",
            "--workers", str(self.serve_workers),
        ]
        if self.deadline_s is not None:
            command += ["--deadline", str(self.deadline_s)]
        for fault in self.faults.get(index, ()):
            command += ["--fault", fault]
        return command

    def _child_env(self) -> Dict[str, str]:
        # Members must import ``repro`` regardless of how the parent found
        # it (installed, or run with PYTHONPATH=src from the checkout).
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        paths = env.get("PYTHONPATH", "")
        if package_root not in paths.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + paths if paths else "")
            )
        return env

    def start(self) -> List[Tuple[str, int]]:
        """Spawn the fleet; returns the announced ``(host, port)`` list."""
        deadline_at = time.monotonic() + self.startup_timeout_s
        for index in range(self.count):
            process = subprocess.Popen(
                self._command(index),
                stdin=subprocess.DEVNULL,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                text=True,
                env=self._child_env(),
            )
            self.processes.append(process)
        for index, process in enumerate(self.processes):
            if time.monotonic() > deadline_at:
                self.stop()
                raise DriverError(
                    f"fleet member {index} did not announce within "
                    f"{self.startup_timeout_s}s"
                )
            line = process.stderr.readline() if process.stderr else ""
            prefix = "serving on "
            if not line.startswith(prefix):
                self.stop()
                raise DriverError(
                    f"fleet member {index} failed to start "
                    f"(announced {line!r}, exit code {process.poll()})"
                )
            host, _, port = line[len(prefix):].strip().rpartition(":")
            self.addresses.append((host, int(port)))
        return list(self.addresses)

    def stop(self) -> None:
        """Terminate every member still running and reap them all."""
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety net
                process.kill()
                process.wait()
            if process.stderr is not None:
                process.stderr.close()

    def __enter__(self) -> List[Tuple[str, int]]:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def drive(
    spec: ExperimentSpec,
    workers: Sequence[Tuple[str, int]],
    shards: Optional[int] = None,
    **driver_kwargs: Any,
) -> DriveReport:
    """One-call drive: ``ShardDriver(**driver_kwargs).drive(spec, workers)``."""
    return ShardDriver(**driver_kwargs).drive(spec, workers, shards=shards)
