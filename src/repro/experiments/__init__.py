"""Declarative experiment orchestration: the repo's measurement pipeline.

Every number the repo reports — an upper-bound certificate-size series, a
lower-bound Ω(·) series, a radius-ablation check — is produced by running a
declarative *spec* and lands in the same JSON artifact shape:

* :class:`~repro.experiments.spec.ExperimentSpec` is the shared backbone
  (size grid, per-point derived seeds, ``shard=(i, k)`` execution, JSON
  round-trip with kind dispatch);
* :class:`~repro.experiments.spec.SweepSpec` + :func:`~repro.experiments.
  runner.run_sweep` measure a certificate-size series of one registered
  scheme over one graph family on the compile-once engine, fanning out
  across ``multiprocessing`` workers;
* :class:`~repro.experiments.lower_bound.LowerBoundSpec` +
  :func:`~repro.experiments.lower_bound.run_lower_bound` run a Section 7.1
  reduction-framework search (bound series, gadget dichotomy, Alice/Bob
  protocol simulation);
* :class:`~repro.experiments.radius.RadiusSpec` +
  :func:`~repro.experiments.radius.run_radius` run the Appendix A.1
  radius-r verification series;
* :class:`~repro.experiments.kernel.KernelSpec` +
  :func:`~repro.experiments.kernel.run_kernel` run a Section 6 kernel-size
  series (Proposition 6.2 saturation, optional EF-game equivalence);
* :mod:`~repro.experiments.artifacts` serialises results (with both the
  closed-form :class:`BoundCheck` verdict and the fitted regression
  exponent of :mod:`~repro.experiments.bounds`) and merges sharded partial
  artifacts (:func:`merge_artifacts`);
* :mod:`~repro.experiments.results` aggregates artifacts into
  ``EXPERIMENTS.md`` tables and gates them against a committed baseline.

Example::

    from repro.experiments import SweepSpec, run_sweep, write_artifact

    spec = SweepSpec(scheme="treedepth", params={"t": 3},
                     family="bounded-treedepth", sizes=(3, 3, 3), trials=10)
    result = run_sweep(spec)
    print(result.series, result.bound.ok, result.fit)
    write_artifact(result, "sweep_treedepth.json")

Sharded execution (e.g. across two machines)::

    part0 = run_sweep(spec, shard=(0, 2))
    part1 = run_sweep(spec, shard=(1, 2))
    assert merge_artifacts([part0, part1]).series == result.series
"""

from repro.experiments.artifacts import (
    BoundCheck,
    ExperimentResult,
    SweepPoint,
    SweepResult,
    canonical_payload,
    check_series_bound,
    load_artifact,
    merge_artifacts,
    result_from_payload,
    write_artifact,
)
from repro.experiments.bounds import FittedBound, fit_series
from repro.experiments.formula import (
    FormulaPoint,
    FormulaResult,
    FormulaSpec,
    run_formula,
    run_formula_point,
)
from repro.experiments.kernel import (
    KernelPoint,
    KernelResult,
    KernelSpec,
    run_kernel,
    run_kernel_point,
)
from repro.experiments.lower_bound import (
    LowerBoundPoint,
    LowerBoundResult,
    LowerBoundSpec,
    run_lower_bound,
    run_lower_bound_point,
)
from repro.experiments.radius import RadiusPoint, RadiusResult, RadiusSpec, run_radius
from repro.experiments.results import (
    BaselineReport,
    Regression,
    collect_artifacts,
    compare_to_baseline,
    render_experiments_md,
    write_baseline,
)
from repro.experiments.runner import run_point, run_sweep
from repro.experiments.spec import (
    ExperimentCancelled,
    ExperimentSpec,
    SweepSpec,
    raise_if_stopped,
)

__all__ = [
    "BaselineReport",
    "BoundCheck",
    "ExperimentCancelled",
    "ExperimentResult",
    "ExperimentSpec",
    "FittedBound",
    "FormulaPoint",
    "FormulaResult",
    "FormulaSpec",
    "KernelPoint",
    "KernelResult",
    "KernelSpec",
    "LowerBoundPoint",
    "LowerBoundResult",
    "LowerBoundSpec",
    "RadiusPoint",
    "RadiusResult",
    "RadiusSpec",
    "Regression",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "canonical_payload",
    "check_series_bound",
    "collect_artifacts",
    "compare_to_baseline",
    "fit_series",
    "load_artifact",
    "merge_artifacts",
    "raise_if_stopped",
    "render_experiments_md",
    "result_from_payload",
    "run_formula",
    "run_formula_point",
    "run_kernel",
    "run_kernel_point",
    "run_lower_bound",
    "run_lower_bound_point",
    "run_point",
    "run_radius",
    "run_sweep",
    "write_artifact",
    "write_baseline",
]
