"""Declarative experiment orchestration: sweeps over the scheme registry.

A sweep — one certification scheme, one graph family, a grid of sizes,
per-instance adversarial trials — is the unit of measurement of every
certificate-size series in the paper's experiments.  This package makes the
sweep a declarative object instead of a hand-rolled loop:

* :class:`~repro.experiments.spec.SweepSpec` describes the sweep (scheme
  key, validated parameters, ``family`` + ``sizes`` grid, trials, seed,
  engine, worker count) and serialises to/from JSON;
* :func:`~repro.experiments.runner.run_sweep` executes it on the
  compile-once engine, fanning instances out across ``multiprocessing``
  workers, with a derived independent seed per instance so any sub-range is
  reproducible and shardable;
* :mod:`~repro.experiments.artifacts` captures the result — the measured
  size series, completeness/soundness flags per instance, and the series
  checked against the asymptotic bound registered for the scheme — as a
  JSON artifact.

Example::

    from repro.experiments import SweepSpec, run_sweep, write_artifact

    spec = SweepSpec(scheme="treedepth", params={"t": 3},
                     family="bounded-treedepth", sizes=(3, 3, 3), trials=10)
    result = run_sweep(spec)
    print(result.series, result.bound.ok)
    write_artifact(result, "sweep_treedepth.json")
"""

from repro.experiments.artifacts import (
    BoundCheck,
    SweepPoint,
    SweepResult,
    load_artifact,
    write_artifact,
)
from repro.experiments.runner import run_point, run_sweep
from repro.experiments.spec import SweepSpec

__all__ = [
    "BoundCheck",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "load_artifact",
    "run_point",
    "run_sweep",
    "write_artifact",
]
