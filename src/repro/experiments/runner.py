"""Execute a :class:`~repro.experiments.spec.SweepSpec` on the compiled engine.

One grid point = build the instance, create the scheme from the registry,
run the full evaluation harness (honest proof + distributed verification on
yes-instances, scheduled adversarial trials on no-instances) and record the
measured certificate size.  Points are independent by construction — each
derives its own seed from ``(sweep seed, index)`` — which is what makes the
``multiprocessing`` fan-out below trivial and any sub-range shardable: a
worker needs nothing but the spec and a point index.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import replace
from typing import Mapping, Optional, Tuple

from repro.core.scheme import NotAYesInstance, evaluate_scheme
from repro.experiments.artifacts import BoundCheck, SweepPoint, SweepResult
from repro.experiments.spec import SweepSpec
from repro.graphs.generators import build_graph_spec


def run_point(spec: SweepSpec, index: int) -> SweepPoint:
    """Run one grid point of a sweep (reproducible in isolation)."""
    n = spec.sizes[index]
    point_seed = spec.point_seed(index)
    graph_spec = spec.graph_spec(index)
    graph = build_graph_spec(graph_spec, seed=point_seed)
    scheme = spec.info.create(spec.resolved_params(n))
    started = time.perf_counter()
    if spec.measure == "size":
        # Honest prover only: ``holds`` records whether a proof exists.
        try:
            bits = scheme.max_certificate_bits(graph, seed=point_seed)
            holds, completeness, soundness = True, None, None
        except NotAYesInstance:
            bits, holds, completeness, soundness = 0, False, None, None
    else:
        report = evaluate_scheme(
            scheme,
            graph,
            seed=point_seed,
            adversarial_trials=spec.trials,
            engine=spec.engine,
        )
        bits = report.max_certificate_bits
        holds = report.holds
        completeness = report.completeness_ok
        soundness = report.soundness_ok
    return SweepPoint(
        index=index,
        n=n,
        graph=graph_spec,
        vertices=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        seed=point_seed,
        holds=holds,
        completeness_ok=completeness,
        soundness_ok=soundness,
        max_certificate_bits=bits,
        elapsed_s=time.perf_counter() - started,
    )


def _run_point_task(task: Tuple[dict, int]) -> SweepPoint:
    """Worker entry point: rebuild the spec from its dict and run one point.

    Only plain data crosses the process boundary — schemes are re-created
    from the registry inside the worker, so nothing unpicklable (automata,
    closures, caches) ever has to be serialised.
    """
    spec_dict, index = task
    return run_point(SweepSpec.from_dict(spec_dict), index)


def run_sweep(spec: SweepSpec, processes: Optional[int] = None) -> SweepResult:
    """Execute a whole sweep and check the series against the scheme's bound.

    ``processes`` overrides ``spec.processes``; with more than one process
    the grid points fan out across a ``multiprocessing`` pool.  The result
    is identical either way — workers derive the same per-point seeds.
    """
    spec.validate()
    processes = spec.processes if processes is None else max(1, processes)
    indices = range(len(spec.sizes))
    if processes > 1 and len(spec.sizes) > 1:
        tasks = [(spec.to_dict(), index) for index in indices]
        with multiprocessing.Pool(processes=min(processes, len(tasks))) as pool:
            points = pool.map(_run_point_task, tasks)
        points.sort(key=lambda point: point.index)
    else:
        points = [run_point(spec, index) for index in indices]

    result = SweepResult(spec=spec, points=tuple(points))
    if spec.check_bound:
        result = replace(result, bound=check_series_bound(spec, result.series))
    return result


def check_series_bound(spec: SweepSpec, series: Mapping[int, int]) -> BoundCheck:
    """Check a measured yes-instance series against the registered bound.

    ``series`` is the n → bits mapping of :attr:`SweepResult.series`.
    Bounds whose envelope reads scheme parameters (``t``, ``k``) evaluate
    them at the largest grid size — with ``$n``-templated parameters the
    envelope is conservative for smaller points, which only widens the
    allowed band.
    """
    params = spec.resolved_params(max(spec.sizes))
    ok, detail = spec.info.bound.check_series(series, params)
    return BoundCheck(
        label=detail["label"],
        ok=ok,
        spread=detail.get("spread"),
        slack=detail["slack"],
        ratios=detail.get("ratios", {}),
    )
