"""Execute a :class:`~repro.experiments.spec.SweepSpec` on the compiled engine.

One grid point = build the instance, create the scheme from the registry,
run the full evaluation harness (honest proof + distributed verification on
yes-instances, scheduled adversarial trials on no-instances) and record the
measured certificate size.  Points are independent by construction — each
derives its own seed from ``(sweep seed, index)`` — which is what makes the
``multiprocessing`` fan-out below trivial and any sub-range shardable: a
worker (or a whole machine running ``shard=(i, k)``) needs nothing but the
spec and a global point index.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import replace
from typing import Callable, Optional, Tuple

from repro.core.scheme import NotAYesInstance, evaluate_scheme
from repro.experiments.artifacts import SweepPoint, SweepResult
from repro.experiments.spec import SweepSpec, raise_if_stopped
from repro.graphs.generators import build_graph_spec
from repro.network.ids import assign_identifiers


def run_point(spec: SweepSpec, index: int) -> SweepPoint:
    """Run one grid point of a sweep (reproducible in isolation)."""
    n = spec.sizes[index]
    point_seed = spec.point_seed(index)
    graph_spec = spec.graph_spec(index)
    graph = build_graph_spec(graph_spec, seed=point_seed)
    scheme = spec.info.create(spec.resolved_params(n))
    started = time.perf_counter()
    engine_resolved = None
    if spec.measure == "size":
        # Honest prover only: ``holds`` records whether a proof exists.
        ids = None
        if spec.id_exponent is not None:
            ids = assign_identifiers(graph, exponent=spec.id_exponent, seed=point_seed)
        try:
            bits = scheme.max_certificate_bits(graph, seed=point_seed, ids=ids)
            holds, completeness, soundness = True, None, None
        except NotAYesInstance:
            bits, holds, completeness, soundness = 0, False, None, None
    else:
        report = evaluate_scheme(
            scheme,
            graph,
            seed=point_seed,
            adversarial_trials=spec.trials,
            engine=spec.engine,
            id_exponent=spec.id_exponent,
        )
        bits = report.max_certificate_bits
        holds = report.holds
        completeness = report.completeness_ok
        soundness = report.soundness_ok
        engine_resolved = report.engine_resolved
    return SweepPoint(
        index=index,
        n=n,
        graph=graph_spec,
        vertices=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        seed=point_seed,
        holds=holds,
        completeness_ok=completeness,
        soundness_ok=soundness,
        max_certificate_bits=bits,
        elapsed_s=time.perf_counter() - started,
        engine_resolved=engine_resolved,
    )


def _run_point_task(task: Tuple[dict, int]) -> SweepPoint:
    """Worker entry point: rebuild the spec from its dict and run one point.

    Only plain data crosses the process boundary — schemes are re-created
    from the registry inside the worker, so nothing unpicklable (automata,
    closures, caches) ever has to be serialised.
    """
    spec_dict, index = task
    return run_point(SweepSpec.from_dict(spec_dict), index)


def run_sweep(
    spec: SweepSpec,
    processes: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
    should_stop: Optional[Callable[[], Optional[str]]] = None,
    on_point: Optional[Callable[[SweepPoint], None]] = None,
) -> SweepResult:
    """Execute a sweep (or one shard of it) and judge the measured series.

    ``processes`` overrides ``spec.processes``; with more than one process
    the grid points fan out across a ``multiprocessing`` pool.  The result
    is identical either way — workers derive the same per-point seeds.

    ``shard`` overrides ``spec.shard``: shard ``(i, k)`` runs only the grid
    points with global index ≡ i (mod k), keeping their global indices and
    derived seeds, and records the shard in the result's spec.  Partial
    results from a complete set of shards merge back into the unsharded
    artifact via :func:`repro.experiments.artifacts.merge_artifacts`.

    ``should_stop`` is a cooperative stop-check (see
    :func:`~repro.experiments.spec.raise_if_stopped`) polled between grid
    points; when it fires the run raises
    :class:`~repro.experiments.spec.ExperimentCancelled` instead of
    grinding through the rest of the grid.

    ``on_point`` is an optional progress sink invoked with each completed
    :class:`SweepPoint` as it lands (in arrival order).  A run interrupted
    by ``should_stop`` has therefore already reported every finished point,
    which is what lets the service salvage partial shard progress into a
    structured timeout answer.

    The finalised result carries both bound judgements: the closed-form
    :class:`BoundCheck` verdict against the registered envelope (when
    ``spec.check_bound``) and the :class:`~repro.experiments.bounds.
    FittedBound` regression exponent of the series.
    """
    if shard is not None:
        spec = replace(spec, shard=shard)
    spec.validate()
    raise_if_stopped(should_stop)
    processes = spec.processes if processes is None else max(1, processes)
    indices = spec.shard_indices()
    if processes > 1 and len(indices) > 1:
        tasks = [(spec.to_dict(), index) for index in indices]
        with multiprocessing.Pool(processes=min(processes, len(tasks))) as pool:
            # imap keeps submission order and lets the stop-check run between
            # arrivals; leaving the ``with`` block on cancellation terminates
            # the pool, so orphaned points stop with the run.
            points = []
            for point in pool.imap(_run_point_task, tasks):
                points.append(point)
                if on_point is not None:
                    on_point(point)
                raise_if_stopped(should_stop)
        points.sort(key=lambda point: point.index)
    else:
        points = []
        for index in indices:
            raise_if_stopped(should_stop)
            points.append(run_point(spec, index))
            if on_point is not None:
                on_point(points[-1])

    return SweepResult.merged_from_points(spec, tuple(points))
