"""Declarative radius-r verification series (the Appendix A.1 ablation).

The paper fixes the verification radius at 1; Appendix A.1 justifies that
choice with "diameter ≤ 3": at radius ``bound + 1`` a node sees far enough
to decide the property with **zero** certificate bits, whereas at radius 1
it needs the universal scheme's Θ(n²) bits.  A :class:`RadiusSpec` captures
the radius-r half of that comparison declaratively: a graph family, a size
grid, a diameter bound and a verification radius; every point runs the
certificate-free radius-r verifier of
:func:`repro.network.radius.diameter_at_most_verifier` and records whether
its accept/reject decision matches the instance's actual diameter.

(The radius-1 half of the comparison is an ordinary ``universal``-scheme
:class:`~repro.experiments.spec.SweepSpec`.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, ClassVar, Dict, Mapping, Optional, Tuple

import networkx as nx

from repro.experiments.artifacts import ARTIFACT_SCHEMA, BoundCheck, ExperimentResult
from repro.experiments.bounds import FittedBound, fit_series
from repro.experiments.spec import ExperimentSpec, raise_if_stopped
from repro.graphs.generators import GRAPH_FAMILIES, build_graph_spec
from repro.network.radius import RadiusSimulator, diameter_at_most_verifier
from repro.registry import RegistryError


@dataclass(frozen=True)
class RadiusSpec(ExperimentSpec):
    """A certificate-free radius-r "diameter ≤ bound" verification series.

    ``radius`` defaults to ``bound + 1`` (the smallest radius at which the
    verifier needs no certificates, per Appendix A.1) when left at 0.
    """

    kind: ClassVar[str] = "radius"
    _REQUIRED: ClassVar[Tuple[str, ...]] = ("family", "sizes")

    family: str
    sizes: Tuple[int, ...]
    bound: int = 3
    radius: int = 0
    seed: int = 0
    shard: Optional[Tuple[int, int]] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "shard", self._normalize_shard(self.shard))

    @property
    def effective_radius(self) -> int:
        return self.radius if self.radius > 0 else self.bound + 1

    def validate(self) -> "RadiusSpec":
        if self.family not in GRAPH_FAMILIES:
            raise RegistryError(
                f"unknown graph family {self.family!r}; choose from {sorted(GRAPH_FAMILIES)}"
            )
        self._validate_grid()
        if self.bound < 1:
            raise RegistryError("the diameter bound must be at least 1")
        if self.radius < 0:
            raise RegistryError("radius must be non-negative (0 = bound + 1)")
        return self

    def graph_spec(self, index: int) -> str:
        return f"{self.family}:{self.sizes[index]}"

    def _default_label(self) -> str:
        return f"radius{self.effective_radius}-diameter{self.bound}-{self.family}"


@dataclass(frozen=True)
class RadiusPoint:
    """The outcome of one radius-r verification instance."""

    index: int
    size: int
    graph: str
    vertices: int
    diameter: int
    seed: int
    expected: bool
    """Ground truth: does the instance have diameter ≤ bound?"""
    accepted: bool
    """Did every vertex of the radius-r verifier accept (with 0-bit certificates)?"""
    ok: bool
    """``accepted == expected`` — the verifier decided correctly."""
    max_certificate_bits: int
    elapsed_s: float

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RadiusPoint":
        return cls(**dict(data))


@dataclass(frozen=True)
class RadiusResult(ExperimentResult):
    """Everything :func:`run_radius` produces."""

    kind: ClassVar[str] = "radius"

    spec: RadiusSpec
    points: Tuple[RadiusPoint, ...]
    bound: Optional[BoundCheck] = None
    fit: Optional[FittedBound] = None

    @property
    def series(self) -> Dict[int, int]:
        """``size → certificate bits`` — identically 0 by construction."""
        return {point.size: point.max_certificate_bits for point in self.points}

    @property
    def all_ok(self) -> bool:
        return all(point.ok for point in self.points)

    @classmethod
    def merged_from_points(
        cls, spec: RadiusSpec, points: Tuple[RadiusPoint, ...]
    ) -> "RadiusResult":
        result = cls(spec=spec, points=points)
        return replace(result, fit=fit_series(result.series))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ARTIFACT_SCHEMA,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
            "points": [point.to_dict() for point in self.points],
            "series": {str(size): bits for size, bits in sorted(self.series.items())},
            "all_ok": self.all_ok,
            "bound": None,
            "fit": self.fit.to_dict() if self.fit is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RadiusResult":
        fit = data.get("fit")
        return cls(
            spec=RadiusSpec.from_dict(data["spec"]),
            points=tuple(RadiusPoint.from_dict(p) for p in data["points"]),
            fit=FittedBound.from_dict(fit) if fit is not None else None,
        )


def run_radius_point(spec: RadiusSpec, index: int) -> RadiusPoint:
    """Run one radius-r verification instance (reproducible in isolation)."""
    size = spec.sizes[index]
    point_seed = spec.point_seed(index)
    graph_spec = spec.graph_spec(index)
    graph = build_graph_spec(graph_spec, seed=point_seed)
    started = time.perf_counter()
    diameter = nx.diameter(graph)
    expected = diameter <= spec.bound
    simulator = RadiusSimulator(graph, radius=spec.effective_radius, seed=point_seed)
    outcome = simulator.run(
        diameter_at_most_verifier(spec.bound), {v: b"" for v in graph.nodes()}
    )
    return RadiusPoint(
        index=index,
        size=size,
        graph=graph_spec,
        vertices=graph.number_of_nodes(),
        diameter=diameter,
        seed=point_seed,
        expected=expected,
        accepted=outcome.accepted,
        ok=outcome.accepted == expected,
        max_certificate_bits=outcome.max_certificate_bits,
        elapsed_s=time.perf_counter() - started,
    )


def run_radius(
    spec: RadiusSpec,
    shard: Optional[Tuple[int, int]] = None,
    should_stop: Optional[Callable[[], Optional[str]]] = None,
    on_point: Optional[Callable[[RadiusPoint], None]] = None,
) -> RadiusResult:
    """Execute a radius-verification series (or one shard of it).

    ``should_stop`` is the same cooperative stop-check the sweep and
    lower-bound runners poll between grid points (it raises
    :class:`~repro.experiments.spec.ExperimentCancelled`), so radius runs
    honour service deadlines and cancellation like every other kind.
    """
    if shard is not None:
        spec = replace(spec, shard=shard)
    spec.validate()
    points = []
    for index in spec.shard_indices():
        raise_if_stopped(should_stop)
        points.append(run_radius_point(spec, index))
        if on_point is not None:
            on_point(points[-1])
    return RadiusResult.merged_from_points(spec, tuple(points))
