"""Sweep results as structured, JSON-serialisable artifacts."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.experiments.spec import SweepSpec

#: Bumped whenever the artifact layout changes incompatibly.
ARTIFACT_SCHEMA = 1


@dataclass(frozen=True)
class SweepPoint:
    """The measured outcome of one grid point of a sweep."""

    index: int
    n: int
    """The requested family size (the grid coordinate)."""
    graph: str
    """The resolved ``family:size`` specifier."""
    vertices: int
    edges: int
    seed: int
    """The derived per-point seed (identifiers + adversarial schedule)."""
    holds: bool
    completeness_ok: Optional[bool]
    soundness_ok: Optional[bool]
    max_certificate_bits: int
    elapsed_s: float

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPoint":
        return cls(**dict(data))


@dataclass(frozen=True)
class BoundCheck:
    """The measured series checked against the registered asymptotic bound."""

    label: str
    ok: bool
    spread: Optional[float]
    slack: float
    ratios: Dict[int, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "ok": self.ok,
            "spread": self.spread,
            "slack": self.slack,
            # JSON object keys are strings; parse back in from_dict.
            "ratios": {str(n): ratio for n, ratio in self.ratios.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BoundCheck":
        return cls(
            label=data["label"],
            ok=bool(data["ok"]),
            spread=data.get("spread"),
            slack=float(data.get("slack", 0.0)),
            ratios={int(n): float(r) for n, r in dict(data.get("ratios", {})).items()},
        )


@dataclass(frozen=True)
class SweepResult:
    """Everything :func:`repro.experiments.runner.run_sweep` produces."""

    spec: SweepSpec
    points: Tuple[SweepPoint, ...]
    bound: Optional[BoundCheck] = None

    @property
    def series(self) -> Dict[int, int]:
        """Measured honest-certificate bits per size, yes-instances only.

        With repeated sizes the *largest* measurement per size is kept (the
        quantity the paper bounds is the maximum certificate size).
        """
        series: Dict[int, int] = {}
        for point in self.points:
            if point.holds:
                series[point.n] = max(series.get(point.n, 0), point.max_certificate_bits)
        return series

    @property
    def all_accepted(self) -> bool:
        """No yes-instance's honest proof was rejected.

        Vacuously true for ``measure="size"`` sweeps, which never run the
        distributed verifier (``completeness_ok`` is None).
        """
        return all(point.completeness_ok is not False for point in self.points if point.holds)

    @property
    def all_sound(self) -> bool:
        """No no-instance's sampled adversarial assignment was accepted.

        Vacuously true for ``measure="size"`` sweeps, which run no
        adversarial trials (``soundness_ok`` is None).
        """
        return all(point.soundness_ok is not False for point in self.points if not point.holds)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ARTIFACT_SCHEMA,
            "spec": self.spec.to_dict(),
            "points": [point.to_dict() for point in self.points],
            "series": {str(n): bits for n, bits in sorted(self.series.items())},
            "all_accepted": self.all_accepted,
            "all_sound": self.all_sound,
            "bound": self.bound.to_dict() if self.bound is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        bound = data.get("bound")
        return cls(
            spec=SweepSpec.from_dict(data["spec"]),
            points=tuple(SweepPoint.from_dict(p) for p in data["points"]),
            bound=BoundCheck.from_dict(bound) if bound is not None else None,
        )


def write_artifact(result: SweepResult, path: str | os.PathLike) -> Path:
    """Write a sweep result as a JSON artifact; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: str | os.PathLike) -> SweepResult:
    """Load a sweep result previously written by :func:`write_artifact`."""
    data = json.loads(Path(path).read_text())
    schema = data.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"artifact {path} has schema {schema!r}, expected {ARTIFACT_SCHEMA}"
        )
    return SweepResult.from_dict(data)
