"""Experiment results as structured, JSON-serialisable artifacts.

Every experiment kind (sweep, lower-bound, radius) produces a result object
deriving from :class:`ExperimentResult`; the artifact on disk is its
``to_dict`` plus a schema version and a ``kind`` tag, so
:func:`load_artifact` can re-hydrate any artifact without being told what it
holds.  All results carry the same two bound judgements:

* ``bound`` — the closed-form :class:`BoundCheck` verdict against the
  registered :class:`~repro.registry.SizeBound` envelope, and
* ``fit`` — the measured :class:`~repro.experiments.bounds.FittedBound`
  regression exponent of the series,

which is what lets the ``results`` aggregation print upper- and lower-bound
series in one uniform table.

Sharded runs write partial artifacts (their spec records the shard);
:func:`merge_artifacts` stitches the shards of one experiment back into the
artifact of the unsharded run — identical modulo wall-clock timings, because
every grid point keeps its global index and derived seed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, ClassVar, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.bounds import FittedBound, fit_series
from repro.experiments.spec import ExperimentSpec, SweepSpec

#: Bumped whenever the artifact layout changes incompatibly.  Schema 2 added
#: the ``kind`` tag and the fitted-bound record; schema-1 artifacts (sweeps
#: only, no fit) still load.
ARTIFACT_SCHEMA = 2

_READABLE_SCHEMAS = (1, 2)


@dataclass(frozen=True)
class SweepPoint:
    """The measured outcome of one grid point of a sweep."""

    index: int
    n: int
    """The requested family size (the grid coordinate)."""
    graph: str
    """The resolved ``family:size`` specifier."""
    vertices: int
    edges: int
    seed: int
    """The derived per-point seed (identifiers + adversarial schedule)."""
    holds: bool
    completeness_ok: Optional[bool]
    soundness_ok: Optional[bool]
    max_certificate_bits: int
    elapsed_s: float
    engine_resolved: Optional[str] = None
    """Concrete engine the point's evaluation actually ran on (None for
    honest-prover-only points and pre-planner artifacts)."""

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPoint":
        return cls(**dict(data))


@dataclass(frozen=True)
class BoundCheck:
    """The measured series checked against the registered asymptotic bound."""

    label: str
    ok: bool
    spread: Optional[float]
    slack: float
    ratios: Dict[int, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "ok": self.ok,
            "spread": self.spread,
            "slack": self.slack,
            # JSON object keys are strings; parse back in from_dict.
            "ratios": {str(n): ratio for n, ratio in self.ratios.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BoundCheck":
        return cls(
            label=data["label"],
            ok=bool(data["ok"]),
            spread=data.get("spread"),
            slack=float(data.get("slack", 0.0)),
            ratios={int(n): float(r) for n, r in dict(data.get("ratios", {})).items()},
        )

    @classmethod
    def from_check(cls, ok: bool, detail: Mapping[str, Any]) -> "BoundCheck":
        """Build a verdict from ``SizeBound.check_series``'s return pair."""
        return cls(
            label=detail["label"],
            ok=ok,
            spread=detail.get("spread"),
            slack=detail["slack"],
            ratios=detail.get("ratios", {}),
        )


class ExperimentResult:
    """Base class of experiment results; subclasses register by ``kind``.

    A subclass must be a dataclass with at least ``spec``, ``points``,
    ``bound`` and ``fit`` fields, a ``series`` property mapping grid size to
    the measured quantity, and a ``merged_from_points`` classmethod that
    re-finalises (bound check + fit) a merged point set.
    """

    kind: ClassVar[str] = ""
    _KINDS: ClassVar[Dict[str, type]] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        kind = cls.__dict__.get("kind", "")
        if kind:
            existing = ExperimentResult._KINDS.get(kind)
            if existing is not None and existing is not cls:
                raise ValueError(f"result kind {kind!r} is already registered")
            ExperimentResult._KINDS[kind] = cls

    @classmethod
    def result_class(cls, kind: str) -> type:
        try:
            return cls._KINDS[kind]
        except KeyError:
            raise ValueError(
                f"unknown artifact kind {kind!r}; known kinds: {sorted(cls._KINDS)}"
            ) from None


def check_series_bound(spec: SweepSpec, series: Mapping[int, float]) -> BoundCheck:
    """Check a measured yes-instance series against the registered bound.

    ``series`` is the n → bits mapping of :attr:`SweepResult.series`.
    Bounds whose envelope reads scheme parameters (``t``, ``k``) evaluate
    them at the largest grid size — with ``$n``-templated parameters the
    envelope is conservative for smaller points, which only widens the
    allowed band.
    """
    params = spec.resolved_params(max(spec.sizes))
    return BoundCheck.from_check(*spec.info.bound.check_series(series, params))


@dataclass(frozen=True)
class SweepResult(ExperimentResult):
    """Everything :func:`repro.experiments.runner.run_sweep` produces."""

    kind: ClassVar[str] = "sweep"

    spec: SweepSpec
    points: Tuple[SweepPoint, ...]
    bound: Optional[BoundCheck] = None
    fit: Optional[FittedBound] = None

    @property
    def series(self) -> Dict[int, int]:
        """Measured honest-certificate bits per size, yes-instances only.

        With repeated sizes the *largest* measurement per size is kept (the
        quantity the paper bounds is the maximum certificate size).
        """
        series: Dict[int, int] = {}
        for point in self.points:
            if point.holds:
                series[point.n] = max(series.get(point.n, 0), point.max_certificate_bits)
        return series

    @property
    def all_accepted(self) -> bool:
        """No yes-instance's honest proof was rejected.

        Vacuously true for ``measure="size"`` sweeps, which never run the
        distributed verifier (``completeness_ok`` is None).
        """
        return all(point.completeness_ok is not False for point in self.points if point.holds)

    @property
    def all_sound(self) -> bool:
        """No no-instance's sampled adversarial assignment was accepted.

        Vacuously true for ``measure="size"`` sweeps, which run no
        adversarial trials (``soundness_ok`` is None).
        """
        return all(point.soundness_ok is not False for point in self.points if not point.holds)

    @classmethod
    def merged_from_points(
        cls, spec: SweepSpec, points: Tuple[SweepPoint, ...]
    ) -> "SweepResult":
        result = cls(spec=spec, points=points)
        bound = check_series_bound(spec, result.series) if spec.check_bound else None
        return replace(result, bound=bound, fit=fit_series(result.series))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ARTIFACT_SCHEMA,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
            "points": [point.to_dict() for point in self.points],
            "series": {str(n): bits for n, bits in sorted(self.series.items())},
            "all_accepted": self.all_accepted,
            "all_sound": self.all_sound,
            "bound": self.bound.to_dict() if self.bound is not None else None,
            "fit": self.fit.to_dict() if self.fit is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        bound = data.get("bound")
        fit = data.get("fit")
        return cls(
            spec=SweepSpec.from_dict(data["spec"]),
            points=tuple(SweepPoint.from_dict(p) for p in data["points"]),
            bound=BoundCheck.from_dict(bound) if bound is not None else None,
            fit=FittedBound.from_dict(fit) if fit is not None else None,
        )


def canonical_payload(data: Mapping[str, Any]) -> Dict[str, Any]:
    """An artifact payload with its wall-clock timings normalised away.

    Per-point ``elapsed_s`` is the only field of an artifact that differs
    between two runs of the same experiment (sharded or not, driven or
    not); zeroing it makes artifacts *byte-comparable* — the check the
    shard driver's exactness guarantee and the chaos CI job rest on.
    """
    out = dict(data)
    out["points"] = [
        {**dict(point), "elapsed_s": 0.0} for point in data.get("points", [])
    ]
    return out


def write_artifact(
    result: ExperimentResult, path: str | os.PathLike, canonical: bool = False
) -> Path:
    """Write an experiment result as a JSON artifact; returns the path written.

    ``canonical`` routes the payload through :func:`canonical_payload`, so
    two writes of the same experiment are byte-identical regardless of how
    (or where) the points were executed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = result.to_dict()
    if canonical:
        payload = canonical_payload(payload)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def result_from_payload(data: Mapping[str, Any]) -> ExperimentResult:
    """Re-hydrate an experiment result from its artifact payload.

    The payload is exactly what :meth:`ExperimentResult.to_dict` produced —
    whether it came from a file, a ``sweep``/``lower-bound`` wire response
    (the shard driver's path), or an in-memory round-trip.
    """
    schema = data.get("schema")
    if schema not in _READABLE_SCHEMAS:
        raise ValueError(
            f"artifact payload has schema {schema!r}, expected one of {_READABLE_SCHEMAS}"
        )
    cls = ExperimentResult.result_class(data.get("kind", "sweep"))
    return cls.from_dict(data)


def load_artifact(path: str | os.PathLike) -> ExperimentResult:
    """Load an experiment result previously written by :func:`write_artifact`."""
    try:
        return result_from_payload(json.loads(Path(path).read_text()))
    except ValueError as error:
        raise ValueError(f"artifact {path}: {error}") from None


def _merge_identity(spec: ExperimentSpec) -> ExperimentSpec:
    """A spec reduced to what identifies the *experiment*, not its execution.

    Shards of one experiment may legitimately run with different worker
    counts on different machines (``processes`` does not affect any measured
    value), so it is normalised away alongside the shard itself; the merged
    artifact's spec carries the normalised form.
    """
    spec = spec.unsharded()
    if hasattr(spec, "processes"):
        spec = replace(spec, processes=1)
    return spec


def merge_artifacts(
    parts: Iterable[Union[ExperimentResult, str, os.PathLike]],
) -> ExperimentResult:
    """Stitch the partial artifacts of one sharded experiment back together.

    ``parts`` are results (or paths to artifacts) of runs of the *same*
    experiment under different shards.  The shards must tile the grid
    exactly — every global index covered once — and the merged result is
    re-finalised (bound check, fit) from the union of points, so it equals
    the unsharded run's artifact modulo per-point wall-clock timings.
    """
    results = [
        part if isinstance(part, ExperimentResult) else load_artifact(part)
        for part in parts
    ]
    if not results:
        raise ValueError("merge_artifacts needs at least one partial result")
    kinds = {type(result) for result in results}
    if len(kinds) > 1:
        raise ValueError(
            f"cannot merge artifacts of different kinds: {sorted(c.kind for c in kinds)}"
        )
    spec = _merge_identity(results[0].spec)
    if any(_merge_identity(result.spec) != spec for result in results[1:]):
        raise ValueError("cannot merge artifacts of different experiments")

    by_index: Dict[int, Any] = {}
    for result in results:
        for point in result.points:
            if point.index in by_index:
                raise ValueError(f"grid point {point.index} is covered by two shards")
            by_index[point.index] = point
    expected = set(range(len(spec.sizes)))
    missing = sorted(expected - set(by_index))
    if missing:
        raise ValueError(f"merged shards do not cover grid point(s) {missing}")
    extra = sorted(set(by_index) - expected)
    if extra:
        raise ValueError(f"merged shards cover out-of-grid point(s) {extra}")

    points = tuple(by_index[index] for index in sorted(by_index))
    return type(results[0]).merged_from_points(spec, points)
