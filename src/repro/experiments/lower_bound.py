"""Declarative lower-bound searches: the Ω(·) side of the pipeline.

A :class:`LowerBoundSpec` is to the Section 7 reduction framework what
:class:`~repro.experiments.spec.SweepSpec` is to the scheme registry: it
names a construction from
:data:`repro.lower_bounds.catalog.LOWER_BOUND_CONSTRUCTIONS`, a grid of
construction sizes, and which checks to run per point —

* the **bound series**: the Ω(ℓ/r) certificate-size bound Proposition 7.2
  implies at each grid size (always computed; checked against the
  construction's expected asymptotic shape and fitted, exactly like a
  sweep's measured series);
* the **dichotomy check**: build the gadget ``G(s_A, s_B)`` for an equal and
  a one-bit-different string pair (drawn from the point's derived seed) and
  verify that the certified property holds exactly on the equal pair — the
  heart of the reduction;
* the **protocol simulation**: run the Alice/Bob simulation of
  :meth:`~repro.lower_bounds.framework.ReductionFramework.simulate_protocol`
  on the gadget with the completeness/soundness probe schemes (tiny
  instances only — the simulation is doubly exponential by design).

Like sweeps, lower-bound runs shard (``shard=(i, k)`` with global indices
and seeds) and write the same artifact envelope, so ``merge_artifacts`` and
the ``results`` aggregation treat both kinds uniformly.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, ClassVar, Dict, Mapping, Optional, Tuple

from repro.experiments.artifacts import (
    ARTIFACT_SCHEMA,
    BoundCheck,
    ExperimentResult,
)
from repro.engines import resolve_engine, validate_engine
from repro.planner import Workload
from repro.experiments.bounds import FittedBound, fit_series
from repro.experiments.spec import ExperimentSpec, raise_if_stopped
from repro.lower_bounds.catalog import (
    LowerBoundConstruction,
    NeverAcceptScheme,
    ProtocolProbeScheme,
    get_construction,
)
from repro.network.ids import assign_identifiers
from repro.registry import RegistryError


@dataclass(frozen=True)
class LowerBoundSpec(ExperimentSpec):
    """One declarative lower-bound search over a construction-size grid.

    ``sizes`` is the construction's own grid coordinate (string length ℓ for
    ``automorphism``, matching size n for ``treedepth``).  The per-point
    derived seed drives the drawn string pairs, so any sub-range of the grid
    reproduces the full run's instances — the same contract as sweeps.
    """

    kind: ClassVar[str] = "lower-bound"
    _REQUIRED: ClassVar[Tuple[str, ...]] = ("construction", "sizes")

    construction: str
    sizes: Tuple[int, ...]
    check_dichotomy: bool = True
    simulate: bool = False
    simulate_bits: int = 1
    max_side_bits: int = 12
    engine: str = "auto"
    """How the protocol-simulation probes sweep assignments: ``"compiled"``
    reloads full assignments, ``"delta"`` streams Gray-coded single-vertex
    changes through a persistent session, ``"vector"`` sweeps bit-parallel
    lane blocks (same verdicts, less work).  ``"auto"`` (the default) lets
    the planner pick per point from the simulation's enumeration shape."""
    check_bound: bool = True
    seed: int = 0
    shard: Optional[Tuple[int, int]] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "shard", self._normalize_shard(self.shard))

    @property
    def info(self) -> LowerBoundConstruction:
        return get_construction(self.construction)

    def validate(self) -> "LowerBoundSpec":
        info = self.info  # raises RegistryError on unknown constructions
        self._validate_grid()
        if self.simulate_bits < 1:
            raise RegistryError("simulate_bits must be at least 1")
        if self.max_side_bits < 1:
            raise RegistryError("max_side_bits must be at least 1")
        try:
            validate_engine(
                self.engine,
                allowed=("compiled", "delta", "vector", "auto"),
                context="lower-bound specs",
            )
        except ValueError as exc:
            raise RegistryError(str(exc)) from None
        needs_instances = self.check_dichotomy or self.simulate
        if needs_instances and not info.checkable:
            raise RegistryError(
                f"construction {self.construction!r} is closed-form only; "
                "run it with check_dichotomy=False and simulate=False"
            )
        if self.simulate and info.framework is None:
            raise RegistryError(
                f"construction {self.construction!r} has no framework to simulate"
            )
        if needs_instances:
            for n in self.sizes:
                if info.capacity(n) < 1:
                    raise RegistryError(
                        f"construction {self.construction!r} cannot encode a single "
                        f"bit at size {n}; start the grid higher"
                    )
        return self

    def _default_label(self) -> str:
        # Bare construction key: the CLI's default filename already carries
        # the lb_ prefix, and the results table has a kind column.
        return self.construction


@dataclass(frozen=True)
class LowerBoundPoint:
    """The measured outcome of one grid point of a lower-bound search."""

    index: int
    size: int
    """The construction's grid coordinate (ℓ or matching size)."""
    ell: int
    """Bits the injections encode at this size."""
    r: int
    """|V_α ∪ V_β| — certificates the Alice/Bob protocol reads."""
    bound_bits: float
    """The Ω(ℓ/r) bound of Proposition 7.2, in bits."""
    vertices: Optional[int]
    """Vertex count of the built yes-instance (None when not built)."""
    seed: int
    dichotomy_ok: Optional[bool]
    """Property holds on the equal pair and fails on the different pair."""
    protocol_ok: Optional[bool]
    """Alice/Bob simulation accepted the probe and rejected its control."""
    elapsed_s: float
    engine_resolved: Optional[str] = None
    """Concrete engine the protocol simulation ran on (None when the point
    did not simulate)."""

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LowerBoundPoint":
        return cls(**dict(data))


@dataclass(frozen=True)
class LowerBoundResult(ExperimentResult):
    """Everything :func:`run_lower_bound` produces."""

    kind: ClassVar[str] = "lower-bound"

    spec: LowerBoundSpec
    points: Tuple[LowerBoundPoint, ...]
    bound: Optional[BoundCheck] = None
    fit: Optional[FittedBound] = None

    @property
    def series(self) -> Dict[int, float]:
        """The ``size → Ω-bound bits`` series of the search."""
        return {point.size: point.bound_bits for point in self.points}

    @property
    def all_ok(self) -> bool:
        """No dichotomy or protocol check failed (vacuously true if skipped)."""
        return all(
            point.dichotomy_ok is not False and point.protocol_ok is not False
            for point in self.points
        )

    @classmethod
    def merged_from_points(
        cls, spec: LowerBoundSpec, points: Tuple[LowerBoundPoint, ...]
    ) -> "LowerBoundResult":
        result = cls(spec=spec, points=points)
        bound = check_lower_bound_series(spec, result.series) if spec.check_bound else None
        return replace(result, bound=bound, fit=fit_series(result.series))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ARTIFACT_SCHEMA,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
            "points": [point.to_dict() for point in self.points],
            "series": {str(size): bits for size, bits in sorted(self.series.items())},
            "all_ok": self.all_ok,
            "bound": self.bound.to_dict() if self.bound is not None else None,
            "fit": self.fit.to_dict() if self.fit is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LowerBoundResult":
        bound = data.get("bound")
        fit = data.get("fit")
        return cls(
            spec=LowerBoundSpec.from_dict(data["spec"]),
            points=tuple(LowerBoundPoint.from_dict(p) for p in data["points"]),
            bound=BoundCheck.from_dict(bound) if bound is not None else None,
            fit=FittedBound.from_dict(fit) if fit is not None else None,
        )


def check_lower_bound_series(
    spec: LowerBoundSpec, series: Mapping[int, float]
) -> BoundCheck:
    """Check the Ω-bound series against the construction's expected shape.

    Same constant-band test as the sweep-side bound check: the series must
    track the envelope within the registered slack — a lower-bound series
    that flattens out (or blows up) relative to its Ω(f) shape fails.
    """
    return BoundCheck.from_check(*spec.info.bound.check_series(series, {}))


def run_lower_bound_point(spec: LowerBoundSpec, index: int) -> LowerBoundPoint:
    """Run one grid point of a lower-bound search (reproducible in isolation)."""
    info = spec.info
    size = spec.sizes[index]
    point_seed = spec.point_seed(index)
    rng = random.Random(point_seed)
    started = time.perf_counter()

    ell = info.capacity(size)
    r = info.spread(size)
    vertices: Optional[int] = None
    dichotomy_ok: Optional[bool] = None
    protocol_ok: Optional[bool] = None
    engine_resolved: Optional[str] = None

    needs_pairs = spec.check_dichotomy or spec.simulate
    if needs_pairs and info.checkable:
        equal_pair = info.string_pair(size, rng, True)
        different_pair = info.string_pair(size, rng, False)
        if spec.check_dichotomy:
            yes_instance = info.build_instance(size, *equal_pair)
            no_instance = info.build_instance(size, *different_pair)
            vertices = yes_instance.number_of_nodes()
            dichotomy_ok = bool(
                info.has_property(yes_instance) and not info.has_property(no_instance)
            )
        if spec.simulate:
            framework = info.framework(size)
            # The framework graph's vertex set is string-independent (the
            # injections only toggle edges inside the fixed private parts),
            # so one identifier assignment serves both probes.
            graph = framework.build_graph(*equal_pair)
            ids = assign_identifiers(graph, sequential=True)
            # Resolve "auto" once per point from the simulation's shape (the
            # same descriptor simulate_protocol would build internally) and
            # pin both probes to the outcome so the point records exactly
            # the engine that ran.
            present = {v for v in graph.nodes() if graph.degree(v) > 0}
            bits = spec.simulate_bits
            middle = sum(
                1
                for v in list(framework.v_alpha) + list(framework.v_beta)
                if v in present
            )
            side_a = sum(1 for v in framework.v_a if v in present)
            side_b = sum(1 for v in framework.v_b if v in present)
            engine_resolved = resolve_engine(
                spec.engine,
                Workload.enumeration(
                    (1 << (bits * middle))
                    * ((1 << (bits * side_a)) + (1 << (bits * side_b))),
                    len(present),
                    max((d for _, d in graph.degree()), default=0),
                    max_bits=bits,
                ),
                allowed=("compiled", "delta", "vector"),
            )
            try:
                probe_accepted = framework.simulate_protocol(
                    ProtocolProbeScheme(),
                    *equal_pair,
                    certificate_bits_per_vertex=spec.simulate_bits,
                    ids=ids,
                    max_side_bits=spec.max_side_bits,
                    engine=engine_resolved,
                )
                control_rejected = not framework.simulate_protocol(
                    NeverAcceptScheme(),
                    *equal_pair,
                    certificate_bits_per_vertex=spec.simulate_bits,
                    ids=ids,
                    max_side_bits=spec.max_side_bits,
                    engine=engine_resolved,
                )
                protocol_ok = bool(probe_accepted and control_rejected)
            except ValueError:
                # The simulation is doubly exponential by design; grid
                # points beyond max_side_bits are skipped (None), not failed
                # — the bound series and dichotomy still cover them.
                protocol_ok = None
                engine_resolved = None

    return LowerBoundPoint(
        index=index,
        size=size,
        ell=ell,
        r=r,
        bound_bits=float(info.bound_bits(size)),
        vertices=vertices,
        seed=point_seed,
        dichotomy_ok=dichotomy_ok,
        protocol_ok=protocol_ok,
        elapsed_s=time.perf_counter() - started,
        engine_resolved=engine_resolved,
    )


def run_lower_bound(
    spec: LowerBoundSpec,
    shard: Optional[Tuple[int, int]] = None,
    should_stop: Optional[Callable[[], Optional[str]]] = None,
    on_point: Optional[Callable[[LowerBoundPoint], None]] = None,
) -> LowerBoundResult:
    """Execute a lower-bound search (or one shard of it).

    ``shard`` overrides ``spec.shard``; the returned result's spec records
    the shard actually run, so partial artifacts are self-describing and
    :func:`~repro.experiments.artifacts.merge_artifacts` can stitch them.

    ``should_stop`` is the same cooperative stop-check as
    :func:`~repro.experiments.runner.run_sweep`'s, polled between grid
    points; it raises :class:`~repro.experiments.spec.ExperimentCancelled`.
    """
    if shard is not None:
        spec = replace(spec, shard=shard)
    spec.validate()
    points = []
    for index in spec.shard_indices():
        raise_if_stopped(should_stop)
        points.append(run_lower_bound_point(spec, index))
        if on_point is not None:
            on_point(points[-1])
    return LowerBoundResult.merged_from_points(spec, tuple(points))
