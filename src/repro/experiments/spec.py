"""The declarative description of one certificate-size sweep."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.scheme import derive_trial_seed
from repro.graphs.generators import GRAPH_FAMILIES
from repro.registry import REGISTRY, RegistryError, SchemeInfo

_ENGINES = ("compiled", "legacy")
_MEASURES = ("full", "size")

#: Parameter values of this form are substituted per grid point: ``"$n"``
#: becomes the point's size, so e.g. ``spanning-tree-count`` can certify
#: "exactly n vertices" across a whole grid with one spec.
SIZE_TEMPLATE = "$n"


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: a scheme, a graph-family grid, and how to run it.

    ``sizes`` is the grid of family sizes (one instance per entry; repeats
    are allowed — each grid point draws its own derived seed, so repeated
    sizes give independent trials of a random family).  ``params`` values
    may be the literal string ``"$n"``, replaced by the point's size before
    validation against the registry's parameter spec.

    ``measure`` selects what each point runs: ``"full"`` (default) is the
    complete harness — honest proof plus distributed verification on
    yes-instances, scheduled adversarial trials on no-instances — while
    ``"size"`` only runs the honest prover and measures certificate bits
    (the paper's size series; usable on instances too large for the exact
    ``holds`` decision procedures, since a point counts as a yes-instance
    exactly when the prover succeeds).
    """

    scheme: str
    family: str
    sizes: Tuple[int, ...]
    params: Mapping[str, Any] = field(default_factory=dict)
    trials: int = 20
    seed: int = 0
    engine: str = "compiled"
    processes: int = 1
    check_bound: bool = True
    measure: str = "full"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "params", dict(self.params))

    # -- validation ---------------------------------------------------------

    @property
    def info(self) -> SchemeInfo:
        return REGISTRY.get(self.scheme)

    def validate(self) -> "SweepSpec":
        """Check the whole spec against the registry; returns self."""
        info = self.info  # raises RegistryError on unknown schemes
        if self.family not in GRAPH_FAMILIES:
            raise RegistryError(
                f"unknown graph family {self.family!r}; choose from {sorted(GRAPH_FAMILIES)}"
            )
        if not self.sizes:
            raise RegistryError("a sweep needs at least one size")
        if any(n <= 0 for n in self.sizes):
            raise RegistryError(f"sizes must be positive, got {self.sizes}")
        if self.trials < 0:
            raise RegistryError("trials must be non-negative")
        if self.engine not in _ENGINES:
            raise RegistryError(f"unknown engine {self.engine!r}; use one of {_ENGINES}")
        if self.measure not in _MEASURES:
            raise RegistryError(f"unknown measure {self.measure!r}; use one of {_MEASURES}")
        if self.processes < 1:
            raise RegistryError("processes must be at least 1")
        for n in self.sizes:
            info.resolve_params(self._substituted(n))  # raises on bad params
        return self

    # -- per-point derivation ----------------------------------------------

    def _substituted(self, n: int) -> Dict[str, Any]:
        return {
            key: (n if value == SIZE_TEMPLATE else value)
            for key, value in self.params.items()
        }

    def resolved_params(self, n: int) -> Dict[str, Any]:
        """The validated, typed scheme parameters of the point at size ``n``."""
        return self.info.resolve_params(self._substituted(n))

    def point_seed(self, index: int) -> int:
        """An independent seed for grid point ``index``.

        Derived arithmetically from the sweep seed (same mixing as the
        per-trial adversarial seeds), so any sub-range of the grid — a
        shard, a resumed run — reproduces the full run's instances without
        executing the preceding points.
        """
        return derive_trial_seed(self.seed, index)

    def graph_spec(self, index: int) -> str:
        return f"{self.family}:{self.sizes[index]}"

    def shard(self, indices: Sequence[int]) -> "SweepSpec":
        """The sub-sweep covering only the given grid points.

        Note the shard's points keep their own *local* indices; use
        :func:`repro.experiments.runner.run_point` with the original spec to
        reproduce a single point of the full grid bit-for-bit.
        """
        return replace(self, sizes=tuple(self.sizes[i] for i in indices))

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "family": self.family,
            "sizes": list(self.sizes),
            "params": dict(self.params),
            "trials": self.trials,
            "seed": self.seed,
            "engine": self.engine,
            "processes": self.processes,
            "check_bound": self.check_bound,
            "measure": self.measure,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise RegistryError(f"unknown SweepSpec field(s) {unknown}")
        if "scheme" not in data or "family" not in data or "sizes" not in data:
            raise RegistryError("a SweepSpec needs at least scheme, family and sizes")
        return cls(**dict(data))

    @property
    def label(self) -> str:
        return self.name or f"{self.scheme}-{self.family}"
