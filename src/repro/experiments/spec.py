"""Declarative experiment descriptions: the spec layer of the pipeline.

An *experiment* is a reproducible measurement over a grid of sizes.  Every
kind of experiment shares the same backbone — a ``sizes`` grid, a sweep
``seed`` from which every grid point derives an independent per-point seed,
an optional ``shard`` selecting a subset of the grid, and a JSON
round-trippable description — and :class:`ExperimentSpec` is that backbone.
Concrete kinds register themselves under a ``kind`` string so artifacts can
be re-hydrated without knowing in advance what they hold:

* :class:`SweepSpec` (``kind="sweep"``) — a certificate-size sweep of one
  registered scheme over one graph family (the upper-bound series);
* :class:`~repro.experiments.lower_bound.LowerBoundSpec`
  (``kind="lower-bound"``) — a Section 7.1 reduction-framework search (the
  matching Ω(·) series);
* :class:`~repro.experiments.radius.RadiusSpec` (``kind="radius"``) — a
  radius-r verification series (the Appendix A.1 radius ablation).

Sharding: ``shard=(i, k)`` restricts execution to grid points
``i, i+k, i+2k, ...`` *without* changing their global indices or derived
seeds, so ``k`` machines each running one shard produce partial artifacts
that :func:`repro.experiments.artifacts.merge_artifacts` stitches into the
exact artifact of the unsharded run (modulo wall-clock timings).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, ClassVar, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.scheme import derive_trial_seed
from repro.engines import validate_engine
from repro.graphs.generators import GRAPH_FAMILIES
from repro.registry import REGISTRY, RegistryError, SchemeInfo

_MEASURES = ("full", "size")

#: Parameter values of this form are substituted per grid point: ``"$n"``
#: becomes the point's size, so e.g. ``spanning-tree-count`` can certify
#: "exactly n vertices" across a whole grid with one spec.
SIZE_TEMPLATE = "$n"


class ExperimentCancelled(RuntimeError):
    """A cooperative stop-check interrupted an experiment run.

    ``reason`` is machine-readable — ``"cancelled"`` or ``"timeout"`` — and
    maps one-to-one onto the service's wire error codes, so a cancelled
    sweep surfaces as structured data, not a traceback.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


def raise_if_stopped(should_stop: Optional[Any]) -> None:
    """Run a cooperative stop-check between units of experiment work.

    ``should_stop`` is a zero-argument callable returning a stop *reason*
    (a string) when the run should abort, or a falsy value to continue —
    the contract of :meth:`repro.service.core.CancelScope.check`.  A bare
    ``True`` is accepted and normalised to ``"cancelled"``.
    """
    if should_stop is None:
        return
    reason = should_stop()
    if reason:
        raise ExperimentCancelled(reason if isinstance(reason, str) else "cancelled")


class ExperimentSpec:
    """Shared backbone of all experiment kinds (grid, seeds, shard, JSON).

    Subclasses are frozen dataclasses that set a class-level ``kind`` string
    and a ``_REQUIRED`` tuple of field names; everything else — per-point
    seed derivation, shard index arithmetic, ``to_dict``/``from_dict`` with
    kind dispatch — is inherited.  Each subclass must declare at least the
    fields ``sizes``, ``seed``, ``shard`` and ``name``.
    """

    kind: ClassVar[str] = ""
    _REQUIRED: ClassVar[Tuple[str, ...]] = ()
    _KINDS: ClassVar[Dict[str, type]] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        kind = cls.__dict__.get("kind", "")
        if kind:
            existing = ExperimentSpec._KINDS.get(kind)
            if existing is not None and existing is not cls:
                raise RegistryError(f"experiment kind {kind!r} is already registered")
            ExperimentSpec._KINDS[kind] = cls

    # -- per-point derivation ----------------------------------------------

    def point_seed(self, index: int) -> int:
        """An independent seed for grid point ``index``.

        Derived arithmetically from the experiment seed (same mixing as the
        per-trial adversarial seeds), so any sub-range of the grid — a
        shard, a resumed run — reproduces the full run's instances without
        executing the preceding points.
        """
        return derive_trial_seed(self.seed, index)

    # -- sharding -----------------------------------------------------------

    def shard_indices(self) -> Tuple[int, ...]:
        """The *global* grid indices this spec executes.

        Without a shard that is the whole grid; shard ``(i, k)`` selects the
        strided subset ``i, i+k, i+2k, ...`` (striding balances work across
        shards when the grid is sorted by size).  Indices stay global so
        per-point seeds are identical to the unsharded run's.

        The *offset* form with ``i >= k`` is deliberately legal: splitting
        the remainder of shard ``(s, d)`` after ``m`` completed points into
        ``p`` pieces yields the shards ``(s + (m + j)*d, d*p)`` for
        ``j < p`` — each again a plain ``(i, k)`` pair, so sub-shards ride
        the same wire shape and merge rules as first-class shards.
        """
        total = len(self.sizes)
        if self.shard is None:
            return tuple(range(total))
        index, count = self.shard
        return tuple(range(index, total, count))

    def unsharded(self) -> "ExperimentSpec":
        """The same experiment with the shard restriction removed."""
        return replace(self, shard=None) if self.shard is not None else self

    def _validate_grid(self) -> None:
        if not self.sizes:
            raise RegistryError("an experiment needs at least one size")
        if any(n <= 0 for n in self.sizes):
            raise RegistryError(f"sizes must be positive, got {self.sizes}")
        if self.shard is not None:
            index, count = self.shard
            if count < 1 or index < 0:
                raise RegistryError(
                    f"shard must be (i, k) with i >= 0 and k >= 1, got {self.shard}"
                )

    @staticmethod
    def _normalize_shard(shard: Any) -> Optional[Tuple[int, int]]:
        if shard is None:
            return None
        index, count = shard
        return (int(index), int(count))

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, Mapping):
                value = dict(value)
            data[spec_field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Re-hydrate a spec; on the base class, dispatch by ``kind``.

        Dicts without a ``kind`` entry (schema-1 artifacts) default to
        ``"sweep"``.
        """
        payload = dict(data)
        kind = payload.pop("kind", None)
        if cls is ExperimentSpec:
            target = cls._KINDS.get(kind or "sweep")
            if target is None:
                raise RegistryError(
                    f"unknown experiment kind {kind!r}; known kinds: {sorted(cls._KINDS)}"
                )
            return target.from_dict({**payload, "kind": target.kind})
        if kind is not None and kind != cls.kind:
            raise RegistryError(f"expected a {cls.kind!r} spec, got kind {kind!r}")
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise RegistryError(f"unknown {cls.__name__} field(s) {unknown}")
        missing = sorted(name for name in cls._REQUIRED if name not in payload)
        if missing:
            raise RegistryError(
                f"a {cls.__name__} needs at least {', '.join(cls._REQUIRED)}"
            )
        return cls(**payload)

    @property
    def label(self) -> str:
        return self.name or self._default_label()

    def _default_label(self) -> str:  # pragma: no cover - subclasses override
        return self.kind


@dataclass(frozen=True)
class SweepSpec(ExperimentSpec):
    """One sweep: a scheme, a graph-family grid, and how to run it.

    ``sizes`` is the grid of family sizes (one instance per entry; repeats
    are allowed — each grid point draws its own derived seed, so repeated
    sizes give independent trials of a random family).  ``params`` values
    may be the literal string ``"$n"``, replaced by the point's size before
    validation against the registry's parameter spec.

    ``measure`` selects what each point runs: ``"full"`` (default) is the
    complete harness — honest proof plus distributed verification on
    yes-instances, scheduled adversarial trials on no-instances — while
    ``"size"`` only runs the honest prover and measures certificate bits
    (the paper's size series; usable on instances too large for the exact
    ``holds`` decision procedures, since a point counts as a yes-instance
    exactly when the prover succeeds).

    ``id_exponent`` overrides the identifier range ``[1, n^exponent]`` the
    evaluation draws from (the paper's default is 3) — the knob of the E15
    identifier ablation.  ``shard`` restricts execution to a strided subset
    of the grid (see :meth:`ExperimentSpec.shard_indices`).
    """

    kind: ClassVar[str] = "sweep"
    _REQUIRED: ClassVar[Tuple[str, ...]] = ("scheme", "family", "sizes")

    scheme: str
    family: str
    sizes: Tuple[int, ...]
    params: Mapping[str, Any] = field(default_factory=dict)
    trials: int = 20
    seed: int = 0
    engine: str = "auto"
    processes: int = 1
    check_bound: bool = True
    measure: str = "full"
    id_exponent: Optional[int] = None
    shard: Optional[Tuple[int, int]] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "shard", self._normalize_shard(self.shard))

    # -- validation ---------------------------------------------------------

    @property
    def info(self) -> SchemeInfo:
        return REGISTRY.get(self.scheme)

    def validate(self) -> "SweepSpec":
        """Check the whole spec against the registry; returns self."""
        info = self.info  # raises RegistryError on unknown schemes
        if self.family not in GRAPH_FAMILIES:
            raise RegistryError(
                f"unknown graph family {self.family!r}; choose from {sorted(GRAPH_FAMILIES)}"
            )
        self._validate_grid()
        if self.trials < 0:
            raise RegistryError("trials must be non-negative")
        try:
            validate_engine(self.engine, context="sweep specs")
        except ValueError as exc:
            raise RegistryError(str(exc)) from None
        if self.measure not in _MEASURES:
            raise RegistryError(f"unknown measure {self.measure!r}; use one of {_MEASURES}")
        if self.processes < 1:
            raise RegistryError("processes must be at least 1")
        if self.id_exponent is not None and self.id_exponent < 1:
            raise RegistryError("id_exponent must be at least 1")
        for n in self.sizes:
            info.resolve_params(self._substituted(n))  # raises on bad params
        return self

    # -- per-point derivation ----------------------------------------------

    def _substituted(self, n: int) -> Dict[str, Any]:
        return {
            key: (n if value == SIZE_TEMPLATE else value)
            for key, value in self.params.items()
        }

    def resolved_params(self, n: int) -> Dict[str, Any]:
        """The validated, typed scheme parameters of the point at size ``n``."""
        return self.info.resolve_params(self._substituted(n))

    def graph_spec(self, index: int) -> str:
        return f"{self.family}:{self.sizes[index]}"

    def subset(self, indices: Sequence[int]) -> "SweepSpec":
        """The sub-sweep covering only the given grid points.

        Note the subset's points get new *local* indices; to reproduce a
        single point of the full grid bit-for-bit use
        :func:`repro.experiments.runner.run_point` with the original spec,
        or a ``shard`` (which keeps global indices).
        """
        return replace(self, sizes=tuple(self.sizes[i] for i in indices), shard=None)

    def _default_label(self) -> str:
        return f"{self.scheme}-{self.family}"
