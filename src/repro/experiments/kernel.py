"""Declarative kernel-size series (Propositions 6.2 / 6.3).

Section 6 replaces a bounded-treedepth graph by its *k-reduced* kernel —
prune, at the deepest possible vertex, children beyond the ``k``-th of any
one type — and proves the kernel (a) has size bounded by a function of
``(k, t)`` alone and (b) satisfies the same rank-``k`` MSO sentences as the
original graph.  A :class:`KernelSpec` captures one such measurement
declaratively: a graph family, a size grid and a pruning parameter ``k``;
every point builds the instance, computes a coherent elimination-tree model,
runs :func:`repro.kernel.reduction.k_reduced_graph` and records the kernel
size (the series the Proposition 6.2 saturation claim is about), plus

* a **validity check**: the kernel's restricted elimination tree is still a
  valid model of the kernel graph (``ok`` fails otherwise);
* an optional **EF-game check** (``check_ef > 0``): verify
  ``G ≃_k kernel`` by playing the rank-``check_ef`` Ehrenfeucht–Fraïssé
  game on instances small enough to afford it — the Proposition 6.3 claim.

Like sweeps, kernel runs shard (``shard=(i, j)`` with global indices and
seeds) and write the same artifact envelope, so ``merge_artifacts``, the
``results`` aggregation and the benchmark regression gate treat the kernel
series exactly like a certificate-size series: a kernel that *grows*
relative to its recorded baseline is a regression.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

import networkx as nx

from repro.engines import validate_engine
from repro.experiments.artifacts import ARTIFACT_SCHEMA, BoundCheck, ExperimentResult
from repro.experiments.bounds import FittedBound, fit_series
from repro.experiments.spec import ExperimentSpec
from repro.graphs.generators import GRAPH_FAMILIES, build_graph_spec
from repro.kernel.reduction import k_reduced_graph
from repro.logic.ef_games import ef_equivalent
from repro.registry import RegistryError
from repro.treedepth.decomposition import (
    optimal_elimination_tree,
    star_elimination_tree,
    treedepth_upper_bound_dfs,
)
from repro.treedepth.elimination_tree import is_valid_model, make_coherent

#: How the per-point elimination-tree model is chosen: ``"coherent"`` runs
#: the generic pipeline (exact tree up to 16 vertices, DFS upper bound
#: beyond, then :func:`make_coherent`); ``"star"`` uses the closed-form
#: depth-2 star model (star family only — it matches the E17 ablation).
KERNEL_MODELS = ("coherent", "star")

#: EF-game checks are exponential in the instance; points larger than this
#: are skipped (``ef_ok=None``), not failed.
MAX_EF_VERTICES = 11


def coherent_model(graph: nx.Graph):
    """The generic elimination-tree model of the kernel experiments.

    Exact (minimum-depth) trees are affordable up to 16 vertices; beyond
    that the DFS upper bound stands in.  Either way the tree is made
    coherent first — the valid-pruning process is defined on coherent
    models (Section 6.1).
    """
    if graph.number_of_nodes() <= 16:
        base = optimal_elimination_tree(graph)
    else:
        _, base = treedepth_upper_bound_dfs(graph)
    return make_coherent(graph, base)


@dataclass(frozen=True)
class KernelSpec(ExperimentSpec):
    """One declarative kernel-size series over a graph-family grid.

    ``check_ef`` is the Ehrenfeucht–Fraïssé rank to verify (0 skips the
    check); it is independent of the pruning parameter ``k`` so a spec can
    e.g. prune with ``k=3`` but only afford the rank-2 game.
    """

    kind: ClassVar[str] = "kernel"
    _REQUIRED: ClassVar[Tuple[str, ...]] = ("family", "sizes")

    family: str
    sizes: Tuple[int, ...]
    k: int = 3
    model: str = "coherent"
    check_ef: int = 0
    seed: int = 0
    engine: str = "auto"
    """Reserved routing knob for spec/CLI uniformity: kernel points measure
    pruning and EF games, which no verification engine runs — validated so a
    mis-typed engine fails like everywhere else, but otherwise unused."""
    shard: Optional[Tuple[int, int]] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "shard", self._normalize_shard(self.shard))

    def validate(self) -> "KernelSpec":
        if self.family not in GRAPH_FAMILIES:
            raise RegistryError(
                f"unknown graph family {self.family!r}; choose from {sorted(GRAPH_FAMILIES)}"
            )
        self._validate_grid()
        if self.k < 1:
            raise RegistryError("the pruning parameter k must be at least 1")
        if self.model not in KERNEL_MODELS:
            raise RegistryError(
                f"unknown kernel model {self.model!r}; choose from {KERNEL_MODELS}"
            )
        if self.model == "star" and self.family != "star":
            raise RegistryError("the star model only applies to the star family")
        if self.check_ef < 0:
            raise RegistryError("check_ef must be non-negative (0 = skip)")
        try:
            validate_engine(self.engine, context="kernel specs")
        except ValueError as exc:
            raise RegistryError(str(exc)) from None
        return self

    def graph_spec(self, index: int) -> str:
        return f"{self.family}:{self.sizes[index]}"

    def _default_label(self) -> str:
        return f"kernel-k{self.k}-{self.family}"


@dataclass(frozen=True)
class KernelPoint:
    """The outcome of one kernelization instance."""

    index: int
    size: int
    graph: str
    vertices: int
    depth: int
    """Depth of the elimination-tree model the pruning ran against."""
    kernel_size: int
    pruned: int
    """Vertices removed by the valid-pruning process (= vertices - kernel_size)."""
    seed: int
    valid_model: bool
    """The kernel's restricted tree is still a valid model of the kernel graph."""
    ef_ok: Optional[bool]
    """``G ≃_k kernel`` at rank ``check_ef`` (None when skipped or too large)."""
    ok: bool
    """No enabled check failed on this point."""
    elapsed_s: float

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "KernelPoint":
        return cls(**dict(data))


@dataclass(frozen=True)
class KernelResult(ExperimentResult):
    """Everything :func:`run_kernel` produces."""

    kind: ClassVar[str] = "kernel"

    spec: KernelSpec
    points: Tuple[KernelPoint, ...]
    bound: Optional[BoundCheck] = None
    fit: Optional[FittedBound] = None

    @property
    def series(self) -> Dict[int, int]:
        """``size → kernel size`` — the Proposition 6.2 saturation series."""
        return {point.size: point.kernel_size for point in self.points}

    @property
    def all_ok(self) -> bool:
        return all(point.ok for point in self.points)

    @classmethod
    def merged_from_points(
        cls, spec: KernelSpec, points: Tuple[KernelPoint, ...]
    ) -> "KernelResult":
        result = cls(spec=spec, points=points)
        return replace(result, fit=fit_series(result.series))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ARTIFACT_SCHEMA,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
            "points": [point.to_dict() for point in self.points],
            "series": {str(size): ks for size, ks in sorted(self.series.items())},
            "all_ok": self.all_ok,
            "bound": None,
            "fit": self.fit.to_dict() if self.fit is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "KernelResult":
        fit = data.get("fit")
        return cls(
            spec=KernelSpec.from_dict(data["spec"]),
            points=tuple(KernelPoint.from_dict(p) for p in data["points"]),
            fit=FittedBound.from_dict(fit) if fit is not None else None,
        )


def run_kernel_point(spec: KernelSpec, index: int) -> KernelPoint:
    """Run one kernelization instance (reproducible in isolation)."""
    size = spec.sizes[index]
    point_seed = spec.point_seed(index)
    graph_spec = spec.graph_spec(index)
    graph = build_graph_spec(graph_spec, seed=point_seed)
    started = time.perf_counter()
    if spec.model == "star":
        tree = star_elimination_tree(graph)
    else:
        tree = coherent_model(graph)
    reduction = k_reduced_graph(graph, tree, spec.k)
    valid = is_valid_model(reduction.kernel_graph, reduction.kernel_tree)
    ef_ok: Optional[bool] = None
    if spec.check_ef > 0 and graph.number_of_nodes() <= MAX_EF_VERTICES:
        ef_ok = bool(ef_equivalent(graph, reduction.kernel_graph, spec.check_ef))
    return KernelPoint(
        index=index,
        size=size,
        graph=graph_spec,
        vertices=graph.number_of_nodes(),
        depth=tree.depth,
        kernel_size=reduction.kernel_size,
        pruned=len(reduction.deleted_vertices),
        seed=point_seed,
        valid_model=valid,
        ef_ok=ef_ok,
        ok=bool(valid and ef_ok is not False),
        elapsed_s=time.perf_counter() - started,
    )


def run_kernel(spec: KernelSpec, shard: Optional[Tuple[int, int]] = None) -> KernelResult:
    """Execute a kernel-size series (or one shard of it)."""
    if shard is not None:
        spec = replace(spec, shard=shard)
    spec.validate()
    points = tuple(run_kernel_point(spec, index) for index in spec.shard_indices())
    return KernelResult.merged_from_points(spec, points)
