"""Fitted size bounds: regression exponents folded into artifacts.

The registry's :class:`~repro.registry.SizeBound` envelopes give a
closed-form *verdict* — is the measured series inside a constant-factor band
of the claimed O(f(n))?  This module adds the complementary *measurement*: a
least-squares fit of the series' growth, recorded next to the verdict in
every artifact so a reader (or the regression gate) can see not only that a
series respects O(t log n) but what exponent it actually exhibits.

Two models are fitted, both in closed form (no numpy dependency):

* the power law ``bits ≈ c · n^a`` — ``a`` is the slope of the least-squares
  line through ``(log2 n, log2 bits)``; an O(log n) series fits with a → 0,
  an O(n) series with a → 1, the universal scheme's O(n²) with a → 2;
* the poly-log law ``bits ≈ c · (log2 n)^b`` — ``b`` is the slope through
  ``(log2 log2 n, log2 bits)`` and separates constant (b → 0) from
  logarithmic (b → 1) from log² (b → 2) growth, which the power-law exponent
  alone cannot distinguish.

The classification is deliberately coarse (the grids are small); it is a
reading aid, not a statistical claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: A fit needs at least this many distinct sizes to say anything about shape.
MIN_FIT_POINTS = 3

#: Power-law exponents below this are reported as sub-polynomial.
SUBPOLYNOMIAL_EXPONENT = 0.25


def _least_squares(xs: List[float], ys: List[float]) -> Tuple[float, float, float]:
    """Slope, intercept and R² of the least-squares line through (xs, ys)."""
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    syy = sum((y - mean_y) ** 2 for y in ys)
    if sxx == 0.0:
        return 0.0, mean_y, 1.0
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    residual = sum((y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys))
    r_squared = 1.0 if syy == 0.0 else max(0.0, 1.0 - residual / syy)
    return slope, intercept, r_squared


@dataclass(frozen=True)
class FittedBound:
    """The measured growth of a size series, as regression exponents.

    ``exponent`` is the fitted power-law exponent ``a`` of ``bits ≈ c·n^a``
    with ``r_squared`` its fit quality; ``log_exponent`` is the poly-log
    exponent ``b`` of ``bits ≈ c·(log2 n)^b``.  ``label`` is the human
    reading of the pair (``"~n^1.02"``, ``"~log^1.0 n"``, ``"~constant"``).
    """

    exponent: float
    r_squared: float
    log_exponent: Optional[float]
    points: int
    label: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "exponent": self.exponent,
            "r_squared": self.r_squared,
            "log_exponent": self.log_exponent,
            "points": self.points,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FittedBound":
        return cls(
            exponent=float(data["exponent"]),
            r_squared=float(data["r_squared"]),
            log_exponent=None if data.get("log_exponent") is None else float(data["log_exponent"]),
            points=int(data["points"]),
            label=str(data["label"]),
        )


def _classify(exponent: float, log_exponent: Optional[float]) -> str:
    if exponent >= SUBPOLYNOMIAL_EXPONENT:
        return f"~n^{exponent:.2f}"
    if log_exponent is None:
        return f"~n^{exponent:.2f}"
    if log_exponent < 0.5:
        return "~constant"
    return f"~log^{log_exponent:.1f} n"


def fit_series(series: Mapping[int, float]) -> Optional[FittedBound]:
    """Fit the growth of an ``n → bits`` series; None when too small to fit.

    Points with non-positive size or measurement are dropped (a no-instance's
    0-bit entry carries no shape information); at least
    :data:`MIN_FIT_POINTS` distinct sizes must remain.
    """
    cleaned = sorted(
        (int(n), float(bits))
        for n, bits in series.items()
        if int(n) > 1 and float(bits) > 0.0
    )
    if len(cleaned) < MIN_FIT_POINTS:
        return None
    log_n = [math.log2(n) for n, _ in cleaned]
    log_bits = [math.log2(bits) for _, bits in cleaned]
    exponent, _, r_squared = _least_squares(log_n, log_bits)

    # The poly-log fit only resolves when log2(log2 n) actually varies.
    log_log_n = [math.log2(math.log2(n)) for n, _ in cleaned if math.log2(n) > 1.0]
    log_bits_ll = [
        math.log2(bits) for n, bits in cleaned if math.log2(n) > 1.0
    ]
    log_exponent: Optional[float] = None
    if len(log_log_n) >= MIN_FIT_POINTS and max(log_log_n) - min(log_log_n) > 1e-6:
        log_exponent, _, _ = _least_squares(log_log_n, log_bits_ll)

    return FittedBound(
        exponent=exponent,
        r_squared=r_squared,
        log_exponent=log_exponent,
        points=len(cleaned),
        label=_classify(exponent, log_exponent),
    )
