"""Declarative certificate-size series for ad-hoc MSO formulas.

The catalogue's sweep kind measures *registered* schemes; this kind measures
an **ephemeral** scheme compiled on the fly from a client-supplied MSO
formula (:mod:`repro.formulas`) — the operational form of the paper's
Theorem 2.6 meta-theorem.  A :class:`FormulaSpec` carries the formula text
plus its compilation knobs (treedepth bound ``t``, quantifier-rank hint
``k``, compilation ``route``, elimination-tree ``model``); every grid point
builds the family instance, compiles the formula (one cache miss per
process, hits afterwards) and runs the full evaluation harness —
planner-routed across all four engines like any catalogue sweep.

Like every experiment kind, formula runs shard (``shard=(i, j)`` with
global indices and seeds) and write the same artifact envelope, so
``merge_artifacts``, the ``results`` aggregation and the benchmark
regression gate treat a formula series exactly like a catalogue
certificate-size series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, ClassVar, Dict, Mapping, Optional, Tuple

from repro.core.scheme import evaluate_scheme
from repro.engines import validate_engine
from repro.experiments.artifacts import ARTIFACT_SCHEMA, BoundCheck, ExperimentResult
from repro.experiments.bounds import FittedBound, fit_series
from repro.experiments.spec import ExperimentSpec, raise_if_stopped
from repro.formulas import CompiledFormula, compile_formula
from repro.graphs.generators import GRAPH_FAMILIES, build_graph_spec
from repro.registry import RegistryError


@dataclass(frozen=True)
class FormulaSpec(ExperimentSpec):
    """One declarative certificate-size series for one ad-hoc formula.

    ``t``/``k``/``route``/``model`` are the compilation knobs of
    :func:`repro.formulas.compile_formula`; everything else matches
    :class:`~repro.experiments.spec.SweepSpec` (grid, derived seeds, engine
    routing, sharding).  ``validate`` compiles the formula, so a bad formula
    fails before any grid point runs — as a
    :class:`~repro.formulas.FormulaError`, which the service maps onto the
    ``invalid-formula`` wire code.
    """

    kind: ClassVar[str] = "formula"
    _REQUIRED: ClassVar[Tuple[str, ...]] = ("formula", "family", "sizes")

    formula: str
    family: str
    sizes: Tuple[int, ...]
    t: int = 2
    k: Optional[int] = None
    route: str = "treedepth"
    model: str = "auto"
    trials: int = 20
    seed: int = 0
    engine: str = "auto"
    check_bound: bool = True
    shard: Optional[Tuple[int, int]] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "shard", self._normalize_shard(self.shard))

    def compiled(self) -> CompiledFormula:
        """Compile (or fetch from the cache) this spec's formula."""
        return compile_formula(
            self.formula, t=self.t, route=self.route, k=self.k, model=self.model
        )

    def validate(self) -> "FormulaSpec":
        """Check the grid and compile the formula; returns self.

        Formula problems raise :class:`~repro.formulas.FormulaError`;
        everything else raises :class:`~repro.registry.RegistryError`, like
        every other spec kind.
        """
        if self.family not in GRAPH_FAMILIES:
            raise RegistryError(
                f"unknown graph family {self.family!r}; choose from {sorted(GRAPH_FAMILIES)}"
            )
        self._validate_grid()
        if self.trials < 0:
            raise RegistryError("trials must be non-negative")
        try:
            validate_engine(self.engine, context="formula specs")
        except ValueError as exc:
            raise RegistryError(str(exc)) from None
        self.compiled()  # FormulaError on parse/compile problems
        return self

    def graph_spec(self, index: int) -> str:
        return f"{self.family}:{self.sizes[index]}"

    def _default_label(self) -> str:
        return f"formula-{self.route}-{self.family}"


@dataclass(frozen=True)
class FormulaPoint:
    """The measured outcome of one grid point of a formula series.

    Field-for-field the shape of :class:`~repro.experiments.artifacts.
    SweepPoint`, so formula artifacts read like sweep artifacts.
    """

    index: int
    n: int
    graph: str
    vertices: int
    edges: int
    seed: int
    holds: bool
    completeness_ok: Optional[bool]
    soundness_ok: Optional[bool]
    max_certificate_bits: int
    elapsed_s: float
    engine_resolved: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FormulaPoint":
        return cls(**dict(data))


@dataclass(frozen=True)
class FormulaResult(ExperimentResult):
    """Everything :func:`run_formula` produces."""

    kind: ClassVar[str] = "formula"

    spec: FormulaSpec
    points: Tuple[FormulaPoint, ...]
    bound: Optional[BoundCheck] = None
    fit: Optional[FittedBound] = None

    @property
    def series(self) -> Dict[int, int]:
        """Measured honest-certificate bits per size, yes-instances only."""
        series: Dict[int, int] = {}
        for point in self.points:
            if point.holds:
                series[point.n] = max(series.get(point.n, 0), point.max_certificate_bits)
        return series

    @property
    def all_accepted(self) -> bool:
        """No yes-instance's honest proof was rejected."""
        return all(point.completeness_ok is not False for point in self.points if point.holds)

    @property
    def all_sound(self) -> bool:
        """No no-instance's sampled adversarial assignment was accepted."""
        return all(point.soundness_ok is not False for point in self.points if not point.holds)

    @property
    def all_ok(self) -> bool:
        return self.all_accepted and self.all_sound

    @classmethod
    def merged_from_points(
        cls, spec: FormulaSpec, points: Tuple[FormulaPoint, ...]
    ) -> "FormulaResult":
        result = cls(spec=spec, points=points)
        bound: Optional[BoundCheck] = None
        if spec.check_bound:
            compiled = spec.compiled()
            ok, detail = compiled.bound.check_series(
                result.series, {"t": spec.t, "k": compiled.k}
            )
            bound = BoundCheck.from_check(ok, detail)
        return replace(result, bound=bound, fit=fit_series(result.series))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ARTIFACT_SCHEMA,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
            "points": [point.to_dict() for point in self.points],
            "series": {str(n): bits for n, bits in sorted(self.series.items())},
            "all_accepted": self.all_accepted,
            "all_sound": self.all_sound,
            "bound": self.bound.to_dict() if self.bound is not None else None,
            "fit": self.fit.to_dict() if self.fit is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FormulaResult":
        bound = data.get("bound")
        fit = data.get("fit")
        return cls(
            spec=FormulaSpec.from_dict(data["spec"]),
            points=tuple(FormulaPoint.from_dict(p) for p in data["points"]),
            bound=BoundCheck.from_dict(bound) if bound is not None else None,
            fit=FittedBound.from_dict(fit) if fit is not None else None,
        )


def run_formula_point(spec: FormulaSpec, index: int) -> FormulaPoint:
    """Run one grid point of a formula series (reproducible in isolation)."""
    size = spec.sizes[index]
    point_seed = spec.point_seed(index)
    graph_spec = spec.graph_spec(index)
    graph = build_graph_spec(graph_spec, seed=point_seed)
    compiled = spec.compiled()
    started = time.perf_counter()
    evaluation = evaluate_scheme(
        compiled.scheme,
        graph,
        seed=point_seed,
        adversarial_trials=spec.trials,
        engine=spec.engine,
    )
    return FormulaPoint(
        index=index,
        n=size,
        graph=graph_spec,
        vertices=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        seed=point_seed,
        holds=evaluation.holds,
        completeness_ok=evaluation.completeness_ok,
        soundness_ok=evaluation.soundness_ok,
        max_certificate_bits=evaluation.max_certificate_bits,
        elapsed_s=time.perf_counter() - started,
        engine_resolved=evaluation.engine_resolved,
    )


def run_formula(
    spec: FormulaSpec,
    shard: Optional[Tuple[int, int]] = None,
    should_stop: Optional[Callable[[], Any]] = None,
    on_point: Optional[Callable[[FormulaPoint], None]] = None,
) -> FormulaResult:
    """Execute a formula certificate-size series (or one shard of it).

    ``should_stop`` is the cooperative stop-check of
    :func:`repro.experiments.spec.raise_if_stopped`, consulted between grid
    points so service deadlines and cancels interrupt long series.
    """
    if shard is not None:
        spec = replace(spec, shard=shard)
    spec.validate()
    points = []
    for index in spec.shard_indices():
        raise_if_stopped(should_stop)
        points.append(run_formula_point(spec, index))
        if on_point is not None:
            on_point(points[-1])
    return FormulaResult.merged_from_points(spec, tuple(points))
