"""Command-line interface: certify properties of a graph from the shell.

Every scheme known to the :mod:`repro.registry` catalogue is available here
— ``list`` prints the catalogue (name, parameters, certificate-size bound,
paper reference), ``certify`` runs one scheme on one graph, and ``sweep``
runs a declarative size sweep through :mod:`repro.experiments`.

Usage examples::

    python -m repro.cli list
    python -m repro.cli certify --scheme treedepth --param t=3 --graph path:15
    python -m repro.cli certify --scheme mso-trees --param automaton=perfect-matching \\
        --graph path:8 --json
    python -m repro.cli certify --scheme bipartite --graph file:edges.txt --seed 7

Graphs are described by ``family:size`` specifiers (see ``list`` for the
full family catalogue) or by ``file:PATH`` pointing at an edge list (one
``u v`` pair per line).  ``certify`` prints whether the property holds,
whether the honest proof was accepted by the radius-1 verifier, and the
maximum certificate size in bits — the quantity the paper is about; with
``--json`` the same result is printed machine-readable.

``certify`` is a thin shell over the long-lived certification service of
:mod:`repro.service`: the request becomes a typed
:class:`~repro.service.messages.CertifyRequest`, the verdict is the typed
response's canonical JSON payload, and expected failures (unknown scheme,
bad parameter, unresolvable graph, an undecidable ground truth) exit with a
structured message instead of a traceback.

Serving certification
---------------------

``serve`` keeps that service resident and speaks its JSON-lines wire
protocol — one request object per line in, one response per line out, with
compiled topologies, ground-truth decisions and scheme instances cached
across requests::

    printf '%s\\n' \\
      '{"op":"certify","scheme":"treedepth","params":{"t":3},"graph":"path:7"}' \\
      '{"op":"stats"}' '{"op":"shutdown"}' | python -m repro.cli serve

    python -m repro.cli serve --tcp 127.0.0.1:8765   # localhost TCP mode

The ``certify`` subcommand and the ``serve`` protocol share one code path,
so ``certify --json`` and a wire ``certify`` request produce byte-identical
verdicts.  Talk to a server programmatically with
:class:`repro.service.ServiceClient` (see ``examples/service_quickstart.py``).

Running sweeps
--------------

``sweep`` measures a whole certificate-size series in one invocation: pick a
scheme, a graph family and a grid of sizes, and the runner evaluates every
instance on the compile-once engine (fanning out across processes with
``--processes``), checks the measured series against the scheme's registered
asymptotic bound, and writes a JSON artifact::

    python -m repro.cli sweep --scheme tree --family random-tree \\
        --sizes 8,32,128 --trials 10 --output sweep_tree.json
    python -m repro.cli sweep --scheme spanning-tree-count --param expected_n='$n' \\
        --family random-connected --sizes 8,16,32,64

Parameter values may use the literal ``$n`` template, substituted with each
grid point's size.  Every grid point derives an independent seed from
``(--seed, index)``, so sweeps are reproducible point-by-point and shardable
across machines.  The exit status is non-zero when a yes-instance's honest
proof is rejected, a no-instance's sampled adversary is accepted, or the
measured series violates the registered bound.

Sharding, lower bounds and the regression gate
----------------------------------------------

``sweep --shard 0/2`` runs only grid points ``0, 2, 4, ...`` (global indices
and per-point seeds unchanged) and writes a partial artifact; ``merge``
stitches the partial artifacts of a complete shard set back into the
unsharded run's artifact::

    python -m repro.cli sweep --scheme tree --family random-tree \\
        --sizes 8,16,32,64 --shard 0/2 --output part0.json
    python -m repro.cli sweep --scheme tree --family random-tree \\
        --sizes 8,16,32,64 --shard 1/2 --output part1.json
    python -m repro.cli merge --output sweep_tree.json part0.json part1.json

``lower-bound`` runs the matching Ω(·) side — a Section 7 reduction-framework
search — through the same artifact pipeline::

    python -m repro.cli lower-bound --construction treedepth \\
        --sizes 8,32,128,512 --no-dichotomy --output lb_treedepth.json

``results`` aggregates every artifact in a directory into an EXPERIMENTS.md
table and, with ``--check``, diffs the measured series against a committed
baseline — exiting non-zero when an upper-bound series grew or a lower-bound
series shrank (the regression gate CI runs)::

    python -m repro.cli results --dir . --output EXPERIMENTS.md \\
        --check benchmarks/baselines
    python -m repro.cli results --dir . --write-baseline benchmarks/baselines
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

import networkx as nx

from repro import api
from repro.experiments import (
    ExperimentSpec,
    FormulaSpec,
    KernelSpec,
    LowerBoundSpec,
    SweepSpec,
    collect_artifacts,
    compare_to_baseline,
    load_artifact,
    merge_artifacts,
    render_experiments_md,
    run_formula,
    run_kernel,
    run_lower_bound,
    run_sweep,
    write_artifact,
    write_baseline,
)
from repro.formulas import FormulaError, resolve_formula_params
from repro.engines import VALID_ENGINES
from repro.lower_bounds.catalog import LOWER_BOUND_CONSTRUCTIONS
from repro.graphs.generators import (
    GRAPH_FAMILIES,
    GRAPH_FAMILY_SIZE_MEANING,
    GraphSpecError,
    build_graph_spec,
)
from repro.registry import REGISTRY, RegistryError
from repro.service.core import CertificationService
from repro.service.driver import DriverError, LocalFleet, ShardDriver
from repro.service.faults import FaultInjector, FaultSpecError
from repro.service.supervisor import FleetSupervisor
from repro.service.messages import CertifyRequest, ErrorResponse
from repro.service.protocol import DEFAULT_MAX_REQUEST_BYTES, serve_stdio, serve_tcp


def build_graph(spec: str, seed: int = 0) -> nx.Graph:
    """Resolve a graph specifier, turning resolution errors into clean exits."""
    try:
        return build_graph_spec(spec, seed=seed)
    except GraphSpecError as error:
        raise SystemExit(f"error: {error}") from error


def parse_raw_params(entries: Optional[List[str]]) -> Dict[str, str]:
    """Parse repeated ``--param`` flags without a registry scheme to lean on.

    Formula requests have no registered parameter catalogue, so every entry
    must be explicit ``key=value`` (the compilation knobs: t, k, route,
    model).
    """
    params: Dict[str, str] = {}
    for entry in entries or []:
        key, eq, value = entry.partition("=")
        key = key.strip()
        if not eq or not key:
            raise SystemExit(
                f"malformed --param {entry!r}; formula parameters must be "
                "key=value (t, k, route, model)"
            )
        params[key] = value
    return params


def parse_params(entries: Optional[List[str]], scheme: str) -> Dict[str, str]:
    """Parse repeated ``--param`` flags into a raw parameter mapping.

    Each entry is ``key=value``; a bare ``value`` is shorthand for the
    scheme's single required parameter (so ``--scheme treedepth --param 3``
    keeps working alongside the explicit ``--param t=3``).
    """
    info = REGISTRY.get(scheme)
    params: Dict[str, str] = {}
    required = [spec.name for spec in info.params if spec.required]
    for entry in entries or []:
        if "=" in entry:
            key, _, value = entry.partition("=")
            key = key.strip()
            if not key:
                raise SystemExit(f"malformed --param {entry!r}; use key=value")
            params[key] = value
        elif len(required) == 1:
            params[required[0]] = entry
        else:
            raise SystemExit(
                f"scheme {scheme!r} has no single required parameter; "
                f"use --param key=value (parameters: "
                f"{', '.join(spec.name for spec in info.params) or 'none'})"
            )
    return params


def cmd_list(_: argparse.Namespace) -> int:
    print(f"available schemes (--scheme), {len(REGISTRY)} registered:")
    for info in REGISTRY:
        params = " ".join(
            f"{spec.name}{'*' if spec.required else ''}" for spec in info.params
        )
        params = f"  params: {params}" if params else ""
        print(f"  {info.key:<20} {info.bound.label:<12} {info.summary}")
        print(f"  {'':<20} {'':<12} [{info.paper}]{params}")
    print("\ngraph families (--graph / --family):")
    print(
        "  "
        + " ".join(
            f"{family}:{GRAPH_FAMILY_SIZE_MEANING.get(family, 'N')}"
            for family in sorted(GRAPH_FAMILIES)
        )
    )
    print("  file:PATH (edge list, one 'u v' pair per line)")
    print("\nlower-bound constructions (lower-bound --construction):")
    for key in sorted(LOWER_BOUND_CONSTRUCTIONS):
        construction = LOWER_BOUND_CONSTRUCTIONS[key]
        print(f"  {key:<20} {construction.bound.label:<12} {construction.summary}")
        print(f"  {'':<20} {'':<12} [{construction.paper}]")
    print("\nparameters marked * are required; pass them as --param key=value")
    return 0


def certify_request(args: argparse.Namespace) -> CertifyRequest:
    """The typed service request a ``certify`` invocation describes.

    Parameter-shorthand errors and unknown schemes exit here with a clean
    message (the registry's close-match suggestions included).  With
    ``--formula`` the ``--param`` entries are the compilation knobs and
    never touch the registry.
    """
    try:
        if args.scheme is not None:
            params = parse_params(args.param, args.scheme)
        else:
            # Formula knobs (or the neither-set case, which the request's
            # own validation rejects with the canonical message below).
            params = parse_raw_params(args.param)
    except RegistryError as error:
        raise SystemExit(f"error: {error}") from error
    try:
        return CertifyRequest(
            scheme=args.scheme,
            formula=args.formula,
            graph=args.graph,
            params=params,
            seed=args.seed,
            trials=args.trials,
            engine=args.engine,
            include_certificates=args.verbose,
        )
    except ValueError as error:
        # --scheme and --formula are mutually exclusive (and one is
        # required); the request's own validation words the message.
        raise SystemExit(f"error: {error}") from error


def cmd_certify(args: argparse.Namespace) -> int:
    """One service call: the same request/verdict path ``serve`` speaks.

    Expected failures (bad parameter, unresolvable graph, an undecidable
    ground truth) arrive as structured error responses and exit non-zero
    with their message — never a traceback.
    """
    response = api.respond(certify_request(args))
    if isinstance(response, ErrorResponse):
        raise SystemExit(f"error: {response.message}")
    failed = not response.verdict_ok
    if args.json:
        print(response.to_json(indent=2))
        return 1 if failed else 0
    print(f"scheme:     {response.scheme}")
    print(f"graph:      {response.graph} ({response.vertices} vertices, "
          f"{response.edges} edges)")
    if response.engine_resolved is not None and response.engine_resolved != response.engine:
        print(f"engine:     {response.engine} (ran on {response.engine_resolved})")
    print(f"holds:      {response.holds}")
    if response.holds:
        print(f"accepted:   {response.accepted}")
        print(f"size:       {response.max_certificate_bits} bits per vertex (max)")
    else:
        print(f"sound (sampled adversaries all rejected): {response.sound}")
    if response.certificates is not None:
        print("\nper-vertex certificates:")
        for vertex_repr in sorted(response.certificates):
            entry = response.certificates[vertex_repr]
            print(f"  {vertex_repr:>10} id={entry['id']:<8} {entry['hex'] or '(empty)'}")
    return 1 if failed else 0


def parse_tcp_address(raw: str) -> tuple:
    """Parse ``--tcp [HOST:]PORT`` (host defaults to localhost)."""
    host, colon, port = raw.rpartition(":")
    if not colon:
        host, port = "127.0.0.1", raw
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"--tcp must look like PORT or HOST:PORT, got {raw!r}")


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived certification service on the wire protocol.

    stdio mode (default) answers JSON-lines requests on stdin until EOF or
    a ``{"op": "shutdown"}`` request; ``--tcp [HOST:]PORT`` serves the same
    protocol on a localhost socket (port 0 picks a free port, announced on
    stderr) until a client sends shutdown.
    """
    if args.workers < 1:
        raise SystemExit("error: --workers must be at least 1")
    if args.max_request_bytes < 1:
        raise SystemExit("error: --max-request-bytes must be at least 1")
    if args.deadline is not None and args.deadline <= 0:
        raise SystemExit("error: --deadline must be positive")
    try:
        injector = FaultInjector.parse(args.fault) if args.fault else None
    except FaultSpecError as error:
        raise SystemExit(f"error: {error}") from error
    with CertificationService(
        workers=args.workers, default_deadline_s=args.deadline
    ) as service:
        service.fault_injector = injector
        if args.tcp is not None:
            host, port = parse_tcp_address(args.tcp)
            serve_tcp(
                service,
                host=host,
                port=port,
                announce=sys.stderr,
                max_request_bytes=args.max_request_bytes,
            )
        else:
            serve_stdio(
                service, sys.stdin, sys.stdout,
                max_request_bytes=args.max_request_bytes,
            )
    return 0


def parse_sizes(raw: str) -> tuple:
    try:
        return tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"--sizes must be a comma-separated list of integers, got {raw!r}")


def parse_shard(raw: Optional[str]) -> Optional[tuple]:
    """Parse ``--shard I/K`` into the (index, count) pair of the spec."""
    if raw is None:
        return None
    index, slash, count = raw.partition("/")
    try:
        shard = (int(index), int(count))
    except ValueError:
        raise SystemExit(f"--shard must look like I/K (e.g. 0/2), got {raw!r}")
    if not slash:
        raise SystemExit(f"--shard must look like I/K (e.g. 0/2), got {raw!r}")
    # The spec layer accepts any (start, stride) pair — the driver's shard
    # splitting dispatches strided sub-shards whose start exceeds the
    # stride — but a hand-typed I/K with I >= K is always a mistake.
    index, count = shard
    if count < 1 or index < 0 or index >= count:
        raise SystemExit(
            f"--shard index must satisfy 0 <= I < K, got {raw!r}"
        )
    return shard


def _print_fit(result) -> None:
    if result.fit is not None:
        print(f"fit:        {result.fit.label} "
              f"(exponent {result.fit.exponent:.2f}, R² {result.fit.r_squared:.2f})")


def _print_bound(result) -> None:
    if result.bound is not None:
        spread = "n/a" if result.bound.spread is None else f"{result.bound.spread:.2f}"
        print(f"bound:      {result.bound.label}  "
              f"ok={result.bound.ok} (spread {spread} <= slack {result.bound.slack})")


def _formula_spec_from_args(
    args: argparse.Namespace, knobs: Dict[str, str]
) -> FormulaSpec:
    """Build a validated :class:`FormulaSpec` from CLI arguments + knobs."""
    try:
        resolved = resolve_formula_params(knobs)
        return FormulaSpec(
            formula=args.formula,
            family=args.family,
            sizes=parse_sizes(args.sizes),
            t=resolved["t"],
            k=resolved["k"],
            route=resolved["route"],
            model=resolved["model"],
            trials=args.trials,
            seed=args.seed,
            engine=args.engine,
            check_bound=not args.no_bound_check,
            shard=parse_shard(args.shard),
            name=args.name,
        ).validate()
    except (FormulaError, RegistryError, ValueError) as error:
        raise SystemExit(f"error: {error}") from error


def _run_formula_series(args: argparse.Namespace, spec: FormulaSpec) -> int:
    """Run a formula series, print it, write ``formula_<label>.json``."""
    try:
        result = run_formula(spec)
    except GraphSpecError as error:
        raise SystemExit(f"error: {error}") from error
    if args.output:
        output = args.output
    elif spec.shard is not None:
        output = f"formula_{spec.label}.shard{spec.shard[0]}of{spec.shard[1]}.json"
    else:
        output = f"formula_{spec.label}.json"
    path = write_artifact(result, output, canonical=args.canonical)

    shard_note = (
        f", shard {spec.shard[0]}/{spec.shard[1]}" if spec.shard is not None else ""
    )
    print(f"formula:    {spec.label} ({len(result.points)} instances, "
          f"route={spec.route}, t={spec.t}, engine={spec.engine}{shard_note})")
    print(f"sentence:   {spec.formula}")
    for point in result.points:
        status = (
            f"accepted={point.completeness_ok}"
            if point.holds
            else f"holds=False sound={point.soundness_ok}"
        )
        print(f"  {point.graph:<22} n={point.vertices:<6} "
              f"{point.max_certificate_bits:>6} bits  {status}  ({point.elapsed_s:.3f}s)")
    _print_bound(result)
    _print_fit(result)
    print(f"artifact:   {path}")

    ok = result.all_accepted and result.all_sound
    if result.bound is not None:
        ok = ok and result.bound.ok
    return 0 if ok else 1


def cmd_formula(args: argparse.Namespace) -> int:
    """Compile an MSO sentence and measure its certificate-size series."""
    knobs = {"t": args.t, "k": args.k, "route": args.route, "model": args.model}
    return _run_formula_series(args, _formula_spec_from_args(args, knobs))


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.formula is not None:
        if args.scheme is not None:
            raise SystemExit(
                "error: --scheme and --formula are mutually exclusive; set one"
            )
        if args.measure != "full":
            raise SystemExit("error: formula sweeps only support --measure full")
        if args.id_exponent is not None:
            raise SystemExit("error: formula sweeps do not support --id-exponent")
        return _run_formula_series(
            args, _formula_spec_from_args(args, parse_raw_params(args.param))
        )
    if args.scheme is None:
        raise SystemExit("error: one of --scheme or --formula is required")
    try:
        spec = SweepSpec(
            scheme=args.scheme,
            family=args.family,
            sizes=parse_sizes(args.sizes),
            params=parse_params(args.param, args.scheme),
            trials=args.trials,
            seed=args.seed,
            engine=args.engine,
            processes=args.processes,
            check_bound=not args.no_bound_check,
            measure=args.measure,
            id_exponent=args.id_exponent,
            shard=parse_shard(args.shard),
            name=args.name,
        ).validate()
    except RegistryError as error:
        raise SystemExit(f"error: {error}") from error

    try:
        result = run_sweep(spec)
    except GraphSpecError as error:
        # validate() checks sizes are positive, but families may impose
        # stricter minimums (a cycle needs 3 vertices, ...).
        raise SystemExit(f"error: {error}") from error
    if args.output:
        output = args.output
    elif spec.shard is not None:
        output = f"sweep_{spec.label}.shard{spec.shard[0]}of{spec.shard[1]}.json"
    else:
        output = f"sweep_{spec.label}.json"
    path = write_artifact(result, output, canonical=args.canonical)

    info = spec.info
    shard_note = (
        f", shard {spec.shard[0]}/{spec.shard[1]}" if spec.shard is not None else ""
    )
    print(f"sweep:      {spec.label} ({len(result.points)} instances, "
          f"engine={spec.engine}, processes={spec.processes}{shard_note})")
    print(f"scheme:     {info.key} — {info.summary}")
    for point in result.points:
        status = (
            f"accepted={point.completeness_ok}"
            if point.holds
            else f"holds=False sound={point.soundness_ok}"
        )
        print(f"  {point.graph:<22} n={point.vertices:<6} "
              f"{point.max_certificate_bits:>6} bits  {status}  ({point.elapsed_s:.3f}s)")
    _print_bound(result)
    _print_fit(result)
    print(f"artifact:   {path}")

    ok = result.all_accepted and result.all_sound
    if result.bound is not None:
        ok = ok and result.bound.ok
    return 0 if ok else 1


def cmd_lower_bound(args: argparse.Namespace) -> int:
    try:
        spec = LowerBoundSpec(
            construction=args.construction,
            sizes=parse_sizes(args.sizes),
            check_dichotomy=not args.no_dichotomy,
            simulate=args.simulate,
            engine=args.engine,
            check_bound=not args.no_bound_check,
            seed=args.seed,
            shard=parse_shard(args.shard),
            name=args.name,
        ).validate()
    except RegistryError as error:
        raise SystemExit(f"error: {error}") from error

    result = run_lower_bound(spec)
    if args.output:
        output = args.output
    elif spec.shard is not None:
        output = f"lb_{spec.label}.shard{spec.shard[0]}of{spec.shard[1]}.json"
    else:
        output = f"lb_{spec.label}.json"
    path = write_artifact(result, output, canonical=args.canonical)

    info = spec.info
    print(f"lower bound: {spec.label} ({len(result.points)} grid points)")
    print(f"construction: {info.key} — {info.summary} [{info.paper}]")
    for point in result.points:
        checks = []
        if point.dichotomy_ok is not None:
            checks.append(f"dichotomy={point.dichotomy_ok}")
        if point.protocol_ok is not None:
            checks.append(f"protocol={point.protocol_ok}")
        extra = f"  {' '.join(checks)}" if checks else ""
        print(f"  size={point.size:<6} ell={point.ell:<6} r={point.r:<6} "
              f"bound {point.bound_bits:>8.2f} bits{extra}  ({point.elapsed_s:.3f}s)")
    _print_bound(result)
    _print_fit(result)
    print(f"artifact:   {path}")

    ok = result.all_ok
    if result.bound is not None:
        ok = ok and result.bound.ok
    return 0 if ok else 1


def parse_fleet_fault(raw: str) -> tuple:
    """Parse a ``shard-drive --fault`` entry: ``[MEMBER:]SPEC``.

    A leading integer selects the fleet member the fault spec is installed
    on (default member 0); the rest is a :mod:`repro.service.faults` spec.
    Unambiguous because fault actions never start with a digit.
    """
    head, colon, rest = raw.partition(":")
    if colon and head.isdigit():
        return int(head), rest
    return 0, raw


def cmd_kernel(args: argparse.Namespace) -> int:
    try:
        spec = KernelSpec(
            family=args.family,
            sizes=parse_sizes(args.sizes),
            k=args.k,
            model=args.model,
            check_ef=args.check_ef,
            seed=args.seed,
            engine=args.engine,
            shard=parse_shard(args.shard),
            name=args.name,
        ).validate()
    except RegistryError as error:
        raise SystemExit(f"error: {error}") from error

    try:
        result = run_kernel(spec)
    except GraphSpecError as error:
        raise SystemExit(f"error: {error}") from error
    if args.output:
        output = args.output
    elif spec.shard is not None:
        output = f"kernel_{spec.label}.shard{spec.shard[0]}of{spec.shard[1]}.json"
    else:
        output = f"kernel_{spec.label}.json"
    path = write_artifact(result, output, canonical=args.canonical)

    shard_note = (
        f", shard {spec.shard[0]}/{spec.shard[1]}" if spec.shard is not None else ""
    )
    print(f"kernel:     {spec.label} ({len(result.points)} instances, "
          f"k={spec.k}, model={spec.model}{shard_note})")
    for point in result.points:
        checks = [f"valid={point.valid_model}"]
        if point.ef_ok is not None:
            checks.append(f"ef={point.ef_ok}")
        print(f"  {point.graph:<22} n={point.vertices:<6} depth={point.depth:<4} "
              f"kernel {point.kernel_size:>5} vertices ({point.pruned} pruned)  "
              f"{' '.join(checks)}  ({point.elapsed_s:.3f}s)")
    _print_fit(result)
    print(f"artifact:   {path}")
    return 0 if result.all_ok else 1


def cmd_shard_drive(args: argparse.Namespace) -> int:
    """Drive one experiment sharded across a fleet of serve processes.

    The experiment comes from a JSON spec file (the ``to_dict`` form of a
    sweep or lower-bound spec, ``kind`` included).  Workers are either an
    explicit ``--worker HOST:PORT`` list of already-running serve processes
    or a ``--fleet N`` of freshly spawned local ones; the driver survives
    worker deaths as long as one worker remains, and the merged artifact is
    identical to the unsharded run's (byte-identical with ``--canonical``).
    """
    try:
        spec = ExperimentSpec.from_dict(json.loads(Path(args.spec).read_text()))
        spec.validate()
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read spec {args.spec!r}: {error}") from error
    except RegistryError as error:
        raise SystemExit(f"error: {error}") from error

    faults: Dict[int, List[str]] = {}
    for raw in args.fault or []:
        member, fault_spec = parse_fleet_fault(raw)
        faults.setdefault(member, []).append(fault_spec)
    try:
        if faults:
            # Validate the specs up front (the fleet members would otherwise
            # die on startup with a less helpful message).
            FaultInjector.parse(spec for specs in faults.values() for spec in specs)
    except FaultSpecError as error:
        raise SystemExit(f"error: {error}") from error

    if args.min_workers < 1:
        raise SystemExit("error: --min-workers must be at least 1")
    if args.max_workers is not None and args.max_workers < args.min_workers:
        raise SystemExit("error: --max-workers must be >= --min-workers")

    driver_kwargs = dict(
        deadline_s=args.deadline,
        max_attempts=args.max_attempts,
        split=args.split,
    )
    if args.read_grace is not None:
        if args.read_grace <= 0:
            raise SystemExit("error: --read-grace must be positive")
        driver_kwargs["read_grace_s"] = args.read_grace
    driver = ShardDriver(**driver_kwargs)
    try:
        if args.worker:
            if faults:
                raise SystemExit(
                    "error: --fault requires a spawned fleet (drop --worker)"
                )
            if args.elastic:
                raise SystemExit(
                    "error: --elastic requires a spawned fleet (drop --worker)"
                )
            workers = [parse_tcp_address(raw) for raw in args.worker]
            report = driver.drive(spec, workers, shards=args.shards)
        else:
            fleet = LocalFleet(
                args.fleet,
                serve_workers=args.serve_workers,
                faults=faults,
            )
            supervisor = None
            if args.elastic:
                supervisor = FleetSupervisor(
                    fleet,
                    min_workers=args.min_workers,
                    max_workers=(
                        args.max_workers
                        if args.max_workers is not None
                        else args.fleet
                    ),
                    respawn_budget=args.respawn_budget,
                )
            with fleet as workers:
                report = driver.drive(
                    spec, workers, shards=args.shards, supervisor=supervisor
                )
    except DriverError as error:
        raise SystemExit(f"error: {error}") from error

    merged = report.result
    prefix = {"sweep": "sweep", "lower-bound": "lb", "radius": "radius"}.get(
        spec.kind, spec.kind
    )
    output = args.output or f"{prefix}_{spec.label}.json"
    path = write_artifact(merged, output, canonical=args.canonical)

    print(f"drive:      {spec.label} ({spec.kind}), {report.shards} shard(s) "
          f"across {len(set(report.assignments.values()))} worker(s)")
    for index in sorted(report.assignments):
        note = f" ({report.attempts[index]} attempts)" if report.attempts[index] > 1 else ""
        print(f"  shard {index}: {report.assignments[index]}{note}")
    for worker in report.workers_lost:
        print(f"  LOST: {worker}")
    for worker in report.workers_spawned:
        print(f"  SPAWNED: {worker}")
    for worker in report.workers_retired:
        print(f"  RETIRED: {worker}")
    if report.redispatched:
        print(f"re-dispatched: shard(s) {', '.join(map(str, report.redispatched))}")
    if report.shards_split:
        print(
            f"split:      {report.shards_split} shard(s) split mid-drive; "
            f"{report.points_salvaged} point(s) salvaged, "
            f"{report.points_redispatched} re-dispatched"
        )
    _print_bound(merged)
    _print_fit(merged)
    print(f"artifact:   {path}")

    ok = (
        (merged.all_accepted and merged.all_sound)
        if hasattr(merged, "all_accepted")
        else merged.all_ok
    )
    if merged.bound is not None:
        ok = ok and merged.bound.ok
    return 0 if ok else 1


def cmd_merge(args: argparse.Namespace) -> int:
    try:
        parts = [load_artifact(path) for path in args.artifacts]
        merged = merge_artifacts(parts)
    except (OSError, ValueError) as error:
        raise SystemExit(f"error: {error}") from error
    path = write_artifact(merged, args.output, canonical=args.canonical)
    print(f"merged:     {len(parts)} partial artifact(s), "
          f"{len(merged.points)} grid points")
    print(f"experiment: {merged.spec.label} ({merged.kind})")
    _print_bound(merged)
    _print_fit(merged)
    print(f"artifact:   {path}")
    # Same exit contract as the commands that produced the shards: a merged
    # run that is unclean or out of its registered band fails.
    ok = (
        (merged.all_accepted and merged.all_sound)
        if hasattr(merged, "all_accepted")
        else merged.all_ok
    )
    if merged.bound is not None:
        ok = ok and merged.bound.ok
    return 0 if ok else 1


def cmd_results(args: argparse.Namespace) -> int:
    try:
        artifacts = collect_artifacts(args.dir)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from error
    if not artifacts:
        raise SystemExit(f"error: no experiment artifacts found under {args.dir!r} "
                         f"(looked for sweep_*.json, lb_*.json, radius_*.json, "
                         f"kernel_*.json, formula_*.json)")

    labels = [result.spec.label for _, result in artifacts]
    for label in sorted({l for l in labels if labels.count(l) > 1}):
        print(f"warning: {labels.count(label)} artifacts share the label {label!r}; "
              "the baseline keeps only the last one — give runs distinct --name s")

    # --check runs BEFORE --write-baseline: with both flags on the same path
    # the gate must diff against the previous baseline, not the file that is
    # about to be (re)written from this very run.  It is also computed before
    # rendering so routing drift lands in the EXPERIMENTS.md output.
    report = None
    if args.check:
        try:
            report = compare_to_baseline(artifacts, args.check)
        except (OSError, ValueError) as error:
            raise SystemExit(f"error: {error}") from error

    table = render_experiments_md(
        artifacts, routing_drift=report.routing_drift if report is not None else ()
    )
    if args.output:
        Path(args.output).write_text(table)
        print(f"wrote {args.output} ({len(artifacts)} artifact(s))")
    else:
        print(table)

    status = 0
    unclean = [
        result.spec.label
        for _, result in artifacts
        if not (
            (result.all_accepted and result.all_sound)
            if hasattr(result, "all_accepted")
            else result.all_ok
        )
    ]
    for label in unclean:
        print(f"UNCLEAN: {label} has a failed completeness/soundness/dichotomy check")
    violated = [
        result.spec.label
        for _, result in artifacts
        if result.bound is not None and not result.bound.ok
    ]
    for label in violated:
        print(f"BOUND VIOLATED: {label} left its registered asymptotic band")
    if unclean or violated:
        status = 1

    if report is not None:
        for regression in report.regressions:
            print(f"REGRESSION: {regression.describe()}")
        for improvement in report.improvements:
            print(f"improved:   {improvement.describe()}")
        for mismatch in report.kind_mismatches:
            print(f"KIND MISMATCH: {mismatch}")
        for label in report.missing_labels:
            print(f"missing:    baseline entry {label!r} has no artifact this run")
        for label in report.new_labels:
            print(f"new:        {label!r} is not in the baseline yet")
        for drift in report.routing_drift:
            # Informational: engines are verdict-equivalent, so a routing
            # change cannot regress results — but it should be visible.
            print(f"routing drift: {drift}")
        if report.ok:
            print("regression gate: OK")
        else:
            print(f"regression gate: FAILED ({len(report.regressions)} regression(s), "
                  f"{len(report.kind_mismatches)} kind mismatch(es))")
            status = 1

    if args.write_baseline:
        if unclean or violated:
            print("baseline:   NOT written — fix the unclean/violated artifacts "
                  "above first (a baseline must record a clean run)")
        else:
            path = write_baseline(artifacts, args.write_baseline)
            print(f"baseline:   wrote {path}")
    return status


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Measure this machine's engine cost units and write a calibration file.

    The planner loads its units from ``$REPRO_CALIBRATION`` (or the packaged
    default) — point that variable at the written file to route ``auto``
    requests with the measured units instead of the shipped ones.
    """
    from repro.planner import run_calibration, write_calibration

    calibration = run_calibration(quick=args.quick)
    path = write_calibration(calibration, args.output)
    print(f"calibration: wrote {path}{' (quick probes)' if args.quick else ''}")
    units = calibration["units"]
    for name in sorted(units):
        print(f"  {name:<18} {units[name]:.4f}")
    cutoffs = calibration["max_table_bits"]
    print(f"  max_table_bits   python={cutoffs['python']} numpy={cutoffs['numpy']}")
    print(f"route with it:   REPRO_CALIBRATION={path} python -m repro.cli ...")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Local certification from the command line "
        "(reproduction of 'What can be certified compactly?', PODC 2022).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered schemes and graph families")

    certify = subparsers.add_parser("certify", help="run a scheme on a graph")
    certify.add_argument("--scheme", default=None, help="registry key (see 'list')")
    certify.add_argument(
        "--formula",
        default=None,
        metavar="SENTENCE",
        help="compile this MSO sentence into an ephemeral scheme instead of "
        "naming a registered one (mutually exclusive with --scheme); "
        "--param entries then carry the compilation knobs t, k, route, model",
    )
    certify.add_argument(
        "--param",
        action="append",
        default=None,
        help="scheme parameter as key=value (repeatable); a bare value binds "
        "the single required parameter",
    )
    certify.add_argument("--graph", required=True, help="graph specifier, e.g. path:15 or file:edges.txt")
    certify.add_argument("--seed", type=int, default=0, help="seed for identifiers and generators")
    certify.add_argument(
        "--trials",
        type=int,
        default=20,
        help="adversarial certificate assignments tried on no-instances (default 20)",
    )
    certify.add_argument(
        "--engine",
        choices=VALID_ENGINES,
        default="auto",
        help="verification engine: per-assignment reference simulator "
        "(legacy), compile-once topology (compiled), incremental "
        "single-vertex deltas (delta), bit-parallel assignment blocks "
        "(vector), or the workload-aware planner (auto, default)",
    )
    certify.add_argument("--verbose", action="store_true", help="print the raw certificates")
    certify.add_argument(
        "--json",
        action="store_true",
        help="print the result as machine-readable JSON",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a declarative certificate-size sweep, write a JSON artifact"
    )
    sweep.add_argument("--scheme", default=None, help="registry key (see 'list')")
    sweep.add_argument(
        "--formula",
        default=None,
        metavar="SENTENCE",
        help="sweep an ephemeral MSO-compiled scheme instead of a registered "
        "one (mutually exclusive with --scheme); --param entries then carry "
        "the compilation knobs t, k, route, model",
    )
    sweep.add_argument(
        "--param",
        action="append",
        default=None,
        help="scheme parameter as key=value (repeatable); values may use the "
        "$n size template",
    )
    sweep.add_argument("--family", required=True, help="graph family (see 'list')")
    sweep.add_argument("--sizes", required=True, help="comma-separated size grid, e.g. 8,32,128")
    sweep.add_argument("--trials", type=int, default=20, help="adversarial trials per no-instance")
    sweep.add_argument("--seed", type=int, default=0, help="sweep seed (per-point seeds derive from it)")
    sweep.add_argument("--engine", choices=VALID_ENGINES, default="auto")
    sweep.add_argument("--processes", type=int, default=1, help="worker processes for the fan-out")
    sweep.add_argument("--output", default=None, help="artifact path (default sweep_<label>.json)")
    sweep.add_argument("--name", default=None, help="label stored in the artifact")
    sweep.add_argument(
        "--no-bound-check",
        action="store_true",
        help="skip checking the series against the registered asymptotic bound",
    )
    sweep.add_argument(
        "--measure",
        choices=("full", "size"),
        default="full",
        help="'full' runs the complete harness; 'size' only measures the "
        "honest prover's certificate bits (usable on instances too large "
        "for the exact holds decision)",
    )
    sweep.add_argument(
        "--shard",
        default=None,
        metavar="I/K",
        help="run only grid points with index ≡ I (mod K); merge the partial "
        "artifacts of all K shards with the 'merge' command",
    )
    sweep.add_argument(
        "--id-exponent",
        type=int,
        default=None,
        help="draw identifiers from [1, n^EXP] instead of the default n^3 "
        "(the identifier-range ablation)",
    )
    sweep.add_argument(
        "--canonical",
        action="store_true",
        help="zero per-point wall-clock timings in the artifact, making "
        "artifacts of identical runs byte-comparable",
    )

    lower_bound = subparsers.add_parser(
        "lower-bound",
        help="run a declarative Section-7 lower-bound search, write a JSON artifact",
    )
    lower_bound.add_argument(
        "--construction",
        required=True,
        help=f"one of: {', '.join(sorted(LOWER_BOUND_CONSTRUCTIONS))}",
    )
    lower_bound.add_argument(
        "--sizes", required=True, help="comma-separated construction-size grid"
    )
    lower_bound.add_argument("--seed", type=int, default=0, help="search seed (per-point seeds derive from it)")
    lower_bound.add_argument(
        "--no-dichotomy",
        action="store_true",
        help="skip building gadgets and checking the property dichotomy "
        "(required for closed-form constructions / large grids)",
    )
    lower_bound.add_argument(
        "--simulate",
        action="store_true",
        help="run the Alice/Bob protocol simulation probes (tiny sizes only)",
    )
    lower_bound.add_argument(
        "--engine",
        choices=("compiled", "delta", "vector", "auto"),
        default="auto",
        help="how the simulation probes sweep assignments: reload each full "
        "assignment (compiled), stream Gray-coded single-vertex deltas "
        "through a persistent session (delta), sweep bit-parallel "
        "lane blocks per prover message (vector), or let the planner "
        "pick per point (auto, default)",
    )
    lower_bound.add_argument("--output", default=None, help="artifact path (default lb_<label>.json)")
    lower_bound.add_argument("--name", default=None, help="label stored in the artifact")
    lower_bound.add_argument(
        "--no-bound-check",
        action="store_true",
        help="skip checking the Ω series against the expected asymptotic shape",
    )
    lower_bound.add_argument("--shard", default=None, metavar="I/K", help="as for sweep")
    lower_bound.add_argument(
        "--canonical", action="store_true", help="as for sweep"
    )

    kernel = subparsers.add_parser(
        "kernel",
        help="run a declarative Section-6 kernel-size series, write a JSON artifact",
    )
    kernel.add_argument(
        "--family",
        required=True,
        help=f"one of: {', '.join(sorted(GRAPH_FAMILIES))}",
    )
    kernel.add_argument("--sizes", required=True, help="comma-separated size grid")
    kernel.add_argument(
        "--k", type=int, default=3, help="pruning parameter (keep at most k children per type)"
    )
    kernel.add_argument(
        "--model",
        choices=("coherent", "star"),
        default="coherent",
        help="elimination-tree model: generic coherent pipeline, or the "
        "closed-form star model (star family only)",
    )
    kernel.add_argument(
        "--check-ef",
        type=int,
        default=0,
        metavar="RANK",
        help="verify G ≃ kernel by the rank-RANK EF game on small instances "
        "(0 = skip; exponential, only runs on instances of ≤ 11 vertices)",
    )
    kernel.add_argument("--seed", type=int, default=0, help="series seed (per-point seeds derive from it)")
    kernel.add_argument(
        "--engine",
        choices=VALID_ENGINES,
        default="auto",
        help="accepted for spec/CLI uniformity (kernel points run no "
        "verification engine); a mis-typed engine still fails fast",
    )
    kernel.add_argument("--output", default=None, help="artifact path (default kernel_<label>.json)")
    kernel.add_argument("--name", default=None, help="label stored in the artifact")
    kernel.add_argument("--shard", default=None, metavar="I/K", help="as for sweep")
    kernel.add_argument("--canonical", action="store_true", help="as for sweep")

    formula = subparsers.add_parser(
        "formula",
        help="compile an MSO sentence and measure its certificate-size "
        "series, write a JSON artifact",
    )
    formula.add_argument(
        "--formula",
        required=True,
        metavar="SENTENCE",
        help="the MSO sentence in the concrete syntax of repro.logic.parser, "
        "e.g. 'exists x. forall y. (x = y | x ~ y)'",
    )
    formula.add_argument(
        "--family",
        required=True,
        help=f"one of: {', '.join(sorted(GRAPH_FAMILIES))}",
    )
    formula.add_argument("--sizes", required=True, help="comma-separated size grid")
    formula.add_argument(
        "--t", type=int, default=2, help="treedepth bound of the compiled scheme (default 2)"
    )
    formula.add_argument(
        "--k",
        type=int,
        default=None,
        help="quantifier-depth hint (default: derived from the formula)",
    )
    formula.add_argument(
        "--route",
        choices=("treedepth", "trees"),
        default="treedepth",
        help="'treedepth' (Theorem 2.6, full MSO, O(t log n) bits) or "
        "'trees' (Theorem 2.2, first-order on trees, O(1) bits)",
    )
    formula.add_argument(
        "--model",
        choices=("auto", "balanced-path", "star"),
        default="auto",
        help="elimination-tree model builder for the treedepth route",
    )
    formula.add_argument("--trials", type=int, default=20, help="adversarial trials per no-instance")
    formula.add_argument("--seed", type=int, default=0, help="series seed (per-point seeds derive from it)")
    formula.add_argument("--engine", choices=VALID_ENGINES, default="auto")
    formula.add_argument("--output", default=None, help="artifact path (default formula_<label>.json)")
    formula.add_argument("--name", default=None, help="label stored in the artifact")
    formula.add_argument(
        "--no-bound-check",
        action="store_true",
        help="skip checking the series against the route's asymptotic bound",
    )
    formula.add_argument("--shard", default=None, metavar="I/K", help="as for sweep")
    formula.add_argument("--canonical", action="store_true", help="as for sweep")

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived certification service (JSON-lines protocol)",
    )
    serve.add_argument(
        "--tcp",
        default=None,
        metavar="[HOST:]PORT",
        help="serve on a localhost TCP socket instead of stdio "
        "(port 0 picks a free port, announced on stderr)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="width of the bounded worker pool behind batched submission",
    )
    serve.add_argument(
        "--max-request-bytes",
        type=int,
        default=DEFAULT_MAX_REQUEST_BYTES,
        help="cap on one request line; oversized lines are answered with a "
        "structured invalid-request error and the connection keeps serving "
        f"(default {DEFAULT_MAX_REQUEST_BYTES})",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline; requests without their own "
        "deadline_s are answered with a structured timeout error past it",
    )
    serve.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="install a deterministic fault rule (repeatable), e.g. "
        "kill:after=3, freeze:op=sweep,seconds=0, drop:nth=2 — the chaos "
        "harness behind the fault-tolerance tests",
    )

    shard_drive = subparsers.add_parser(
        "shard-drive",
        help="fan one experiment's shards out over a fleet of serve "
        "processes, survive worker deaths, merge the partial artifacts",
    )
    shard_drive.add_argument(
        "--spec",
        required=True,
        metavar="FILE",
        help="JSON experiment spec (the to_dict form of a sweep or "
        "lower-bound spec, kind included)",
    )
    shard_drive.add_argument(
        "--fleet",
        type=int,
        default=3,
        metavar="N",
        help="spawn N local serve processes as the fleet (default 3); "
        "ignored when --worker is given",
    )
    shard_drive.add_argument(
        "--worker",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="use an already-running serve process (repeatable) instead of "
        "spawning a fleet",
    )
    shard_drive.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="split the grid into K shards (default: one per worker)",
    )
    shard_drive.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard deadline; an expired shard is answered with a "
        "structured timeout error and re-dispatched to a survivor",
    )
    shard_drive.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="dispatch cap per shard (default: max(3, fleet size + 1))",
    )
    shard_drive.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        metavar="N",
        help="worker-pool width of each spawned fleet member (default 2)",
    )
    shard_drive.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="[MEMBER:]SPEC",
        help="install a fault rule on fleet member MEMBER (default 0), "
        "e.g. 1:kill:op=sweep,nth=1 — requires a spawned fleet",
    )
    shard_drive.add_argument(
        "--split",
        action="store_true",
        help="straggler mitigation: keep the salvaged prefix of a timed-out "
        "or orphaned shard and re-dispatch only the remainder, split across "
        "the surviving workers as sub-shards",
    )
    shard_drive.add_argument(
        "--elastic",
        action="store_true",
        help="supervise the spawned fleet: respawn dead members (within "
        "--respawn-budget) and scale the member count to the queue depth "
        "inside the --min-workers/--max-workers band",
    )
    shard_drive.add_argument(
        "--min-workers",
        type=int,
        default=1,
        metavar="N",
        help="elastic floor: never retire below N active members (default 1)",
    )
    shard_drive.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help="elastic ceiling: never grow beyond N active members "
        "(default: the --fleet size)",
    )
    shard_drive.add_argument(
        "--respawn-budget",
        type=int,
        default=3,
        metavar="N",
        help="total member spawns the elastic supervisor may attempt "
        "(default 3); exhaustion with no survivors fails the drive",
    )
    shard_drive.add_argument(
        "--read-grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help="grace past the deadline before a client read is declared a "
        "transport failure (default 10); lower it to detect partitions and "
        "wedged workers faster",
    )
    shard_drive.add_argument(
        "--output", default=None, help="merged artifact path (default by kind/label)"
    )
    shard_drive.add_argument(
        "--canonical", action="store_true", help="as for sweep"
    )

    merge = subparsers.add_parser(
        "merge", help="stitch the partial artifacts of a sharded run back together"
    )
    merge.add_argument("artifacts", nargs="+", help="partial artifact paths")
    merge.add_argument("--output", required=True, help="merged artifact path")
    merge.add_argument("--canonical", action="store_true", help="as for sweep")

    results = subparsers.add_parser(
        "results",
        help="aggregate experiment artifacts into EXPERIMENTS.md and run the "
        "baseline regression gate",
    )
    results.add_argument("--dir", default=".", help="directory holding the artifacts (default .)")
    results.add_argument(
        "--output",
        default=None,
        metavar="EXPERIMENTS.md",
        help="write the aggregated markdown table here (default: print it)",
    )
    results.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="diff measured series against this baseline file/dir; exit "
        "non-zero on regressions",
    )
    results.add_argument(
        "--write-baseline",
        default=None,
        metavar="BASELINE",
        help="record the measured series as the new baseline file/dir",
    )

    calibrate = subparsers.add_parser(
        "calibrate",
        help="measure this machine's engine cost units for the auto planner "
        "and write a calibration file",
    )
    calibrate.add_argument(
        "--output",
        default="calibration.json",
        metavar="FILE",
        help="where to write the calibration (default ./calibration.json); "
        "export REPRO_CALIBRATION=FILE to route with it",
    )
    calibrate.add_argument(
        "--quick",
        action="store_true",
        help="fewer probe repetitions (faster, noisier units — CI smoke)",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "lower-bound":
        return cmd_lower_bound(args)
    if args.command == "kernel":
        return cmd_kernel(args)
    if args.command == "formula":
        return cmd_formula(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "shard-drive":
        return cmd_shard_drive(args)
    if args.command == "merge":
        return cmd_merge(args)
    if args.command == "results":
        return cmd_results(args)
    if args.command == "calibrate":
        return cmd_calibrate(args)
    return cmd_certify(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
