"""Command-line interface: certify properties of a graph from the shell.

Every scheme known to the :mod:`repro.registry` catalogue is available here
— ``list`` prints the catalogue (name, parameters, certificate-size bound,
paper reference), ``certify`` runs one scheme on one graph, and ``sweep``
runs a declarative size sweep through :mod:`repro.experiments`.

Usage examples::

    python -m repro.cli list
    python -m repro.cli certify --scheme treedepth --param t=3 --graph path:15
    python -m repro.cli certify --scheme mso-trees --param automaton=perfect-matching \\
        --graph path:8 --json
    python -m repro.cli certify --scheme bipartite --graph file:edges.txt --seed 7

Graphs are described by ``family:size`` specifiers (see ``list`` for the
full family catalogue) or by ``file:PATH`` pointing at an edge list (one
``u v`` pair per line).  ``certify`` prints whether the property holds,
whether the honest proof was accepted by the radius-1 verifier, and the
maximum certificate size in bits — the quantity the paper is about; with
``--json`` the same result is printed machine-readable.

Running sweeps
--------------

``sweep`` measures a whole certificate-size series in one invocation: pick a
scheme, a graph family and a grid of sizes, and the runner evaluates every
instance on the compile-once engine (fanning out across processes with
``--processes``), checks the measured series against the scheme's registered
asymptotic bound, and writes a JSON artifact::

    python -m repro.cli sweep --scheme tree --family random-tree \\
        --sizes 8,32,128 --trials 10 --output sweep_tree.json
    python -m repro.cli sweep --scheme spanning-tree-count --param expected_n='$n' \\
        --family random-connected --sizes 8,16,32,64

Parameter values may use the literal ``$n`` template, substituted with each
grid point's size.  Every grid point derives an independent seed from
``(--seed, index)``, so sweeps are reproducible point-by-point and shardable
across machines.  The exit status is non-zero when a yes-instance's honest
proof is rejected, a no-instance's sampled adversary is accepted, or the
measured series violates the registered bound.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

import networkx as nx

from repro.core.scheme import evaluate_scheme
from repro.experiments import SweepSpec, run_sweep, write_artifact
from repro.graphs.generators import (
    GRAPH_FAMILIES,
    GRAPH_FAMILY_SIZE_MEANING,
    GraphSpecError,
    build_graph_spec,
)
from repro.registry import REGISTRY, RegistryError


def build_graph(spec: str, seed: int = 0) -> nx.Graph:
    """Resolve a graph specifier, turning resolution errors into clean exits."""
    try:
        return build_graph_spec(spec, seed=seed)
    except GraphSpecError as error:
        raise SystemExit(f"error: {error}") from error


def parse_params(entries: Optional[List[str]], scheme: str) -> Dict[str, str]:
    """Parse repeated ``--param`` flags into a raw parameter mapping.

    Each entry is ``key=value``; a bare ``value`` is shorthand for the
    scheme's single required parameter (so ``--scheme treedepth --param 3``
    keeps working alongside the explicit ``--param t=3``).
    """
    info = REGISTRY.get(scheme)
    params: Dict[str, str] = {}
    required = [spec.name for spec in info.params if spec.required]
    for entry in entries or []:
        if "=" in entry:
            key, _, value = entry.partition("=")
            key = key.strip()
            if not key:
                raise SystemExit(f"malformed --param {entry!r}; use key=value")
            params[key] = value
        elif len(required) == 1:
            params[required[0]] = entry
        else:
            raise SystemExit(
                f"scheme {scheme!r} has no single required parameter; "
                f"use --param key=value (parameters: "
                f"{', '.join(spec.name for spec in info.params) or 'none'})"
            )
    return params


def _create_scheme(args: argparse.Namespace):
    try:
        info = REGISTRY.get(args.scheme)
        return info, info.create(parse_params(args.param, args.scheme))
    except RegistryError as error:
        raise SystemExit(f"error: {error}") from error


def cmd_list(_: argparse.Namespace) -> int:
    print(f"available schemes (--scheme), {len(REGISTRY)} registered:")
    for info in REGISTRY:
        params = " ".join(
            f"{spec.name}{'*' if spec.required else ''}" for spec in info.params
        )
        params = f"  params: {params}" if params else ""
        print(f"  {info.key:<20} {info.bound.label:<12} {info.summary}")
        print(f"  {'':<20} {'':<12} [{info.paper}]{params}")
    print("\ngraph families (--graph / --family):")
    print(
        "  "
        + " ".join(
            f"{family}:{GRAPH_FAMILY_SIZE_MEANING.get(family, 'N')}"
            for family in sorted(GRAPH_FAMILIES)
        )
    )
    print("  file:PATH (edge list, one 'u v' pair per line)")
    print("\nparameters marked * are required; pass them as --param key=value")
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    info, scheme = _create_scheme(args)
    graph = build_graph(args.graph, seed=args.seed)
    report = evaluate_scheme(
        scheme,
        graph,
        seed=args.seed,
        adversarial_trials=args.trials,
        engine=args.engine,
    )
    failed = bool(report.holds and not report.completeness_ok)
    if args.json:
        payload = {
            "scheme": scheme.name,
            "registry_key": info.key,
            "graph": args.graph,
            "vertices": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "holds": report.holds,
            "accepted": report.completeness_ok,
            "sound": report.soundness_ok,
            "max_certificate_bits": report.max_certificate_bits,
            "bound": info.bound.label,
            "engine": args.engine,
            "seed": args.seed,
        }
        if args.verbose and report.holds:
            from repro.network.ids import assign_identifiers

            ids = assign_identifiers(graph, seed=args.seed)
            payload["certificates"] = {
                repr(vertex): {"id": ids[vertex], "hex": certificate.hex()}
                for vertex, certificate in scheme.prove(graph, ids).items()
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if failed else 0
    print(f"scheme:     {scheme.name}")
    print(f"graph:      {args.graph} ({graph.number_of_nodes()} vertices, "
          f"{graph.number_of_edges()} edges)")
    print(f"holds:      {report.holds}")
    if report.holds:
        print(f"accepted:   {report.completeness_ok}")
        print(f"size:       {report.max_certificate_bits} bits per vertex (max)")
    else:
        print(f"sound (sampled adversaries all rejected): {report.soundness_ok}")
    if args.verbose and report.holds:
        from repro.network.ids import assign_identifiers

        ids = assign_identifiers(graph, seed=args.seed)
        certificates = scheme.prove(graph, ids)
        print("\nper-vertex certificates:")
        for vertex in sorted(graph.nodes(), key=repr):
            print(f"  {vertex!r:>10} id={ids[vertex]:<8} {certificates[vertex].hex() or '(empty)'}")
    return 1 if failed else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    try:
        sizes = tuple(int(part) for part in args.sizes.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"--sizes must be a comma-separated list of integers, got {args.sizes!r}")
    try:
        spec = SweepSpec(
            scheme=args.scheme,
            family=args.family,
            sizes=sizes,
            params=parse_params(args.param, args.scheme),
            trials=args.trials,
            seed=args.seed,
            engine=args.engine,
            processes=args.processes,
            check_bound=not args.no_bound_check,
            name=args.name,
        ).validate()
    except RegistryError as error:
        raise SystemExit(f"error: {error}") from error

    try:
        result = run_sweep(spec)
    except GraphSpecError as error:
        # validate() checks sizes are positive, but families may impose
        # stricter minimums (a cycle needs 3 vertices, ...).
        raise SystemExit(f"error: {error}") from error
    output = args.output or f"sweep_{spec.label}.json"
    path = write_artifact(result, output)

    info = spec.info
    print(f"sweep:      {spec.label} ({len(result.points)} instances, "
          f"engine={spec.engine}, processes={spec.processes})")
    print(f"scheme:     {info.key} — {info.summary}")
    for point in result.points:
        status = (
            f"accepted={point.completeness_ok}"
            if point.holds
            else f"holds=False sound={point.soundness_ok}"
        )
        print(f"  {point.graph:<22} n={point.vertices:<6} "
              f"{point.max_certificate_bits:>6} bits  {status}  ({point.elapsed_s:.3f}s)")
    if result.bound is not None:
        spread = "n/a" if result.bound.spread is None else f"{result.bound.spread:.2f}"
        print(f"bound:      {result.bound.label}  "
              f"ok={result.bound.ok} (spread {spread} <= slack {result.bound.slack})")
    print(f"artifact:   {path}")

    ok = result.all_accepted and result.all_sound
    if result.bound is not None:
        ok = ok and result.bound.ok
    return 0 if ok else 1


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Local certification from the command line "
        "(reproduction of 'What can be certified compactly?', PODC 2022).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered schemes and graph families")

    certify = subparsers.add_parser("certify", help="run a scheme on a graph")
    certify.add_argument("--scheme", required=True, help="registry key (see 'list')")
    certify.add_argument(
        "--param",
        action="append",
        default=None,
        help="scheme parameter as key=value (repeatable); a bare value binds "
        "the single required parameter",
    )
    certify.add_argument("--graph", required=True, help="graph specifier, e.g. path:15 or file:edges.txt")
    certify.add_argument("--seed", type=int, default=0, help="seed for identifiers and generators")
    certify.add_argument(
        "--trials",
        type=int,
        default=20,
        help="adversarial certificate assignments tried on no-instances (default 20)",
    )
    certify.add_argument(
        "--engine",
        choices=("compiled", "legacy"),
        default="compiled",
        help="verification engine: compile-once topology (default) or the "
        "per-assignment reference simulator",
    )
    certify.add_argument("--verbose", action="store_true", help="print the raw certificates")
    certify.add_argument(
        "--json",
        action="store_true",
        help="print the result as machine-readable JSON",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a declarative certificate-size sweep, write a JSON artifact"
    )
    sweep.add_argument("--scheme", required=True, help="registry key (see 'list')")
    sweep.add_argument(
        "--param",
        action="append",
        default=None,
        help="scheme parameter as key=value (repeatable); values may use the "
        "$n size template",
    )
    sweep.add_argument("--family", required=True, help="graph family (see 'list')")
    sweep.add_argument("--sizes", required=True, help="comma-separated size grid, e.g. 8,32,128")
    sweep.add_argument("--trials", type=int, default=20, help="adversarial trials per no-instance")
    sweep.add_argument("--seed", type=int, default=0, help="sweep seed (per-point seeds derive from it)")
    sweep.add_argument("--engine", choices=("compiled", "legacy"), default="compiled")
    sweep.add_argument("--processes", type=int, default=1, help="worker processes for the fan-out")
    sweep.add_argument("--output", default=None, help="artifact path (default sweep_<label>.json)")
    sweep.add_argument("--name", default=None, help="label stored in the artifact")
    sweep.add_argument(
        "--no-bound-check",
        action="store_true",
        help="skip checking the series against the registered asymptotic bound",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    return cmd_certify(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
