"""Command-line interface: certify properties of a graph from the shell.

Usage examples::

    python -m repro.cli list
    python -m repro.cli certify --scheme treedepth --param 3 --graph path:15
    python -m repro.cli certify --scheme treewidth --param 2 --graph cycle:40 --verbose
    python -m repro.cli certify --scheme bipartite --graph file:edges.txt --seed 7

Graphs are described by ``family:size`` specifiers (``path``, ``cycle``,
``star``, ``clique``, ``binary-tree``, ``random-tree``, ``grid``) or by
``file:PATH`` pointing at an edge list (one ``u v`` pair per line).  The
command prints whether the property holds, whether the honest proof was
accepted by the radius-1 verifier, and the maximum certificate size in bits
— the quantity the paper is about.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

import networkx as nx

from repro.core.diameter import TreeDiameterScheme
from repro.core.scheme import CertificationScheme, evaluate_scheme
from repro.core.simple_schemes import (
    BipartitenessScheme,
    MaxDegreeScheme,
    PerfectMatchingWitnessScheme,
    ProperColoringScheme,
)
from repro.core.spanning_tree import TreeScheme
from repro.core.treedepth_scheme import TreedepthScheme
from repro.core.treewidth_scheme import TreeDecompositionScheme
from repro.graphs.generators import complete_binary_tree, random_tree


def _int_param(value: Optional[str], scheme: str) -> int:
    if value is None:
        raise SystemExit(f"scheme '{scheme}' requires --param <integer>")
    try:
        return int(value)
    except ValueError as error:
        raise SystemExit(f"--param must be an integer, got {value!r}") from error


#: scheme name → factory taking the raw --param string.
SCHEME_FACTORIES: Dict[str, Callable[[Optional[str]], CertificationScheme]] = {
    "tree": lambda param: TreeScheme(),
    "bipartite": lambda param: BipartitenessScheme(),
    "matching": lambda param: PerfectMatchingWitnessScheme(),
    "treedepth": lambda param: TreedepthScheme(t=_int_param(param, "treedepth")),
    "treewidth": lambda param: TreeDecompositionScheme(k=_int_param(param, "treewidth")),
    "coloring": lambda param: ProperColoringScheme(colors=_int_param(param, "coloring")),
    "max-degree": lambda param: MaxDegreeScheme(d=_int_param(param, "max-degree")),
    "tree-diameter": lambda param: TreeDiameterScheme(diameter=_int_param(param, "tree-diameter")),
}


def build_graph(spec: str, seed: int = 0) -> nx.Graph:
    """Build a graph from a ``family:size`` or ``file:path`` specifier."""
    if ":" not in spec:
        raise SystemExit(f"graph specifier must look like 'family:size', got {spec!r}")
    family, _, argument = spec.partition(":")
    if family == "file":
        graph = nx.read_edgelist(argument)
        if graph.number_of_nodes() == 0:
            raise SystemExit(f"edge list {argument!r} produced an empty graph")
        return graph
    try:
        size = int(argument)
    except ValueError as error:
        raise SystemExit(f"graph size must be an integer, got {argument!r}") from error
    if size <= 0:
        raise SystemExit("graph size must be positive")
    builders: Dict[str, Callable[[int], nx.Graph]] = {
        "path": nx.path_graph,
        "cycle": nx.cycle_graph,
        "clique": nx.complete_graph,
        "star": lambda n: nx.star_graph(max(1, n - 1)),
        "binary-tree": complete_binary_tree,
        "random-tree": lambda n: random_tree(n, seed=seed),
        "grid": lambda n: nx.convert_node_labels_to_integers(nx.grid_2d_graph(n, n)),
    }
    if family not in builders:
        raise SystemExit(
            f"unknown graph family {family!r}; choose from {sorted(builders)} or 'file:PATH'"
        )
    return builders[family](size)


def cmd_list(_: argparse.Namespace) -> int:
    print("available schemes (--scheme):")
    descriptions = {
        "tree": "the graph is a tree (O(log n) bits)",
        "bipartite": "the graph is 2-colourable (1 bit)",
        "matching": "the graph has a perfect matching (O(log n) bits)",
        "treedepth": "treedepth <= PARAM (Theorem 2.4, O(t log n) bits)",
        "treewidth": "treewidth <= PARAM (extension of Thm 2.4, O(d k log n) bits)",
        "coloring": "the graph is PARAM-colourable (O(log PARAM) bits)",
        "max-degree": "maximum degree <= PARAM (no certificate)",
        "tree-diameter": "the graph is a tree of diameter <= PARAM (O(log n) bits)",
    }
    for name in sorted(SCHEME_FACTORIES):
        print(f"  {name:<14} {descriptions[name]}")
    print("\ngraph families (--graph): path:N cycle:N star:N clique:N binary-tree:DEPTH")
    print("                          random-tree:N grid:N file:PATH")
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    factory = SCHEME_FACTORIES.get(args.scheme)
    if factory is None:
        raise SystemExit(f"unknown scheme {args.scheme!r}; run 'python -m repro.cli list'")
    scheme = factory(args.param)
    graph = build_graph(args.graph, seed=args.seed)
    report = evaluate_scheme(
        scheme,
        graph,
        seed=args.seed,
        adversarial_trials=args.trials,
        engine=args.engine,
    )
    print(f"scheme:     {scheme.name}")
    print(f"graph:      {args.graph} ({graph.number_of_nodes()} vertices, "
          f"{graph.number_of_edges()} edges)")
    print(f"holds:      {report.holds}")
    if report.holds:
        print(f"accepted:   {report.completeness_ok}")
        print(f"size:       {report.max_certificate_bits} bits per vertex (max)")
    else:
        print(f"sound (sampled adversaries all rejected): {report.soundness_ok}")
    if args.verbose and report.holds:
        from repro.network.ids import assign_identifiers

        ids = assign_identifiers(graph, seed=args.seed)
        certificates = scheme.prove(graph, ids)
        print("\nper-vertex certificates:")
        for vertex in sorted(graph.nodes(), key=repr):
            print(f"  {vertex!r:>10} id={ids[vertex]:<8} {certificates[vertex].hex() or '(empty)'}")
    if report.holds and not report.completeness_ok:
        return 1
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Local certification from the command line "
        "(reproduction of 'What can be certified compactly?', PODC 2022).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available schemes and graph families")

    certify = subparsers.add_parser("certify", help="run a scheme on a graph")
    certify.add_argument("--scheme", required=True, help="scheme name (see 'list')")
    certify.add_argument("--param", default=None, help="scheme parameter (t, k, colours, ...)")
    certify.add_argument("--graph", required=True, help="graph specifier, e.g. path:15 or file:edges.txt")
    certify.add_argument("--seed", type=int, default=0, help="seed for identifiers and generators")
    certify.add_argument(
        "--trials",
        type=int,
        default=20,
        help="adversarial certificate assignments tried on no-instances (default 20)",
    )
    certify.add_argument(
        "--engine",
        choices=("compiled", "legacy"),
        default="compiled",
        help="verification engine: compile-once topology (default) or the "
        "per-assignment reference simulator",
    )
    certify.add_argument("--verbose", action="store_true", help="print the raw certificates")

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    return cmd_certify(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
