"""The shared engine vocabulary of the verification stack.

Every layer that lets a caller pick a verification engine — the harness
functions in :mod:`repro.core.scheme`, the experiment specs, the service's
wire messages and the CLI ``--engine`` flags — validates against the single
tuple defined here, so adding an engine (or reading an error message) never
requires hunting down per-module copies of the list.

The four engines, in the order they were built:

* ``"legacy"``   — the reference :class:`~repro.network.simulator.NetworkSimulator`
  path: rebuild every view per assignment.  Slow, obviously correct; the
  semantics the other engines are pinned to.
* ``"compiled"`` — :class:`~repro.network.compiled.CompiledNetwork`: CSR
  topology compiled once, certificate bytes swapped per assignment, early
  exit within and across assignments.
* ``"delta"``    — :class:`~repro.network.compiled.DeltaSession`: persistent
  verdicts, one closed-neighbourhood re-verification per single-vertex
  change, for enumeration-shaped sweeps.
* ``"vector"``   — :class:`~repro.network.vector.VectorNetwork`: bit-parallel
  blocks, one lane per candidate assignment packed into machine words, whole
  blocks accepted/rejected columnwise per pass.

This module is intentionally dependency-free (stdlib only) so the service's
message layer can import it without pulling in the engines themselves.
"""

from __future__ import annotations

from typing import Sequence

#: Every engine understood by the stack, in build order.
VALID_ENGINES = ("legacy", "compiled", "delta", "vector")


def validate_engine(
    engine: str,
    allowed: Sequence[str] = VALID_ENGINES,
    context: str = "",
) -> str:
    """Validate an engine name against an allowed subset.

    Returns ``engine`` unchanged when it is allowed; raises ``ValueError``
    with a message enumerating the valid choices otherwise.  ``allowed``
    restricts entry points that only implement a subset (it must itself be a
    subset of :data:`VALID_ENGINES`), and ``context`` names the entry point
    in the error message.
    """
    if engine in allowed:
        return engine
    where = f" for {context}" if context else ""
    choices = ", ".join(repr(name) for name in VALID_ENGINES if name in allowed)
    raise ValueError(f"unknown engine {engine!r}{where}; use one of: {choices}")
