"""The shared engine vocabulary of the verification stack.

Every layer that lets a caller pick a verification engine — the harness
functions in :mod:`repro.core.scheme`, the experiment specs, the service's
wire messages and the CLI ``--engine`` flags — validates against the single
tuple defined here, so adding an engine (or reading an error message) never
requires hunting down per-module copies of the list.

The four concrete engines, in the order they were built:

* ``"legacy"``   — the reference :class:`~repro.network.simulator.NetworkSimulator`
  path: rebuild every view per assignment.  Slow, obviously correct; the
  semantics the other engines are pinned to.
* ``"compiled"`` — :class:`~repro.network.compiled.CompiledNetwork`: CSR
  topology compiled once, certificate bytes swapped per assignment, early
  exit within and across assignments.
* ``"delta"``    — :class:`~repro.network.compiled.DeltaSession`: persistent
  verdicts, one closed-neighbourhood re-verification per single-vertex
  change, for enumeration-shaped sweeps.
* ``"vector"``   — :class:`~repro.network.vector.VectorNetwork`: bit-parallel
  blocks, one lane per candidate assignment packed into machine words, whole
  blocks accepted/rejected columnwise per pass.

``"auto"`` (the default everywhere an engine is not pinned) is not a fifth
implementation: it defers the pick to the workload-aware cost model in
:mod:`repro.planner` at the point where the workload's shape is known.
:func:`resolve_engine` is that seam — every entry point that accepts
``engine=`` calls it with a :class:`~repro.planner.Workload` descriptor and
runs whichever concrete engine comes back.

This module is intentionally dependency-free (stdlib only) so the service's
message layer can import it without pulling in the engines themselves; the
planner import inside :func:`resolve_engine` is lazy for the same reason.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: The concrete engines, in build order.
CONCRETE_ENGINES = ("legacy", "compiled", "delta", "vector")

#: The planner-routed pseudo-engine (resolved per workload).
AUTO_ENGINE = "auto"

#: Every engine name accepted at the API surface.
VALID_ENGINES = CONCRETE_ENGINES + (AUTO_ENGINE,)


def validate_engine(
    engine: str,
    allowed: Sequence[str] = VALID_ENGINES,
    context: str = "",
) -> str:
    """Validate an engine name against an allowed subset.

    Returns ``engine`` unchanged when it is allowed; raises ``ValueError``
    with a message enumerating the valid choices otherwise.  ``allowed``
    restricts entry points that only implement a subset (it must itself be a
    subset of :data:`VALID_ENGINES`), and ``context`` names the entry point
    in the error message.
    """
    if engine in allowed:
        return engine
    where = f" for {context}" if context else ""
    choices = ", ".join(repr(name) for name in VALID_ENGINES if name in allowed)
    raise ValueError(f"unknown engine {engine!r}{where}; use one of: {choices}")


def resolve_engine(
    engine: str,
    workload=None,
    allowed: Sequence[str] = CONCRETE_ENGINES,
) -> str:
    """Resolve ``engine`` to a concrete engine name.

    A pinned concrete engine passes through untouched.  ``"auto"`` asks the
    planner to cost ``workload`` (a :class:`repro.planner.Workload`) against
    the ``allowed`` candidates; with no workload descriptor it falls back to
    ``"compiled"``, the all-round baseline.
    """
    if engine != AUTO_ENGINE:
        return validate_engine(engine, allowed=tuple(allowed) + (AUTO_ENGINE,))
    if workload is None:
        return "compiled" if "compiled" in allowed else tuple(allowed)[0]
    from repro.planner import choose_engine

    return choose_engine(workload, allowed=tuple(allowed)).engine
