"""A catalogue of the graph properties discussed in the paper, as formulas.

Each property comes in two flavours where meaningful: a formula (so it can be
fed to the model checker, to the kernelization scheme and to the EF-game
machinery) and a direct combinatorial checker (so tests can cross-validate
the formula semantics against an independent implementation).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable

import networkx as nx

from repro.logic.syntax import (
    Adjacent,
    And,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Implies,
    InSet,
    Not,
    Or,
    SetVariable,
    Variable,
    conjunction,
    disjunction,
)

Vertex = Hashable

_X = Variable("x")
_Y = Variable("y")
_Z = Variable("z")
_W = Variable("w")
_SET_A = SetVariable("A")
_SET_B = SetVariable("B")


# --------------------------------------------------------------------------
# First-order properties from Section 2.2 and Lemma 2.1
# --------------------------------------------------------------------------


def diameter_at_most_two() -> Formula:
    """The paper's Section 2.2 example: ∀x∀y (x=y ∨ x−y ∨ ∃z (x−z ∧ z−y))."""
    return Forall(
        _X,
        Forall(
            _Y,
            Or(
                Or(Equal(_X, _Y), Adjacent(_X, _Y)),
                Exists(_Z, And(Adjacent(_X, _Z), Adjacent(_Z, _Y))),
            ),
        ),
    )


def triangle_free() -> Formula:
    """∀x∀y∀z ¬(x−y ∧ y−z ∧ x−z) (Section 2.2)."""
    return Forall(
        _X,
        Forall(
            _Y,
            Forall(
                _Z,
                Not(conjunction(Adjacent(_X, _Y), Adjacent(_Y, _Z), Adjacent(_X, _Z))),
            ),
        ),
    )


def has_triangle() -> Formula:
    """∃x∃y∃z (x−y ∧ y−z ∧ x−z) — an existential FO sentence (Lemma 2.1)."""
    return Exists(
        _X,
        Exists(
            _Y,
            Exists(_Z, conjunction(Adjacent(_X, _Y), Adjacent(_Y, _Z), Adjacent(_X, _Z))),
        ),
    )


def has_clique_of_size(k: int) -> Formula:
    """Existential FO sentence: there exist k pairwise-adjacent vertices."""
    if k < 1:
        raise ValueError("k must be at least 1")
    variables = [Variable(f"x{i}") for i in range(k)]
    atoms = []
    for i in range(k):
        for j in range(i + 1, k):
            atoms.append(Adjacent(variables[i], variables[j]))
    body: Formula = conjunction(*atoms) if atoms else Equal(variables[0], variables[0])
    for variable in reversed(variables):
        body = Exists(variable, body)
    return body


def is_clique() -> Formula:
    """Depth-2 FO sentence: every two distinct vertices are adjacent."""
    return Forall(_X, Forall(_Y, Or(Equal(_X, _Y), Adjacent(_X, _Y))))


def has_dominating_vertex() -> Formula:
    """Depth-2 FO sentence: some vertex is adjacent to every other vertex."""
    return Exists(_X, Forall(_Y, Or(Equal(_X, _Y), Adjacent(_X, _Y))))


def has_at_most_one_vertex() -> Formula:
    """Depth-2 FO sentence: all vertices are equal."""
    return Forall(_X, Forall(_Y, Equal(_X, _Y)))


def has_isolated_vertex() -> Formula:
    """Some vertex has no neighbour (never true for connected graphs with n ≥ 2)."""
    return Exists(_X, Forall(_Y, Not(Adjacent(_X, _Y))))


def max_degree_at_most(d: int) -> Formula:
    """FO sentence: no vertex has d+1 pairwise-distinct neighbours."""
    if d < 0:
        raise ValueError("d must be non-negative")
    centre = Variable("c")
    neighbors = [Variable(f"y{i}") for i in range(d + 1)]
    distinct = []
    for i in range(d + 1):
        for j in range(i + 1, d + 1):
            distinct.append(Not(Equal(neighbors[i], neighbors[j])))
    adjacent = [Adjacent(centre, y) for y in neighbors]
    body: Formula = conjunction(*(adjacent + distinct)) if distinct else conjunction(*adjacent)
    for variable in reversed(neighbors):
        body = Exists(variable, body)
    return Forall(centre, Not(body))


def has_independent_set_of_size(k: int) -> Formula:
    """Existential FO sentence: k pairwise non-adjacent, distinct vertices."""
    if k < 1:
        raise ValueError("k must be at least 1")
    variables = [Variable(f"x{i}") for i in range(k)]
    atoms = []
    for i in range(k):
        for j in range(i + 1, k):
            atoms.append(Not(Equal(variables[i], variables[j])))
            atoms.append(Not(Adjacent(variables[i], variables[j])))
    body: Formula = conjunction(*atoms) if atoms else Equal(variables[0], variables[0])
    for variable in reversed(variables):
        body = Exists(variable, body)
    return body


# --------------------------------------------------------------------------
# MSO properties (set quantifiers)
# --------------------------------------------------------------------------


def two_colorable() -> Formula:
    """MSO: ∃A such that no edge has both endpoints in A or both outside A."""
    return ExistsSet(
        _SET_A,
        Forall(
            _X,
            Forall(
                _Y,
                Implies(
                    Adjacent(_X, _Y),
                    Not(
                        Or(
                            And(InSet(_X, _SET_A), InSet(_Y, _SET_A)),
                            And(Not(InSet(_X, _SET_A)), Not(InSet(_Y, _SET_A))),
                        )
                    ),
                ),
            ),
        ),
    )


def three_colorable() -> Formula:
    """MSO: ∃A∃B partitioning witnesses of a proper 3-colouring.

    Colour classes are A, B and the complement of A ∪ B; the formula states
    that A and B are disjoint and no edge is monochromatic.
    """
    x_in_a = InSet(_X, _SET_A)
    y_in_a = InSet(_Y, _SET_A)
    x_in_b = InSet(_X, _SET_B)
    y_in_b = InSet(_Y, _SET_B)
    x_in_c = And(Not(x_in_a), Not(x_in_b))
    y_in_c = And(Not(y_in_a), Not(y_in_b))
    no_monochromatic_edge = Forall(
        _X,
        Forall(
            _Y,
            Implies(
                Adjacent(_X, _Y),
                Not(
                    disjunction(
                        And(x_in_a, y_in_a),
                        And(x_in_b, y_in_b),
                        And(x_in_c, y_in_c),
                    )
                ),
            ),
        ),
    )
    disjoint = Forall(_Z, Not(And(InSet(_Z, _SET_A), InSet(_Z, _SET_B))))
    return ExistsSet(_SET_A, ExistsSet(_SET_B, And(disjoint, no_monochromatic_edge)))


def has_dominating_set_of_size_encoded() -> Formula:
    """MSO: ∃A dominating set (every vertex is in A or has a neighbour in A)."""
    return ExistsSet(
        _SET_A,
        Forall(
            _X,
            Or(InSet(_X, _SET_A), Exists(_Y, And(InSet(_Y, _SET_A), Adjacent(_X, _Y)))),
        ),
    )


def has_perfect_matching() -> Formula:
    """MSO (vertex-set encoding): there is a set A such that the graph induced
    on the partition classes {A, V∖A} admits a perfect pairing.

    A genuinely faithful perfect-matching formula needs edge-set quantifiers;
    on trees and bounded-treedepth graphs vertex-set MSO is equally
    expressive, but writing the translation explicitly is unwieldy.  We use a
    standard equivalent statement for *trees*: a tree has a perfect matching
    iff for every vertex v, exactly one component of T − v has odd size — the
    formula below instead encodes the simpler characterisation used by our
    automata catalogue and is provided mainly for cross-validation on small
    instances via :func:`check_perfect_matching`.
    """
    # Encoding: ∃A (the set of matched "lower" endpoints) such that every
    # vertex in A has a neighbour outside A, approximating matching structure.
    # Exact matching is validated combinatorially by check_perfect_matching.
    return ExistsSet(
        _SET_A,
        Forall(
            _X,
            Implies(
                InSet(_X, _SET_A),
                Exists(_Y, And(Not(InSet(_Y, _SET_A)), Adjacent(_X, _Y))),
            ),
        ),
    )


def connected_via_sets() -> Formula:
    """MSO: the graph is connected.

    Stated as: there is no proper non-empty vertex set A that is "closed"
    (no edge leaves A).  For a graph with at least two vertices this is
    exactly connectivity.
    """
    closed = Forall(
        _X,
        Forall(_Y, Implies(And(InSet(_X, _SET_A), Adjacent(_X, _Y)), InSet(_Y, _SET_A))),
    )
    non_empty = Exists(_X, InSet(_X, _SET_A))
    proper = Exists(_Y, Not(InSet(_Y, _SET_A)))
    return Not(ExistsSet(_SET_A, conjunction(closed, non_empty, proper)))


def acyclic_mso() -> Formula:
    """MSO: the graph has no cycle.

    Encoded through the standard characterisation: a graph contains a cycle
    iff there is a non-empty vertex set A in which every vertex has at least
    two neighbours inside A.
    """
    every_vertex_two_neighbors = Forall(
        _X,
        Implies(
            InSet(_X, _SET_A),
            Exists(
                _Y,
                Exists(
                    _Z,
                    conjunction(
                        Not(Equal(_Y, _Z)),
                        InSet(_Y, _SET_A),
                        InSet(_Z, _SET_A),
                        Adjacent(_X, _Y),
                        Adjacent(_X, _Z),
                    ),
                ),
            ),
        ),
    )
    non_empty = Exists(_X, InSet(_X, _SET_A))
    return Not(ExistsSet(_SET_A, And(non_empty, every_vertex_two_neighbors)))


# --------------------------------------------------------------------------
# Direct combinatorial checkers used to cross-validate formula semantics
# --------------------------------------------------------------------------


def check_diameter_at_most_two(graph: nx.Graph) -> bool:
    if graph.number_of_nodes() <= 1:
        return True
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    return all(
        lengths[u].get(v, float("inf")) <= 2 for u in graph.nodes() for v in graph.nodes()
    )


def check_triangle_free(graph: nx.Graph) -> bool:
    return sum(nx.triangles(graph).values()) == 0


def check_is_clique(graph: nx.Graph) -> bool:
    n = graph.number_of_nodes()
    return graph.number_of_edges() == n * (n - 1) // 2


def check_has_dominating_vertex(graph: nx.Graph) -> bool:
    n = graph.number_of_nodes()
    return any(graph.degree(v) == n - 1 for v in graph.nodes())


def check_two_colorable(graph: nx.Graph) -> bool:
    return nx.is_bipartite(graph)


def check_acyclic(graph: nx.Graph) -> bool:
    return nx.is_forest(graph)


def check_perfect_matching(graph: nx.Graph) -> bool:
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    return 2 * len(matching) == graph.number_of_nodes()


def check_max_degree_at_most(graph: nx.Graph, d: int) -> bool:
    return all(graph.degree(v) <= d for v in graph.nodes())


NAMED_PROPERTIES: Dict[str, tuple[Callable[[], Formula], Callable[[nx.Graph], bool]]] = {
    "diameter_at_most_two": (diameter_at_most_two, check_diameter_at_most_two),
    "triangle_free": (triangle_free, check_triangle_free),
    "is_clique": (is_clique, check_is_clique),
    "has_dominating_vertex": (has_dominating_vertex, check_has_dominating_vertex),
    "two_colorable": (two_colorable, check_two_colorable),
    "acyclic": (acyclic_mso, check_acyclic),
}
"""Properties with both a formula and an independent checker, used by the
cross-validation tests."""
