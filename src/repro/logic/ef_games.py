"""Ehrenfeucht–Fraïssé games (Theorem 3.3).

Two graphs satisfy exactly the same FO sentences of quantifier depth ``k``
(written :math:`G \\simeq_k H`) if and only if Duplicator has a winning
strategy in the ``k``-round EF game on them.  The paper uses this tool to
prove the correctness of the kernelization (Proposition 6.3); we use the same
tool to *test* that correctness on concrete instances.

The solver is an exact game-tree search with memoisation; it is exponential
(as any exact ≃_k decision procedure must be) and is therefore intended for
kernels and small graphs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Sequence, Tuple

import networkx as nx

Vertex = Hashable


def _is_partial_isomorphism(
    graph_a: nx.Graph,
    graph_b: nx.Graph,
    chosen_a: Sequence[Vertex],
    chosen_b: Sequence[Vertex],
) -> bool:
    """Check that position i ↦ position i is a partial isomorphism."""
    k = len(chosen_a)
    for i in range(k):
        for j in range(i + 1, k):
            same_a = chosen_a[i] == chosen_a[j]
            same_b = chosen_b[i] == chosen_b[j]
            if same_a != same_b:
                return False
            edge_a = graph_a.has_edge(chosen_a[i], chosen_a[j])
            edge_b = graph_b.has_edge(chosen_b[i], chosen_b[j])
            if edge_a != edge_b:
                return False
    return True


def duplicator_wins(
    graph_a: nx.Graph,
    graph_b: nx.Graph,
    rounds: int,
    initial_a: Sequence[Vertex] = (),
    initial_b: Sequence[Vertex] = (),
) -> bool:
    """Decide whether Duplicator wins the ``rounds``-round EF game.

    ``initial_a`` / ``initial_b`` are already-played positions (used when the
    game continues from a partial position); they must have equal length.
    """
    if len(initial_a) != len(initial_b):
        raise ValueError("initial positions must have the same length")
    vertices_a = tuple(sorted(graph_a.nodes(), key=repr))
    vertices_b = tuple(sorted(graph_b.nodes(), key=repr))

    @lru_cache(maxsize=None)
    def wins(chosen_a: Tuple[Vertex, ...], chosen_b: Tuple[Vertex, ...], k: int) -> bool:
        if not _is_partial_isomorphism(graph_a, graph_b, chosen_a, chosen_b):
            return False
        if k == 0:
            return True
        # Spoiler plays in A: Duplicator must answer in B.
        for u in vertices_a:
            if not any(wins(chosen_a + (u,), chosen_b + (v,), k - 1) for v in vertices_b):
                return False
        # Spoiler plays in B: Duplicator must answer in A.
        for v in vertices_b:
            if not any(wins(chosen_a + (u,), chosen_b + (v,), k - 1) for u in vertices_a):
                return False
        return True

    try:
        return wins(tuple(initial_a), tuple(initial_b), rounds)
    finally:
        wins.cache_clear()


def ef_equivalent(graph_a: nx.Graph, graph_b: nx.Graph, rounds: int) -> bool:
    """True when ``graph_a`` ≃_rounds ``graph_b`` (same FO sentences of that depth)."""
    return duplicator_wins(graph_a, graph_b, rounds)
