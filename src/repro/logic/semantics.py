"""Exact model checking for FO and MSO formulas.

The evaluator is the textbook recursive one: first-order quantifiers range
over the vertex set, set quantifiers range over all ``2^n`` subsets.  It is
therefore exponential and intended for kernels, gadgets and test instances —
exactly the role the paper assigns to centralized model checking once a
bounded-size kernel has been certified (Section 6).
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Dict, FrozenSet, Hashable, Iterable, Union

import networkx as nx

from repro.logic.syntax import (
    Adjacent,
    And,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Iff,
    Implies,
    InSet,
    Not,
    Or,
    SetVariable,
    Variable,
)

Vertex = Hashable
Assignment = Dict[Union[Variable, SetVariable], Union[Vertex, FrozenSet[Vertex]]]

_MAX_SET_QUANTIFIER_VERTICES = 22
"""Hard guard: a set quantifier over more vertices than this would enumerate
more than four million subsets per quantifier, which is almost certainly a
mistake (the kernels of Section 6 are far smaller)."""


def _all_subsets(vertices: Iterable[Vertex]) -> Iterable[FrozenSet[Vertex]]:
    vertices = list(vertices)
    return (
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(vertices, r) for r in range(len(vertices) + 1)
        )
    )


def evaluate(
    graph: nx.Graph, formula: Formula, assignment: Assignment | None = None
) -> bool:
    """Evaluate ``formula`` on ``graph`` under a (possibly partial) assignment.

    Free variables must be bound by ``assignment``; a :class:`KeyError` is
    raised otherwise.
    """
    assignment = dict(assignment or {})
    return _eval(graph, formula, assignment)


def satisfies(graph: nx.Graph, formula: Formula) -> bool:
    """Evaluate a *sentence* (no free variables) on ``graph``."""
    return evaluate(graph, formula, {})


def _eval(graph: nx.Graph, formula: Formula, assignment: Assignment) -> bool:
    if isinstance(formula, Equal):
        return assignment[formula.left] == assignment[formula.right]
    if isinstance(formula, Adjacent):
        left = assignment[formula.left]
        right = assignment[formula.right]
        return left != right and graph.has_edge(left, right)
    if isinstance(formula, InSet):
        return assignment[formula.element] in assignment[formula.set_variable]
    if isinstance(formula, Not):
        return not _eval(graph, formula.operand, assignment)
    if isinstance(formula, And):
        return _eval(graph, formula.left, assignment) and _eval(
            graph, formula.right, assignment
        )
    if isinstance(formula, Or):
        return _eval(graph, formula.left, assignment) or _eval(
            graph, formula.right, assignment
        )
    if isinstance(formula, Implies):
        return (not _eval(graph, formula.left, assignment)) or _eval(
            graph, formula.right, assignment
        )
    if isinstance(formula, Iff):
        return _eval(graph, formula.left, assignment) == _eval(
            graph, formula.right, assignment
        )
    if isinstance(formula, Exists):
        for vertex in graph.nodes():
            assignment[formula.variable] = vertex
            if _eval(graph, formula.body, assignment):
                del assignment[formula.variable]
                return True
        assignment.pop(formula.variable, None)
        return False
    if isinstance(formula, Forall):
        for vertex in graph.nodes():
            assignment[formula.variable] = vertex
            if not _eval(graph, formula.body, assignment):
                del assignment[formula.variable]
                return False
        assignment.pop(formula.variable, None)
        return True
    if isinstance(formula, (ExistsSet, ForallSet)):
        n = graph.number_of_nodes()
        if n > _MAX_SET_QUANTIFIER_VERTICES:
            raise ValueError(
                "refusing to enumerate subsets of a graph with "
                f"{n} > {_MAX_SET_QUANTIFIER_VERTICES} vertices; "
                "MSO model checking is meant for kernels and small instances"
            )
        existential = isinstance(formula, ExistsSet)
        for subset in _all_subsets(graph.nodes()):
            assignment[formula.variable] = subset
            value = _eval(graph, formula.body, assignment)
            if existential and value:
                del assignment[formula.variable]
                return True
            if not existential and not value:
                del assignment[formula.variable]
                return False
        assignment.pop(formula.variable, None)
        return not existential
    raise TypeError(f"unknown formula node: {formula!r}")
