"""First-order and monadic second-order logic on graphs (Section 3.2).

The package provides:

* an abstract syntax for FO and MSO formulas over the graph signature
  (equality, adjacency, set membership),
* exact model checking (exponential in the quantifier structure — intended
  for kernels and small graphs),
* a small parser for a readable concrete syntax,
* structural measures (quantifier depth, alternation) and prenex normal form,
* the Ehrenfeucht–Fraïssé game solver used to verify the kernelization
  (Theorem 3.3 / Proposition 6.3),
* a catalogue of the named properties the paper mentions.
"""

from repro.logic.syntax import (
    Adjacent,
    And,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Iff,
    Implies,
    InSet,
    Not,
    Or,
    SetVariable,
    Variable,
)
from repro.logic.semantics import evaluate, satisfies
from repro.logic.parser import parse_formula
from repro.logic.structure import (
    free_variables,
    is_existential,
    is_first_order,
    prenex_normal_form,
    quantifier_alternations,
    quantifier_depth,
)
from repro.logic.ef_games import ef_equivalent, duplicator_wins
from repro.logic import properties

__all__ = [
    "Adjacent",
    "And",
    "Equal",
    "Exists",
    "ExistsSet",
    "Forall",
    "ForallSet",
    "Formula",
    "Iff",
    "Implies",
    "InSet",
    "Not",
    "Or",
    "SetVariable",
    "Variable",
    "evaluate",
    "satisfies",
    "parse_formula",
    "free_variables",
    "is_existential",
    "is_first_order",
    "prenex_normal_form",
    "quantifier_alternations",
    "quantifier_depth",
    "ef_equivalent",
    "duplicator_wins",
    "properties",
]
