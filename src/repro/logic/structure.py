"""Structural measures and normal forms of formulas.

The paper's generic-case discussion (Section 2.2 and Lemma 2.1) classifies FO
sentences by quantifier depth and alternation, and the kernelization of
Section 6 is parameterised by quantifier depth.  This module computes those
measures and produces prenex normal forms.
"""

from __future__ import annotations

from typing import FrozenSet, Union

from repro.logic.syntax import (
    Adjacent,
    And,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Iff,
    Implies,
    InSet,
    Not,
    Or,
    SetVariable,
    Variable,
)

AnyVariable = Union[Variable, SetVariable]

_QUANTIFIERS = (Exists, Forall, ExistsSet, ForallSet)


def is_first_order(formula: Formula) -> bool:
    """True when the formula uses no set quantifier and no membership atom."""
    return not any(
        isinstance(sub, (ExistsSet, ForallSet, InSet)) for sub in formula.subformulas()
    )


def quantifier_depth(formula: Formula) -> int:
    """Maximum number of nested quantifiers (FO and MSO alike)."""
    if isinstance(formula, (Equal, Adjacent, InSet)):
        return 0
    if isinstance(formula, Not):
        return quantifier_depth(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return max(quantifier_depth(formula.left), quantifier_depth(formula.right))
    if isinstance(formula, _QUANTIFIERS):
        return 1 + quantifier_depth(formula.body)
    raise TypeError(f"unknown formula node: {formula!r}")


def free_variables(formula: Formula) -> FrozenSet[AnyVariable]:
    """Free (first-order and set) variables of a formula."""
    if isinstance(formula, Equal):
        return frozenset({formula.left, formula.right})
    if isinstance(formula, Adjacent):
        return frozenset({formula.left, formula.right})
    if isinstance(formula, InSet):
        return frozenset({formula.element, formula.set_variable})
    if isinstance(formula, Not):
        return free_variables(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, _QUANTIFIERS):
        return free_variables(formula.body) - {formula.variable}
    raise TypeError(f"unknown formula node: {formula!r}")


def is_sentence(formula: Formula) -> bool:
    """True when the formula has no free variables."""
    return not free_variables(formula)


def _eliminate_derived(formula: Formula) -> Formula:
    """Rewrite ``->`` and ``<->`` in terms of ``&``, ``|`` and ``!``."""
    if isinstance(formula, (Equal, Adjacent, InSet)):
        return formula
    if isinstance(formula, Not):
        return Not(_eliminate_derived(formula.operand))
    if isinstance(formula, And):
        return And(_eliminate_derived(formula.left), _eliminate_derived(formula.right))
    if isinstance(formula, Or):
        return Or(_eliminate_derived(formula.left), _eliminate_derived(formula.right))
    if isinstance(formula, Implies):
        return Or(Not(_eliminate_derived(formula.left)), _eliminate_derived(formula.right))
    if isinstance(formula, Iff):
        left = _eliminate_derived(formula.left)
        right = _eliminate_derived(formula.right)
        return And(Or(Not(left), right), Or(Not(right), left))
    if isinstance(formula, Exists):
        return Exists(formula.variable, _eliminate_derived(formula.body))
    if isinstance(formula, Forall):
        return Forall(formula.variable, _eliminate_derived(formula.body))
    if isinstance(formula, ExistsSet):
        return ExistsSet(formula.variable, _eliminate_derived(formula.body))
    if isinstance(formula, ForallSet):
        return ForallSet(formula.variable, _eliminate_derived(formula.body))
    raise TypeError(f"unknown formula node: {formula!r}")


def _negation_normal_form(formula: Formula) -> Formula:
    """Push negations down to atoms (after derived connectives are removed)."""
    if isinstance(formula, (Equal, Adjacent, InSet)):
        return formula
    if isinstance(formula, And):
        return And(_negation_normal_form(formula.left), _negation_normal_form(formula.right))
    if isinstance(formula, Or):
        return Or(_negation_normal_form(formula.left), _negation_normal_form(formula.right))
    if isinstance(formula, Exists):
        return Exists(formula.variable, _negation_normal_form(formula.body))
    if isinstance(formula, Forall):
        return Forall(formula.variable, _negation_normal_form(formula.body))
    if isinstance(formula, ExistsSet):
        return ExistsSet(formula.variable, _negation_normal_form(formula.body))
    if isinstance(formula, ForallSet):
        return ForallSet(formula.variable, _negation_normal_form(formula.body))
    if isinstance(formula, Not):
        inner = formula.operand
        if isinstance(inner, (Equal, Adjacent, InSet)):
            return formula
        if isinstance(inner, Not):
            return _negation_normal_form(inner.operand)
        if isinstance(inner, And):
            return Or(
                _negation_normal_form(Not(inner.left)),
                _negation_normal_form(Not(inner.right)),
            )
        if isinstance(inner, Or):
            return And(
                _negation_normal_form(Not(inner.left)),
                _negation_normal_form(Not(inner.right)),
            )
        if isinstance(inner, Exists):
            return Forall(inner.variable, _negation_normal_form(Not(inner.body)))
        if isinstance(inner, Forall):
            return Exists(inner.variable, _negation_normal_form(Not(inner.body)))
        if isinstance(inner, ExistsSet):
            return ForallSet(inner.variable, _negation_normal_form(Not(inner.body)))
        if isinstance(inner, ForallSet):
            return ExistsSet(inner.variable, _negation_normal_form(Not(inner.body)))
    raise TypeError(f"unknown formula node: {formula!r}")


def negation_normal_form(formula: Formula) -> Formula:
    """Negation normal form (negations only on atoms, no -> or <->)."""
    return _negation_normal_form(_eliminate_derived(formula))


def _fresh_name(base: str, used: set[str]) -> str:
    if base not in used:
        return base
    counter = 1
    while f"{base}_{counter}" in used:
        counter += 1
    return f"{base}_{counter}"


def _rename(formula: Formula, mapping: dict[AnyVariable, AnyVariable]) -> Formula:
    if isinstance(formula, Equal):
        return Equal(mapping.get(formula.left, formula.left), mapping.get(formula.right, formula.right))
    if isinstance(formula, Adjacent):
        return Adjacent(mapping.get(formula.left, formula.left), mapping.get(formula.right, formula.right))
    if isinstance(formula, InSet):
        return InSet(
            mapping.get(formula.element, formula.element),
            mapping.get(formula.set_variable, formula.set_variable),
        )
    if isinstance(formula, Not):
        return Not(_rename(formula.operand, mapping))
    if isinstance(formula, And):
        return And(_rename(formula.left, mapping), _rename(formula.right, mapping))
    if isinstance(formula, Or):
        return Or(_rename(formula.left, mapping), _rename(formula.right, mapping))
    if isinstance(formula, _QUANTIFIERS):
        inner_mapping = {k: v for k, v in mapping.items() if k != formula.variable}
        return type(formula)(formula.variable, _rename(formula.body, inner_mapping))
    raise TypeError(f"unknown formula node in rename: {formula!r}")


def prenex_normal_form(formula: Formula) -> Formula:
    """Prenex normal form: all quantifiers pulled to the front.

    Works on formulas built from atoms, ``&``, ``|``, ``!``, ``->``, ``<->``
    and quantifiers; bound variables are renamed apart when necessary.
    """
    nnf = negation_normal_form(formula)
    used_names: set[str] = set()
    for sub in nnf.subformulas():
        if isinstance(sub, _QUANTIFIERS):
            used_names.add(sub.variable.name)
        for variable in free_variables(nnf):
            used_names.add(variable.name)

    def pull(node: Formula) -> tuple[list[tuple[type, AnyVariable]], Formula]:
        if isinstance(node, (Equal, Adjacent, InSet)):
            return [], node
        if isinstance(node, Not):
            # In NNF, negation only wraps atoms.
            return [], node
        if isinstance(node, _QUANTIFIERS):
            prefix, matrix = pull(node.body)
            return [(type(node), node.variable)] + prefix, matrix
        if isinstance(node, (And, Or)):
            left_prefix, left_matrix = pull(node.left)
            right_prefix, right_matrix = pull(node.right)
            # Rename the right prefix apart from the left one.
            mapping: dict[AnyVariable, AnyVariable] = {}
            renamed_right_prefix = []
            taken = {variable.name for _, variable in left_prefix} | used_names
            for quantifier, variable in right_prefix:
                if variable.name in taken:
                    fresh = _fresh_name(variable.name, taken)
                    taken.add(fresh)
                    new_variable = (
                        SetVariable(fresh) if isinstance(variable, SetVariable) else Variable(fresh)
                    )
                    mapping[variable] = new_variable
                    renamed_right_prefix.append((quantifier, new_variable))
                else:
                    taken.add(variable.name)
                    renamed_right_prefix.append((quantifier, variable))
            if mapping:
                right_matrix = _rename(right_matrix, mapping)
            connective = And if isinstance(node, And) else Or
            return left_prefix + renamed_right_prefix, connective(left_matrix, right_matrix)
        raise TypeError(f"unexpected node in prenex conversion: {node!r}")

    prefix, matrix = pull(nnf)
    result = matrix
    for quantifier, variable in reversed(prefix):
        result = quantifier(variable, result)
    return result


def quantifier_alternations(formula: Formula) -> int:
    """Number of alternations between existential and universal blocks in the
    prenex normal form of the formula."""
    prenex = prenex_normal_form(formula)
    kinds = []
    node = prenex
    while isinstance(node, _QUANTIFIERS):
        kinds.append("E" if isinstance(node, (Exists, ExistsSet)) else "A")
        node = node.body
    alternations = 0
    for previous, current in zip(kinds, kinds[1:]):
        if previous != current:
            alternations += 1
    return alternations


def is_existential(formula: Formula) -> bool:
    """True when the prenex normal form only has existential quantifiers."""
    prenex = prenex_normal_form(formula)
    node = prenex
    while isinstance(node, _QUANTIFIERS):
        if isinstance(node, (Forall, ForallSet)):
            return False
        node = node.body
    return True
