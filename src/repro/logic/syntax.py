"""Abstract syntax of FO and MSO formulas on graphs.

The signature is the one of the paper (Section 3.2): first-order variables
range over vertices, monadic second-order variables range over *sets* of
vertices, and the atomic predicates are equality ``x = y``, adjacency
``x - y`` and set membership ``x ∈ X``.  Formulas are immutable trees of
dataclasses; they hash and compare structurally, which the type-based
constructions rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Variable:
    """A first-order variable, ranging over vertices."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SetVariable:
    """A monadic second-order variable, ranging over sets of vertices."""

    name: str

    def __str__(self) -> str:
        return self.name


class Formula:
    """Base class of all formula nodes (purely a marker / shared helpers)."""

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def subformulas(self) -> Iterator["Formula"]:
        """Yield this formula and every strict subformula (pre-order)."""
        yield self
        for child in self.children():
            yield from child.subformulas()

    def children(self) -> tuple["Formula", ...]:
        return ()


# --------------------------------------------------------------------------
# Atomic formulas
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Equal(Formula):
    """``left = right``."""

    left: Variable
    right: Variable

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Adjacent(Formula):
    """``left - right`` (the vertices are adjacent)."""

    left: Variable
    right: Variable

    def __str__(self) -> str:
        return f"{self.left} ~ {self.right}"


@dataclass(frozen=True)
class InSet(Formula):
    """``element ∈ set_variable``."""

    element: Variable
    set_variable: SetVariable

    def __str__(self) -> str:
        return f"{self.element} in {self.set_variable}"


# --------------------------------------------------------------------------
# Boolean connectives
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


# --------------------------------------------------------------------------
# Quantifiers
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Exists(Formula):
    """First-order existential quantification over vertices."""

    variable: Variable
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"exists {self.variable}. {self.body}"


@dataclass(frozen=True)
class Forall(Formula):
    """First-order universal quantification over vertices."""

    variable: Variable
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"forall {self.variable}. {self.body}"


@dataclass(frozen=True)
class ExistsSet(Formula):
    """Monadic second-order existential quantification over vertex sets."""

    variable: SetVariable
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"existsS {self.variable}. {self.body}"


@dataclass(frozen=True)
class ForallSet(Formula):
    """Monadic second-order universal quantification over vertex sets."""

    variable: SetVariable
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"forallS {self.variable}. {self.body}"


# Convenience constructors -------------------------------------------------


def var(name: str) -> Variable:
    """Shorthand for :class:`Variable`."""
    return Variable(name)


def setvar(name: str) -> SetVariable:
    """Shorthand for :class:`SetVariable`."""
    return SetVariable(name)


def adjacent(x: str | Variable, y: str | Variable) -> Adjacent:
    """Adjacency atom from variable names or variables."""
    return Adjacent(_as_var(x), _as_var(y))


def equal(x: str | Variable, y: str | Variable) -> Equal:
    """Equality atom from variable names or variables."""
    return Equal(_as_var(x), _as_var(y))


def conjunction(*formulas: Formula) -> Formula:
    """Left-nested conjunction of one or more formulas."""
    if not formulas:
        raise ValueError("conjunction needs at least one conjunct")
    result = formulas[0]
    for formula in formulas[1:]:
        result = And(result, formula)
    return result


def disjunction(*formulas: Formula) -> Formula:
    """Left-nested disjunction of one or more formulas."""
    if not formulas:
        raise ValueError("disjunction needs at least one disjunct")
    result = formulas[0]
    for formula in formulas[1:]:
        result = Or(result, formula)
    return result


def _as_var(value: str | Variable) -> Variable:
    return value if isinstance(value, Variable) else Variable(value)
