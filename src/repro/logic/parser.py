"""A small parser for a readable FO/MSO concrete syntax.

Grammar (lowest to highest precedence)::

    formula   := iff
    iff       := implies ('<->' implies)*
    implies   := or ('->' or)*            (right associative)
    or        := and ('|' and)*
    and       := unary ('&' unary)*
    unary     := '!' unary | quantified | atom | '(' formula ')'
    quantified:= ('exists'|'forall') NAME '.' formula
               | ('existsS'|'forallS') NAME '.' formula
    atom      := NAME '=' NAME | NAME '~' NAME | NAME 'in' NAME

First-order variables are lower-case names, set variables are the names used
after ``existsS``/``forallS`` or on the right of ``in`` (conventionally
upper-case).  ``~`` denotes adjacency, matching the paper's ``x − y``.

Examples::

    parse_formula("forall x. forall y. (x = y | x ~ y | exists z. (x ~ z & z ~ y))")
    parse_formula("existsS X. forall x. (x in X | exists y. (y in X & x ~ y))")
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.logic.syntax import (
    Adjacent,
    And,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Iff,
    Implies,
    InSet,
    Not,
    Or,
    SetVariable,
    Variable,
)


class _Token(NamedTuple):
    kind: str
    value: str
    pos: int
    """Character offset of the token in the source text — carried so parse
    errors can point at the offending token (the wire's ``invalid-formula``
    messages quote it)."""


_TOKEN_SPEC = [
    ("ARROW2", r"<->"),
    ("ARROW", r"->"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("AND", r"&"),
    ("OR", r"\|"),
    ("NOT", r"!"),
    ("EQ", r"="),
    ("ADJ", r"~"),
    ("DOT", r"\."),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("SKIP", r"\s+"),
    ("ERROR", r"."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{kind}>{pattern})" for kind, pattern in _TOKEN_SPEC))

_KEYWORDS = {"exists", "forall", "existsS", "forallS", "in"}


class ParseError(ValueError):
    """Raised on malformed formula text."""


def _tokenize(text: str) -> Iterator[_Token]:
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group()
        if kind == "SKIP":
            continue
        if kind == "ERROR":
            raise ParseError(
                f"unexpected character {value!r} at position {match.start()}"
            )
        if kind == "NAME" and value in _KEYWORDS:
            yield _Token(value.upper(), value, match.start())
        else:
            yield _Token(kind, value, match.start())


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = list(_tokenize(text))
        self.position = 0
        self.end = len(text)
        self.set_variables: set[str] = set()

    def peek(self) -> _Token | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input at position {self.end}")
        self.position += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.advance()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.value!r} at position {token.pos}"
            )
        return token

    # Grammar rules --------------------------------------------------------

    def parse(self) -> Formula:
        formula = self.parse_iff()
        token = self.peek()
        if token is not None:
            raise ParseError(
                f"trailing input starting at {token.value!r} at position {token.pos}"
            )
        return formula

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        while self.peek() is not None and self.peek().kind == "ARROW2":
            self.advance()
            right = self.parse_implies()
            left = Iff(left, right)
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.peek() is not None and self.peek().kind == "ARROW":
            self.advance()
            right = self.parse_implies()
            return Implies(left, right)
        return left

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.peek() is not None and self.peek().kind == "OR":
            self.advance()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Formula:
        left = self.parse_unary()
        while self.peek() is not None and self.peek().kind == "AND":
            self.advance()
            left = And(left, self.parse_unary())
        return left

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input at position {self.end}")
        if token.kind == "NOT":
            self.advance()
            return Not(self.parse_unary())
        if token.kind in {"EXISTS", "FORALL", "EXISTSS", "FORALLS"}:
            return self.parse_quantified()
        if token.kind == "LPAREN":
            self.advance()
            inner = self.parse_iff()
            self.expect("RPAREN")
            return inner
        if token.kind == "NAME":
            return self.parse_atom()
        raise ParseError(
            f"unexpected token {token.value!r} at position {token.pos}"
        )

    def parse_quantified(self) -> Formula:
        token = self.advance()
        name = self.expect("NAME").value
        self.expect("DOT")
        if token.kind in {"EXISTSS", "FORALLS"}:
            self.set_variables.add(name)
            body = self.parse_unary_or_rest()
            node = ExistsSet if token.kind == "EXISTSS" else ForallSet
            return node(SetVariable(name), body)
        body = self.parse_unary_or_rest()
        node = Exists if token.kind == "EXISTS" else Forall
        return node(Variable(name), body)

    def parse_unary_or_rest(self) -> Formula:
        # The body of a quantifier extends as far to the right as possible.
        return self.parse_iff()

    def parse_atom(self) -> Formula:
        left = self.expect("NAME").value
        operator = self.advance()
        if operator.kind == "EQ":
            right = self.expect("NAME").value
            return Equal(Variable(left), Variable(right))
        if operator.kind == "ADJ":
            right = self.expect("NAME").value
            return Adjacent(Variable(left), Variable(right))
        if operator.kind == "IN":
            right = self.expect("NAME").value
            self.set_variables.add(right)
            return InSet(Variable(left), SetVariable(right))
        raise ParseError(
            f"expected '=', '~' or 'in' after {left!r}, found {operator.value!r} "
            f"at position {operator.pos}"
        )


def parse_formula(text: str) -> Formula:
    """Parse a formula from its concrete syntax.  See the module docstring."""
    return _Parser(text).parse()
