"""Classic locally checkable labelings (Naor–Stockmeyer).

An LCL problem on graphs of maximum degree Δ is given by a finite output
alphabet and a finite list of *allowed centered neighbourhoods*: a labeling
is correct when, at every vertex, the pair (own label, multiset of the
neighbours' labels) appears in the list.  Because the degree is bounded and
the alphabet finite, the list is finite — which is precisely the assumption
that breaks on unbounded-degree graphs and motivates the Presburger
generalisation of Appendix C.2 (see :mod:`repro.lcl.presburger_lcl`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

Vertex = Hashable
Label = Hashable
#: A centered neighbourhood: the vertex's own label plus the multiset of its
#: neighbours' labels, stored as a sorted tuple of (label, count) pairs.
Neighborhood = Tuple[Label, Tuple[Tuple[Label, int], ...]]


def make_neighborhood(own: Label, neighbor_labels: Iterable[Label]) -> Neighborhood:
    """Canonical form of a centered neighbourhood."""
    counts = Counter(neighbor_labels)
    return own, tuple(sorted(counts.items(), key=repr))


@dataclass(frozen=True)
class LCLProblem:
    """A bounded-degree locally checkable labeling problem."""

    name: str
    labels: FrozenSet[Label]
    max_degree: int
    allowed: FrozenSet[Neighborhood]

    def __post_init__(self) -> None:
        if self.max_degree < 0:
            raise ValueError("max_degree must be non-negative")
        for own, counts in self.allowed:
            if own not in self.labels:
                raise ValueError(f"allowed neighbourhood uses unknown center label {own!r}")
            degree = sum(count for _, count in counts)
            if degree > self.max_degree:
                raise ValueError("allowed neighbourhood exceeds the declared maximum degree")
            for label, count in counts:
                if label not in self.labels:
                    raise ValueError(f"allowed neighbourhood uses unknown label {label!r}")
                if count < 0:
                    raise ValueError("neighbourhood counts must be non-negative")

    def neighborhood_allowed(self, own: Label, neighbor_labels: Iterable[Label]) -> bool:
        return make_neighborhood(own, neighbor_labels) in self.allowed

    def vertex_is_happy(
        self, graph: nx.Graph, labeling: Mapping[Vertex, Label], vertex: Vertex
    ) -> bool:
        """The radius-1 check one vertex performs."""
        if vertex not in labeling or labeling[vertex] not in self.labels:
            return False
        if graph.degree(vertex) > self.max_degree:
            return False
        neighbor_labels = []
        for neighbor in graph.neighbors(vertex):
            if neighbor not in labeling:
                return False
            neighbor_labels.append(labeling[neighbor])
        return self.neighborhood_allowed(labeling[vertex], neighbor_labels)


def is_correct_labeling(
    problem: LCLProblem, graph: nx.Graph, labeling: Mapping[Vertex, Label]
) -> bool:
    """Global correctness: every vertex is locally happy."""
    return all(problem.vertex_is_happy(graph, labeling, vertex) for vertex in graph.nodes())


def unhappy_vertices(
    problem: LCLProblem, graph: nx.Graph, labeling: Mapping[Vertex, Label]
) -> List[Vertex]:
    """The vertices whose radius-1 check fails (for diagnostics and tests)."""
    return [v for v in graph.nodes() if not problem.vertex_is_happy(graph, labeling, v)]


def enumerate_neighborhoods(
    labels: Iterable[Label], max_degree: int, predicate
) -> FrozenSet[Neighborhood]:
    """All centered neighbourhoods over ``labels`` up to ``max_degree`` that
    satisfy ``predicate(own_label, Counter_of_neighbor_labels)``.

    This is the helper the classic problem constructors use: the predicate is
    the semantic condition ("no neighbour shares my colour", "some neighbour
    is in the set", ...) and the enumeration materialises it as the finite
    allowed-neighbourhood list the Naor–Stockmeyer formalism requires.
    """
    labels = sorted(set(labels), key=repr)
    allowed: set = set()

    def distribute(remaining: int, index: int, current: Dict[Label, int]) -> Iterable[Dict[Label, int]]:
        if index == len(labels) - 1:
            final = dict(current)
            final[labels[index]] = remaining
            yield final
            return
        for count in range(remaining + 1):
            current[labels[index]] = count
            yield from distribute(remaining - count, index + 1, current)
        current.pop(labels[index], None)

    for own in labels:
        for degree in range(max_degree + 1):
            if not labels:
                continue
            for counts in distribute(degree, 0, {}):
                counter = Counter({label: c for label, c in counts.items() if c})
                if predicate(own, counter):
                    allowed.add(make_neighborhood(own, counter.elements()))
    return frozenset(allowed)
