"""Classic LCL problems in both formalisms, plus small solvers.

Three textbook locally checkable labelings:

* *proper c-colouring* — no neighbour shares the vertex's colour;
* *maximal independent set* — labels ``in``/``out``; no two ``in`` vertices
  are adjacent and every ``out`` vertex has an ``in`` neighbour (maximality
  is what makes this locally checkable, plain independence alone would also
  be);
* *dominating set* — labels ``in``/``out``; every ``out`` vertex has an
  ``in`` neighbour.

Each problem is provided as a bounded-degree :class:`~repro.lcl.problem.LCLProblem`
(the Naor–Stockmeyer formalism requires the degree bound) and as an
unbounded-degree :class:`~repro.lcl.presburger_lcl.PresburgerLCL` — the
comparison between the two descriptions (finite list that grows with Δ
versus a constant-size constraint) is the Appendix C.2 argument in code.
The greedy solvers produce correct labelings to feed tests, examples and the
witness certification scheme.
"""

from __future__ import annotations

from typing import Dict, Hashable

import networkx as nx

from repro.automata.presburger import AlwaysTrue, CountAtLeast, CountAtMost
from repro.lcl.presburger_lcl import PresburgerLCL
from repro.lcl.problem import LCLProblem, enumerate_neighborhoods

Vertex = Hashable

IN = "in"
OUT = "out"


# ---------------------------------------------------------------------------
# Bounded-degree (classic) formulations
# ---------------------------------------------------------------------------


def proper_coloring_lcl(colors: int, max_degree: int) -> LCLProblem:
    """Proper colouring with ``colors`` colours on graphs of degree ≤ Δ."""
    if colors < 1:
        raise ValueError("colors must be positive")
    labels = frozenset(range(colors))
    allowed = enumerate_neighborhoods(
        labels, max_degree, lambda own, counts: counts.get(own, 0) == 0
    )
    return LCLProblem(
        name=f"proper-{colors}-coloring(maxdeg {max_degree})",
        labels=labels,
        max_degree=max_degree,
        allowed=allowed,
    )


def maximal_independent_set_lcl(max_degree: int) -> LCLProblem:
    """Maximal independent set: in-vertices independent, out-vertices dominated."""
    labels = frozenset({IN, OUT})

    def predicate(own, counts):
        if own == IN:
            return counts.get(IN, 0) == 0
        return counts.get(IN, 0) >= 1

    return LCLProblem(
        name=f"maximal-independent-set(maxdeg {max_degree})",
        labels=labels,
        max_degree=max_degree,
        allowed=enumerate_neighborhoods(labels, max_degree, predicate),
    )


def dominating_set_lcl(max_degree: int) -> LCLProblem:
    """Dominating set: every out-vertex has an in-neighbour."""
    labels = frozenset({IN, OUT})

    def predicate(own, counts):
        return own == IN or counts.get(IN, 0) >= 1

    return LCLProblem(
        name=f"dominating-set(maxdeg {max_degree})",
        labels=labels,
        max_degree=max_degree,
        allowed=enumerate_neighborhoods(labels, max_degree, predicate),
    )


# ---------------------------------------------------------------------------
# Unbounded-degree (Presburger) formulations
# ---------------------------------------------------------------------------


def presburger_proper_coloring(colors: int) -> PresburgerLCL:
    """Proper colouring with no degree bound: "zero neighbours of my colour"."""
    if colors < 1:
        raise ValueError("colors must be positive")
    labels = frozenset(range(colors))
    constraints = {color: CountAtMost(color, 0) for color in labels}
    return PresburgerLCL(name=f"presburger-proper-{colors}-coloring", labels=labels,
                         constraints=constraints)


def presburger_maximal_independent_set() -> PresburgerLCL:
    """MIS with no degree bound: ``in`` forbids ``in`` neighbours, ``out`` needs one."""
    return PresburgerLCL(
        name="presburger-maximal-independent-set",
        labels=frozenset({IN, OUT}),
        constraints={IN: CountAtMost(IN, 0), OUT: CountAtLeast(IN, 1)},
    )


def presburger_dominating_set() -> PresburgerLCL:
    """Dominating set with no degree bound."""
    return PresburgerLCL(
        name="presburger-dominating-set",
        labels=frozenset({IN, OUT}),
        constraints={IN: AlwaysTrue(), OUT: CountAtLeast(IN, 1)},
    )


# ---------------------------------------------------------------------------
# Solvers
# ---------------------------------------------------------------------------


def greedy_proper_coloring(graph: nx.Graph, colors: int) -> Dict[Vertex, int]:
    """A proper colouring with at most ``colors`` colours, or ``ValueError``.

    DSATUR greedy; on graphs where the greedy needs more colours than allowed
    the caller should fall back to an exact scheme (the certification tests
    use :class:`repro.core.simple_schemes.ProperColoringScheme` for that).
    """
    coloring = nx.greedy_color(graph, strategy="DSATUR")
    if coloring and max(coloring.values()) >= colors:
        raise ValueError(f"greedy colouring needed more than {colors} colours")
    return coloring


def greedy_maximal_independent_set(graph: nx.Graph) -> Dict[Vertex, str]:
    """Label vertices in/out according to a greedily-built maximal independent set."""
    chosen = set()
    for vertex in sorted(graph.nodes(), key=repr):
        if not any(neighbor in chosen for neighbor in graph.neighbors(vertex)):
            chosen.add(vertex)
    return {v: IN if v in chosen else OUT for v in graph.nodes()}


def greedy_dominating_set(graph: nx.Graph) -> Dict[Vertex, str]:
    """Label vertices in/out according to a greedy dominating set."""
    dominated: set = set()
    chosen: set = set()
    for vertex in sorted(graph.nodes(), key=lambda v: (-graph.degree(v), repr(v))):
        if vertex not in dominated or not any(w in chosen for w in graph.neighbors(vertex)):
            if vertex not in dominated:
                chosen.add(vertex)
                dominated.add(vertex)
                dominated.update(graph.neighbors(vertex))
    # Ensure every vertex is dominated (isolated corner cases).
    for vertex in graph.nodes():
        if vertex not in dominated:
            chosen.add(vertex)
            dominated.add(vertex)
            dominated.update(graph.neighbors(vertex))
    return {v: IN if v in chosen else OUT for v in graph.nodes()}
