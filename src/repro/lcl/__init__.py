"""Locally checkable labelings and their unbounded-degree generalisation.

Appendix C.2 of the paper argues that the transition shape of unary ordering
Presburger (UOP) tree automata — "compare, per state, the number of
neighbours in that state against fixed constants" — is a natural way to
generalise Naor–Stockmeyer locally checkable labelings (LCLs) beyond bounded
degree graphs.  This subpackage makes the suggestion concrete:

* :mod:`repro.lcl.problem` — the classic bounded-degree LCL definition (a
  finite list of allowed centered neighbourhoods) and its checker;
* :mod:`repro.lcl.presburger_lcl` — the generalisation where the allowed
  neighbourhoods of a label are described by a UOP constraint on the
  multiset of neighbouring labels, reusing the constraint language of
  :mod:`repro.automata.presburger`;
* :mod:`repro.lcl.classic` — colouring, maximal independent set and
  dominating set expressed in both formalisms, plus small solvers;
* :mod:`repro.lcl.scheme` — the bridge to local certification: exhibiting a
  correct labeling is an O(log |labels|)-bit certification of the property
  "a correct labeling exists".
"""

from repro.lcl.problem import LCLProblem, Neighborhood, is_correct_labeling
from repro.lcl.presburger_lcl import PresburgerLCL, lcl_to_presburger
from repro.lcl.classic import (
    dominating_set_lcl,
    greedy_dominating_set,
    greedy_maximal_independent_set,
    greedy_proper_coloring,
    maximal_independent_set_lcl,
    proper_coloring_lcl,
    presburger_dominating_set,
    presburger_maximal_independent_set,
    presburger_proper_coloring,
)
from repro.lcl.scheme import LCLWitnessScheme

__all__ = [
    "LCLProblem",
    "Neighborhood",
    "is_correct_labeling",
    "PresburgerLCL",
    "lcl_to_presburger",
    "proper_coloring_lcl",
    "maximal_independent_set_lcl",
    "dominating_set_lcl",
    "presburger_proper_coloring",
    "presburger_maximal_independent_set",
    "presburger_dominating_set",
    "greedy_proper_coloring",
    "greedy_maximal_independent_set",
    "greedy_dominating_set",
    "LCLWitnessScheme",
]
