"""From LCL solutions to local certification.

Exhibiting a correct labeling of an LCL problem is a local certification of
the property "a correct labeling exists": the certificate of a vertex is its
output label (O(log |alphabet|) = O(1) bits) and the verifier re-runs the
LCL's radius-1 check.  This is how the constant-size schemes of
Theorem 2.2 look from the LCL side, and it is the bridge the Appendix C.2
discussion builds on.  The scheme works for both formalisms; internally
everything is evaluated through the Presburger form, which has no degree
bound.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Callable, Dict, Hashable, Mapping, Optional

import networkx as nx

from repro.core.encoding import CertificateFormatError, CertificateReader, CertificateWriter
from repro.core.scheme import CertificationScheme, Certificates, NotAYesInstance
from repro.lcl.presburger_lcl import PresburgerLCL, lcl_to_presburger
from repro.lcl.problem import LCLProblem
from repro.network.ids import IdentifierAssignment
from repro.network.views import LocalView

Vertex = Hashable
Label = Hashable
Solver = Callable[[nx.Graph], Optional[Mapping[Vertex, Label]]]

_EXHAUSTIVE_LIMIT = 200_000


class LCLWitnessScheme(CertificationScheme):
    """Certify "the graph admits a correct labeling of this LCL problem"."""

    def __init__(
        self,
        problem: LCLProblem | PresburgerLCL,
        solver: Optional[Solver] = None,
    ) -> None:
        if isinstance(problem, LCLProblem):
            self.presburger = lcl_to_presburger(problem)
        else:
            self.presburger = problem
        self.solver = solver
        self.name = f"lcl-witness[{self.presburger.name}]"
        self._labels = sorted(self.presburger.labels, key=repr)
        self._label_index = {label: i for i, label in enumerate(self._labels)}

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    def _find_labeling(self, graph: nx.Graph) -> Optional[Dict[Vertex, Label]]:
        if self.solver is not None:
            candidate = self.solver(graph)
            if candidate is not None and self.presburger.is_correct_labeling(graph, candidate):
                return dict(candidate)
        vertices = sorted(graph.nodes(), key=repr)
        space = len(self._labels) ** len(vertices)
        if space > _EXHAUSTIVE_LIMIT:
            if self.solver is not None:
                return None
            raise ValueError(
                f"exhaustive search over {space} labelings is too large; provide a solver"
            )
        for assignment in itertools.product(self._labels, repeat=len(vertices)):
            labeling = dict(zip(vertices, assignment))
            if self.presburger.is_correct_labeling(graph, labeling):
                return labeling
        return None

    def holds(self, graph: nx.Graph) -> bool:
        return self._find_labeling(graph) is not None

    # ------------------------------------------------------------------
    # Prover and verifier
    # ------------------------------------------------------------------

    def prove(self, graph: nx.Graph, ids: IdentifierAssignment) -> Certificates:
        labeling = self._find_labeling(graph)
        if labeling is None:
            raise NotAYesInstance("no correct labeling exists (or the solver found none)")
        certificates: Certificates = {}
        for vertex in graph.nodes():
            writer = CertificateWriter()
            writer.write_uint(self._label_index[labeling[vertex]])
            certificates[vertex] = writer.getvalue()
        return certificates

    def verify(self, view: LocalView) -> bool:
        try:
            my_label = self._decode(view.certificate)
            neighbor_labels = [self._decode(info.certificate) for info in view.neighbors]
        except CertificateFormatError:
            return False
        counts = Counter(neighbor_labels)
        return self.presburger.constraints[my_label].evaluate(counts)

    def _decode(self, certificate: bytes) -> Label:
        reader = CertificateReader(certificate)
        index = reader.read_uint()
        reader.expect_end()
        if index >= len(self._labels):
            raise CertificateFormatError("label index out of range")
        return self._labels[index]
