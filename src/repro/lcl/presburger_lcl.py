"""The unbounded-degree LCL generalisation via UOP constraints (Appendix C.2).

A :class:`PresburgerLCL` assigns to every output label a unary ordering
Presburger constraint over the multiset of neighbouring labels: a labeling
is correct when, at every vertex, the constraint of its own label is
satisfied by the counts of its neighbours' labels.  Because UOP constraints
only compare per-label counts to fixed constants, the description stays
finite even though the degree is unbounded — this is exactly the transition
shape of the tree automata that capture MSO on trees (Section 4), which is
why the paper proposes it as the right generalisation of LCLs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping

import networkx as nx

from repro.automata.presburger import (
    CountAtLeast,
    CountAtMost,
    CountExactly,
    UOPConstraint,
    conjunction,
    disjunction,
)
from repro.lcl.problem import LCLProblem

Vertex = Hashable
Label = Hashable


@dataclass(frozen=True)
class PresburgerLCL:
    """An LCL whose neighbourhood conditions are UOP constraints per label."""

    name: str
    labels: FrozenSet[Label]
    constraints: Mapping[Label, UOPConstraint]

    def __post_init__(self) -> None:
        missing = set(self.labels) - set(self.constraints)
        if missing:
            raise ValueError(f"labels without a constraint: {sorted(map(repr, missing))}")
        unknown = set(self.constraints) - set(self.labels)
        if unknown:
            raise ValueError(f"constraints for unknown labels: {sorted(map(repr, unknown))}")

    def vertex_is_happy(
        self, graph: nx.Graph, labeling: Mapping[Vertex, Label], vertex: Vertex
    ) -> bool:
        if vertex not in labeling or labeling[vertex] not in self.labels:
            return False
        counts: Dict[Label, int] = Counter()
        for neighbor in graph.neighbors(vertex):
            if neighbor not in labeling or labeling[neighbor] not in self.labels:
                return False
            counts[labeling[neighbor]] += 1
        return self.constraints[labeling[vertex]].evaluate(counts)

    def is_correct_labeling(self, graph: nx.Graph, labeling: Mapping[Vertex, Label]) -> bool:
        return all(self.vertex_is_happy(graph, labeling, v) for v in graph.nodes())

    def unhappy_vertices(self, graph: nx.Graph, labeling: Mapping[Vertex, Label]) -> List[Vertex]:
        return [v for v in graph.nodes() if not self.vertex_is_happy(graph, labeling, v)]


def lcl_to_presburger(problem: LCLProblem) -> PresburgerLCL:
    """Compile a bounded-degree LCL into the Presburger formalism.

    Every allowed centered neighbourhood (own label, exact multiset) becomes
    an exact-count conjunction; the constraint of a label is the disjunction
    over its allowed neighbourhoods.  The translation preserves correctness
    on graphs respecting the original degree bound and *rejects* higher
    degrees (no neighbourhood of a larger degree was allowed), which the
    round-trip tests verify.
    """
    per_label: Dict[Label, List[UOPConstraint]] = {label: [] for label in problem.labels}
    all_labels = sorted(problem.labels, key=repr)
    for own, counts in problem.allowed:
        present = dict(counts)
        atoms = [CountExactly(label, present.get(label, 0)) for label in all_labels]
        per_label[own].append(conjunction(*atoms))
    constraints = {
        label: disjunction(*options) if options else _unsatisfiable(all_labels)
        for label, options in per_label.items()
    }
    return PresburgerLCL(
        name=f"presburger[{problem.name}]",
        labels=problem.labels,
        constraints=constraints,
    )


def _unsatisfiable(labels) -> UOPConstraint:
    """A constraint no multiset satisfies (used for labels with no allowed
    neighbourhood): some label must occur both at least once and zero times."""
    if not labels:
        return CountAtLeast("__none__", 1)
    first = labels[0]
    return CountAtLeast(first, 1) & CountAtMost(first, 0)
