"""Tree automata on unordered, unranked rooted trees (Section 4).

The paper certifies MSO properties of trees by labelling every vertex with
its state in an accepting run of a *unary ordering Presburger* (UOP) tree
automaton — the automata model that captures exactly MSO on node-labelled,
unbounded-degree, unordered rooted trees (Boneva & Talbot, Proposition 8).

This package implements:

* UOP constraints (:mod:`repro.automata.presburger`),
* UOP tree automata with accepting-run search (:mod:`repro.automata.tree_automaton`),
* word automata on paths, the Büchi–Elgot–Trakhtenbrot warm-up used in the
  paper's intuition (:mod:`repro.automata.word_automaton`),
* a catalogue of automata for standard MSO tree properties, each paired with
  an independent combinatorial checker (:mod:`repro.automata.catalog`),
* a generic compiler from FO sentences to tree automata based on
  quantifier-rank types (:mod:`repro.automata.mso_compile`), the constructive
  stand-in for the non-constructive logic-to-automata correspondence the
  paper invokes (see DESIGN.md §4).
"""

from repro.automata.presburger import (
    AlwaysTrue,
    ConstraintAnd,
    ConstraintNot,
    ConstraintOr,
    CountAtLeast,
    CountAtMost,
    CountExactly,
    UOPConstraint,
)
from repro.automata.tree_automaton import UOPTreeAutomaton, AutomatonRun
from repro.automata.word_automaton import WordAutomaton
from repro.automata import catalog
from repro.automata.mso_compile import compile_fo_sentence_to_automaton

__all__ = [
    "AlwaysTrue",
    "ConstraintAnd",
    "ConstraintNot",
    "ConstraintOr",
    "CountAtLeast",
    "CountAtMost",
    "CountExactly",
    "UOPConstraint",
    "UOPTreeAutomaton",
    "AutomatonRun",
    "WordAutomaton",
    "catalog",
    "compile_fo_sentence_to_automaton",
]
