"""A catalogue of UOP tree automata for classic MSO properties of trees.

The paper's Theorem 2.2 is generic ("any MSO formula"), but its proof goes
through a tree automaton for the formula.  This catalogue provides concrete
automata for properties that are genuinely interesting on trees, each paired
with an independent combinatorial checker used by the tests and experiments
to validate the automaton (and hence, end to end, the certification built on
top of it).

All automata here work on unlabelled rooted trees (label ``•``), the setting
of the paper's structural properties.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Tuple

import networkx as nx

from repro.automata.presburger import (
    AlwaysTrue,
    ConstraintAnd,
    ConstraintNot,
    CountAtLeast,
    CountAtMost,
    CountExactly,
    UOPConstraint,
    conjunction,
    disjunction,
)
from repro.automata.tree_automaton import DEFAULT_LABEL, UOPTreeAutomaton

Vertex = Hashable
RootedChecker = Callable[[nx.Graph, Vertex], bool]


def perfect_matching_automaton() -> UOPTreeAutomaton:
    """Accepts rooted trees that admit a perfect matching.

    States: ``M`` — the vertex is matched to one of its children inside its
    subtree, and the subtree is perfectly matched; ``U`` — the vertex is
    unmatched but all strict descendants are matched.  A vertex can take
    state ``U`` when every child is ``M``; it can take state ``M`` when
    exactly one child is ``U`` and the rest are ``M``.  The root must be ``M``.
    """
    transitions: Dict[Tuple[str, str], UOPConstraint] = {
        ("U", DEFAULT_LABEL): CountAtMost("U", 0),
        ("M", DEFAULT_LABEL): CountExactly("U", 1),
    }
    return UOPTreeAutomaton(
        name="perfect-matching",
        states=("U", "M"),
        accepting=frozenset({"M"}),
        transitions=transitions,
    )


def check_perfect_matching(tree: nx.Graph, root: Vertex) -> bool:
    """Independent checker: maximum matching covers all vertices."""
    matching = nx.max_weight_matching(tree, maxcardinality=True)
    return 2 * len(matching) == tree.number_of_nodes()


def height_at_most_automaton(h: int) -> UOPTreeAutomaton:
    """Accepts rooted trees of height at most ``h`` (a single vertex has height 0).

    State ``i`` means "the subtree has height exactly i"; it requires at least
    one child of state ``i-1`` and no child of state ``≥ i``.  Since states
    stop at ``h``, a subtree of height larger than ``h`` has no valid state and
    the automaton rejects.
    """
    if h < 0:
        raise ValueError("h must be non-negative")
    states = tuple(range(h + 1))
    transitions: Dict[Tuple[int, str], UOPConstraint] = {}
    for height in states:
        if height == 0:
            constraint: UOPConstraint = conjunction(
                *(CountAtMost(s, 0) for s in states)
            )
        else:
            constraint = conjunction(
                CountAtLeast(height - 1, 1),
                *(CountAtMost(s, 0) for s in states if s >= height),
            )
        transitions[(height, DEFAULT_LABEL)] = constraint
    return UOPTreeAutomaton(
        name=f"height<={h}",
        states=states,
        accepting=frozenset(states),
        transitions=transitions,
    )


def check_height_at_most(tree: nx.Graph, root: Vertex, h: int) -> bool:
    """Independent checker: eccentricity of the root is at most ``h``."""
    lengths = nx.single_source_shortest_path_length(tree, root)
    return max(lengths.values()) <= h


def height_exactly_automaton(h: int) -> UOPTreeAutomaton:
    """Accepts rooted trees of height exactly ``h``."""
    automaton = height_at_most_automaton(h)
    return UOPTreeAutomaton(
        name=f"height=={h}",
        states=automaton.states,
        accepting=frozenset({h}),
        transitions=dict(automaton.transitions),
    )


def max_children_at_most_automaton(d: int) -> UOPTreeAutomaton:
    """Accepts rooted trees in which every vertex has at most ``d`` children."""
    if d < 0:
        raise ValueError("d must be non-negative")
    transitions: Dict[Tuple[str, str], UOPConstraint] = {
        ("ok", DEFAULT_LABEL): CountAtMost("ok", d),
    }
    return UOPTreeAutomaton(
        name=f"max-children<={d}",
        states=("ok",),
        accepting=frozenset({"ok"}),
        transitions=transitions,
    )


def check_max_children_at_most(tree: nx.Graph, root: Vertex, d: int) -> bool:
    lengths = nx.single_source_shortest_path_length(tree, root)
    for vertex in tree.nodes():
        children = [
            w for w in tree.neighbors(vertex) if lengths[w] == lengths[vertex] + 1
        ]
        if len(children) > d:
            return False
    return True


def has_vertex_with_children_automaton(d: int) -> UOPTreeAutomaton:
    """Accepts rooted trees containing a vertex with at least ``d`` children."""
    if d < 1:
        raise ValueError("d must be at least 1")
    found_here = disjunction(CountAtLeast("found", 1), CountAtLeast("not", d))
    transitions: Dict[Tuple[str, str], UOPConstraint] = {
        ("found", DEFAULT_LABEL): found_here,
        ("not", DEFAULT_LABEL): ConstraintAnd(
            CountAtMost("found", 0), CountAtMost("not", d - 1)
        ),
    }
    return UOPTreeAutomaton(
        name=f"some-vertex-has>={d}-children",
        states=("found", "not"),
        accepting=frozenset({"found"}),
        transitions=transitions,
    )


def check_has_vertex_with_children(tree: nx.Graph, root: Vertex, d: int) -> bool:
    lengths = nx.single_source_shortest_path_length(tree, root)
    for vertex in tree.nodes():
        children = [
            w for w in tree.neighbors(vertex) if lengths[w] == lengths[vertex] + 1
        ]
        if len(children) >= d:
            return True
    return False


def all_leaves_at_even_depth_automaton() -> UOPTreeAutomaton:
    """Accepts rooted trees in which every leaf is at even distance from the root.

    The state of a vertex records the set of parities of the distances from
    the vertex down to the leaves of its subtree: ``"even"``, ``"odd"`` or
    ``"both"``.  A leaf is ``"even"`` (distance 0 to itself).  An internal
    vertex is ``"even"`` when every child is ``"odd"``; ``"odd"`` when every
    child is ``"even"``; ``"both"`` otherwise.  The root accepts on ``"even"``.
    """
    leaf = conjunction(
        CountAtMost("even", 0), CountAtMost("odd", 0), CountAtMost("both", 0)
    )
    has_children = disjunction(
        CountAtLeast("even", 1), CountAtLeast("odd", 1), CountAtLeast("both", 1)
    )
    only_odd_children = conjunction(CountAtMost("even", 0), CountAtMost("both", 0))
    only_even_children = conjunction(CountAtMost("odd", 0), CountAtMost("both", 0))
    transitions: Dict[Tuple[str, str], UOPConstraint] = {
        ("even", DEFAULT_LABEL): disjunction(
            leaf, ConstraintAnd(has_children, only_odd_children)
        ),
        ("odd", DEFAULT_LABEL): ConstraintAnd(has_children, only_even_children),
        ("both", DEFAULT_LABEL): ConstraintAnd(
            has_children,
            ConstraintNot(only_odd_children) & ConstraintNot(only_even_children),
        ),
    }
    return UOPTreeAutomaton(
        name="all-leaves-at-even-depth",
        states=("even", "odd", "both"),
        accepting=frozenset({"even"}),
        transitions=transitions,
    )


def check_all_leaves_at_even_depth(tree: nx.Graph, root: Vertex) -> bool:
    lengths = nx.single_source_shortest_path_length(tree, root)
    for vertex in tree.nodes():
        is_leaf = tree.degree(vertex) == 1 and vertex != root
        if tree.number_of_nodes() == 1:
            is_leaf = True
        if is_leaf and lengths[vertex] % 2 == 1:
            return False
    return True


CATALOG: Dict[str, Tuple[Callable[[], UOPTreeAutomaton], RootedChecker]] = {
    "perfect_matching": (perfect_matching_automaton, check_perfect_matching),
    "height_at_most_3": (
        lambda: height_at_most_automaton(3),
        lambda tree, root: check_height_at_most(tree, root, 3),
    ),
    "max_children_at_most_2": (
        lambda: max_children_at_most_automaton(2),
        lambda tree, root: check_max_children_at_most(tree, root, 2),
    ),
    "has_vertex_with_3_children": (
        lambda: has_vertex_with_children_automaton(3),
        lambda tree, root: check_has_vertex_with_children(tree, root, 3),
    ),
    "all_leaves_at_even_depth": (
        all_leaves_at_even_depth_automaton,
        check_all_leaves_at_even_depth,
    ),
}
"""Automaton factories paired with combinatorial checkers (for cross-validation)."""
