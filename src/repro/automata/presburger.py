"""Unary ordering Presburger (UOP) constraints (Appendix C.2).

A UOP constraint is a boolean combination of *unary* atomic constraints, each
comparing the number of children in one given state to an integer constant
(``y_q ≤ c`` / ``y_q ≥ c``).  Constraints of this restricted shape are what
make UOP tree automata capture exactly MSO on trees: they can count children
per state only up to fixed thresholds, never compare two counts to each
other (that would be full Presburger, strictly more expressive than MSO) and
never test parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping

State = Hashable


class UOPConstraint:
    """Base class for constraints over multisets of states."""

    def evaluate(self, counts: Mapping[State, int]) -> bool:
        raise NotImplementedError

    def constants(self) -> Iterator[int]:
        """Yield every integer constant appearing in the constraint."""
        raise NotImplementedError

    def __and__(self, other: "UOPConstraint") -> "ConstraintAnd":
        return ConstraintAnd(self, other)

    def __or__(self, other: "UOPConstraint") -> "ConstraintOr":
        return ConstraintOr(self, other)

    def __invert__(self) -> "ConstraintNot":
        return ConstraintNot(self)


@dataclass(frozen=True)
class AlwaysTrue(UOPConstraint):
    """The trivially satisfied constraint."""

    def evaluate(self, counts: Mapping[State, int]) -> bool:
        return True

    def constants(self) -> Iterator[int]:
        return iter(())


@dataclass(frozen=True)
class CountAtLeast(UOPConstraint):
    """``y_state ≥ bound``: at least ``bound`` children are in ``state``."""

    state: State
    bound: int

    def evaluate(self, counts: Mapping[State, int]) -> bool:
        return counts.get(self.state, 0) >= self.bound

    def constants(self) -> Iterator[int]:
        yield self.bound


@dataclass(frozen=True)
class CountAtMost(UOPConstraint):
    """``y_state ≤ bound``: at most ``bound`` children are in ``state``."""

    state: State
    bound: int

    def evaluate(self, counts: Mapping[State, int]) -> bool:
        return counts.get(self.state, 0) <= self.bound

    def constants(self) -> Iterator[int]:
        yield self.bound


@dataclass(frozen=True)
class CountExactly(UOPConstraint):
    """``y_state = bound`` (definable as a conjunction of the two atoms above)."""

    state: State
    bound: int

    def evaluate(self, counts: Mapping[State, int]) -> bool:
        return counts.get(self.state, 0) == self.bound

    def constants(self) -> Iterator[int]:
        yield self.bound


@dataclass(frozen=True)
class ConstraintNot(UOPConstraint):
    operand: UOPConstraint

    def evaluate(self, counts: Mapping[State, int]) -> bool:
        return not self.operand.evaluate(counts)

    def constants(self) -> Iterator[int]:
        return self.operand.constants()


@dataclass(frozen=True)
class ConstraintAnd(UOPConstraint):
    left: UOPConstraint
    right: UOPConstraint

    def evaluate(self, counts: Mapping[State, int]) -> bool:
        return self.left.evaluate(counts) and self.right.evaluate(counts)

    def constants(self) -> Iterator[int]:
        yield from self.left.constants()
        yield from self.right.constants()


@dataclass(frozen=True)
class ConstraintOr(UOPConstraint):
    left: UOPConstraint
    right: UOPConstraint

    def evaluate(self, counts: Mapping[State, int]) -> bool:
        return self.left.evaluate(counts) or self.right.evaluate(counts)

    def constants(self) -> Iterator[int]:
        yield from self.left.constants()
        yield from self.right.constants()


def leaf_constraint(states: Iterator[State] | list[State] | tuple[State, ...]) -> UOPConstraint:
    """Constraint satisfied exactly by leaves: zero children in every state.

    "Total number of children" is not itself a unary count, but with a known
    finite state set it is the conjunction of ``y_q ≤ 0`` over all states.
    """
    return conjunction(*(CountAtMost(state, 0) for state in states))


def conjunction(*constraints: UOPConstraint) -> UOPConstraint:
    """Conjunction of any number of constraints (AlwaysTrue when empty)."""
    result: UOPConstraint = AlwaysTrue()
    for constraint in constraints:
        result = ConstraintAnd(result, constraint) if not isinstance(result, AlwaysTrue) else constraint
    return result


def disjunction(*constraints: UOPConstraint) -> UOPConstraint:
    """Disjunction of any number of constraints (AlwaysTrue when empty)."""
    if not constraints:
        return AlwaysTrue()
    result = constraints[0]
    for constraint in constraints[1:]:
        result = ConstraintOr(result, constraint)
    return result
