"""Finite automata on words, seen as labelled directed paths.

Section 4 motivates the tree-automaton certification with the word case: a
word is accepted by a finite automaton iff its vertices (positions) can be
labelled with states of an accepting run, and this labelling can be verified
locally — each position checks one transition.  This module provides the
small DFA machinery used by that warm-up and by the corresponding tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Sequence, Tuple

State = Hashable
Letter = Hashable


@dataclass(frozen=True)
class WordAutomaton:
    """A deterministic finite automaton over a finite alphabet."""

    name: str
    states: Tuple[State, ...]
    alphabet: Tuple[Letter, ...]
    initial: State
    accepting: FrozenSet[State]
    transitions: Dict[Tuple[State, Letter], State]

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise ValueError("initial state is not a state")
        if not set(self.accepting) <= set(self.states):
            raise ValueError("accepting states must be states")
        for (state, letter), target in self.transitions.items():
            if state not in self.states or target not in self.states:
                raise ValueError("transition uses unknown state")
            if letter not in self.alphabet:
                raise ValueError("transition uses unknown letter")

    def step(self, state: State, letter: Letter) -> State | None:
        return self.transitions.get((state, letter))

    def accepts(self, word: Sequence[Letter]) -> bool:
        """Run the DFA on ``word``."""
        state = self.initial
        for letter in word:
            state = self.step(state, letter)
            if state is None:
                return False
        return state in self.accepting

    def run_states(self, word: Sequence[Letter]) -> list[State] | None:
        """The sequence of states visited (length ``len(word)+1``), or None."""
        states = [self.initial]
        for letter in word:
            next_state = self.step(states[-1], letter)
            if next_state is None:
                return None
            states.append(next_state)
        if states[-1] not in self.accepting:
            return None
        return states

    def check_transition(self, state: State, letter: Letter, next_state: State) -> bool:
        """The local test a position performs when verifying a certified run."""
        return self.step(state, letter) == next_state


def even_number_of_ones() -> WordAutomaton:
    """DFA over {0,1} accepting words with an even number of 1s."""
    return WordAutomaton(
        name="even-ones",
        states=("even", "odd"),
        alphabet=(0, 1),
        initial="even",
        accepting=frozenset({"even"}),
        transitions={
            ("even", 0): "even",
            ("even", 1): "odd",
            ("odd", 0): "odd",
            ("odd", 1): "even",
        },
    )


def no_two_consecutive_ones() -> WordAutomaton:
    """DFA over {0,1} accepting words with no factor ``11``."""
    return WordAutomaton(
        name="no-11",
        states=("start", "after-one"),
        alphabet=(0, 1),
        initial="start",
        accepting=frozenset({"start", "after-one"}),
        transitions={
            ("start", 0): "start",
            ("start", 1): "after-one",
            ("after-one", 0): "start",
        },
    )
