"""Compiling FO sentences on trees into type-based tree automata.

The paper invokes the (non-constructive, non-elementary) logic-to-automata
correspondence of Thatcher–Wright / Boneva–Talbot.  As documented in
DESIGN.md §4, we substitute a *rank-type construction* that is constructive
and practical for small quantifier rank:

* the state of a rooted subtree is its equivalence class under
  :math:`\\simeq_q` (same FO sentences of quantifier rank ``q``, with the
  root as a distinguished element), decided by an exact Ehrenfeucht–Fraïssé
  game in which the roots are pre-played;
* by the standard threshold/composition argument (the same counting argument
  as Proposition 6.3 with ``k = q``), the class of a vertex is determined by
  its label and the *multiset of the classes of its children clipped at*
  ``q`` — so the transition relation is computable from small representative
  trees;
* a class is accepting when its representative satisfies the sentence
  (checked by the exact model checker).

The resulting :class:`TypeTreeAutomaton` exposes the same local-checking
interface as :class:`~repro.automata.tree_automaton.UOPTreeAutomaton`
(``check_local``), which is all the certification of Theorem 2.2 needs: the
certificate of a vertex is its state, and the verifier re-derives the state
from the children's states and checks acceptance at the root.

The construction is exponential in the quantifier rank (EF games are), so it
is intended for rank ≤ 3 sentences; the catalogue of hand-built UOP automata
(:mod:`repro.automata.catalog`) covers richer properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.logic.ef_games import duplicator_wins
from repro.logic.semantics import evaluate
from repro.logic.structure import quantifier_depth, is_first_order
from repro.logic.syntax import Formula

Vertex = Hashable
StateId = int


@dataclass
class _ClassInfo:
    """A discovered ≃_q class: its representative rooted tree and acceptance."""

    representative: nx.Graph
    root: Vertex
    accepting: bool


@dataclass
class TypeTreeAutomaton:
    """A tree automaton whose states are quantifier-rank types of rooted trees."""

    formula: Formula
    rank: int
    threshold: int
    _classes: List[_ClassInfo] = field(default_factory=list)
    _transition_cache: Dict[Tuple[Tuple[StateId, int], ...], StateId] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # State discovery
    # ------------------------------------------------------------------

    def _equivalent(self, tree_a: nx.Graph, root_a: Vertex, info: _ClassInfo) -> bool:
        return duplicator_wins(
            tree_a, info.representative, self.rank, initial_a=(root_a,), initial_b=(info.root,)
        )

    def _classify_representative(self, tree: nx.Graph, root: Vertex) -> StateId:
        for state_id, info in enumerate(self._classes):
            if self._equivalent(tree, root, info):
                return state_id
        accepting = evaluate(tree, self.formula, {})
        self._classes.append(
            _ClassInfo(representative=tree.copy(), root=root, accepting=accepting)
        )
        return len(self._classes) - 1

    def _clip(self, child_states: Sequence[StateId]) -> Tuple[Tuple[StateId, int], ...]:
        counts: Dict[StateId, int] = {}
        for state in child_states:
            counts[state] = counts.get(state, 0) + 1
        return tuple(
            sorted((state, min(count, self.threshold)) for state, count in counts.items())
        )

    def transition(self, child_states: Sequence[StateId]) -> StateId:
        """State of a vertex whose children have the given states."""
        key = self._clip(child_states)
        if key in self._transition_cache:
            return self._transition_cache[key]
        representative, root = self._build_representative(key)
        state = self._classify_representative(representative, root)
        self._transition_cache[key] = state
        return state

    def _build_representative(
        self, clipped: Tuple[Tuple[StateId, int], ...]
    ) -> Tuple[nx.Graph, Vertex]:
        """A fresh rooted tree: a new root with clipped copies of child representatives."""
        tree = nx.Graph()
        root = 0
        tree.add_node(root)
        next_label = 1
        for state, count in clipped:
            info = self._classes[state]
            for _ in range(count):
                mapping = {}
                for vertex in info.representative.nodes():
                    mapping[vertex] = next_label
                    next_label += 1
                tree.add_nodes_from(mapping.values())
                tree.add_edges_from(
                    (mapping[u], mapping[v]) for u, v in info.representative.edges()
                )
                tree.add_edge(root, mapping[info.root])
        return tree, root

    # ------------------------------------------------------------------
    # Whole-tree evaluation and local checking
    # ------------------------------------------------------------------

    def state_of_tree(self, tree: nx.Graph, root: Vertex) -> StateId:
        """State (≃_rank class) of the whole rooted tree, computed bottom-up."""
        order = [root]
        parents: Dict[Vertex, Optional[Vertex]] = {root: None}
        queue = [root]
        while queue:
            current = queue.pop(0)
            for neighbor in sorted(tree.neighbors(current), key=repr):
                if neighbor not in parents:
                    parents[neighbor] = current
                    order.append(neighbor)
                    queue.append(neighbor)
        states: Dict[Vertex, StateId] = {}
        for vertex in reversed(order):
            children = [w for w in tree.neighbors(vertex) if parents.get(w) == vertex]
            states[vertex] = self.transition([states[c] for c in children])
        return states[root]

    def run(self, tree: nx.Graph, root: Vertex) -> Dict[Vertex, StateId]:
        """State of every vertex of the rooted tree (the honest certificate)."""
        order = [root]
        parents: Dict[Vertex, Optional[Vertex]] = {root: None}
        queue = [root]
        while queue:
            current = queue.pop(0)
            for neighbor in sorted(tree.neighbors(current), key=repr):
                if neighbor not in parents:
                    parents[neighbor] = current
                    order.append(neighbor)
                    queue.append(neighbor)
        states: Dict[Vertex, StateId] = {}
        for vertex in reversed(order):
            children = [w for w in tree.neighbors(vertex) if parents.get(w) == vertex]
            states[vertex] = self.transition([states[c] for c in children])
        return states

    def accepts(self, tree: nx.Graph, root: Vertex) -> bool:
        return self.is_accepting(self.state_of_tree(tree, root))

    def is_accepting(self, state: StateId) -> bool:
        return self._classes[state].accepting

    def check_local(
        self, state: StateId, children_states: Sequence[StateId], is_root: bool = False
    ) -> bool:
        """The distributed verifier's test: the claimed state must equal the
        state derived from the children's claimed states (and be accepting at
        the root)."""
        if state >= len(self._classes) or state < 0:
            return False
        if any(s >= len(self._classes) or s < 0 for s in children_states):
            return False
        derived = self.transition(children_states)
        if derived != state:
            return False
        if is_root and not self.is_accepting(state):
            return False
        return True

    @property
    def state_count(self) -> int:
        return len(self._classes)


def compile_fo_sentence_to_automaton(
    formula: Formula, rank: int | None = None, threshold: int | None = None
) -> TypeTreeAutomaton:
    """Compile an FO sentence into a :class:`TypeTreeAutomaton`.

    ``rank`` defaults to the quantifier depth of the sentence; ``threshold``
    defaults to ``max(rank, 1)``.
    """
    if not is_first_order(formula):
        raise ValueError(
            "the generic compiler handles FO sentences; genuinely second-order "
            "properties are covered by the hand-built catalogue "
            "(repro.automata.catalog) — see DESIGN.md §4"
        )
    rank = quantifier_depth(formula) if rank is None else rank
    threshold = max(rank, 1) if threshold is None else threshold
    return TypeTreeAutomaton(formula=formula, rank=rank, threshold=threshold)
