"""UOP tree automata on unordered, unranked rooted trees.

An automaton is a quadruple ``(states, labels, delta, accepting)`` where
``delta`` maps a (state, label) pair to a :class:`UOPConstraint` over the
multiset of children states (Appendix C.2).  A *run* assigns a state to every
vertex of a rooted tree so that at each vertex the constraint of its state
and label is satisfied by the states of its children; the run accepts when
the root's state is accepting.

The accepting-run search is a bottom-up dynamic program over *clipped count
vectors*: since UOP constraints only compare per-state counts to constants,
counts can be clipped at (max constant + 1) without changing any constraint's
value, which keeps the DP polynomial for a fixed automaton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.automata.presburger import UOPConstraint

State = Hashable
Label = Hashable
Vertex = Hashable

DEFAULT_LABEL = "•"
"""Label given to every vertex when the tree is unlabelled (the common case
in this paper: properties of the bare tree structure)."""


@dataclass(frozen=True)
class AutomatonRun:
    """A successful run: the state assigned to every vertex."""

    states: Mapping[Vertex, State]
    root: Vertex

    def state_of(self, vertex: Vertex) -> State:
        return self.states[vertex]


@dataclass(frozen=True)
class UOPTreeAutomaton:
    """A unary ordering Presburger tree automaton."""

    name: str
    states: Tuple[State, ...]
    accepting: FrozenSet[State]
    transitions: Mapping[Tuple[State, Label], UOPConstraint]
    labels: Tuple[Label, ...] = (DEFAULT_LABEL,)

    def __post_init__(self) -> None:
        unknown = set(self.accepting) - set(self.states)
        if unknown:
            raise ValueError(f"accepting states {unknown} are not states")
        for state, label in self.transitions:
            if state not in self.states:
                raise ValueError(f"transition uses unknown state {state!r}")
            if label not in self.labels:
                raise ValueError(f"transition uses unknown label {label!r}")

    # ------------------------------------------------------------------
    # Run checking and search
    # ------------------------------------------------------------------

    def constraint(self, state: State, label: Label) -> Optional[UOPConstraint]:
        return self.transitions.get((state, label))

    def _clip_cap(self) -> int:
        cap = 0
        for constraint in self.transitions.values():
            for constant in constraint.constants():
                cap = max(cap, constant)
        return cap + 1

    def check_run(
        self,
        tree: nx.Graph,
        root: Vertex,
        states: Mapping[Vertex, State],
        labels: Mapping[Vertex, Label] | None = None,
    ) -> bool:
        """Verify that ``states`` is an accepting run on ``tree`` rooted at ``root``."""
        labels = labels or {}
        if states.get(root) not in self.accepting:
            return False
        order = _bfs_order(tree, root)
        parents = _parents(tree, root, order)
        for vertex in order:
            children = [w for w in tree.neighbors(vertex) if parents.get(vertex) != w]
            counts: Dict[State, int] = {}
            for child in children:
                counts[states[child]] = counts.get(states[child], 0) + 1
            label = labels.get(vertex, DEFAULT_LABEL)
            constraint = self.constraint(states[vertex], label)
            if constraint is None or not constraint.evaluate(counts):
                return False
        return True

    def check_local(
        self,
        state: State,
        label: Label,
        children_states: Sequence[State],
        is_root: bool = False,
    ) -> bool:
        """Check one vertex of a run — exactly the test the distributed
        verifier of Theorem 2.2 performs at each node."""
        constraint = self.constraint(state, label)
        if constraint is None:
            return False
        counts: Dict[State, int] = {}
        for child_state in children_states:
            counts[child_state] = counts.get(child_state, 0) + 1
        if not constraint.evaluate(counts):
            return False
        if is_root and state not in self.accepting:
            return False
        return True

    def possible_states(
        self,
        tree: nx.Graph,
        root: Vertex,
        labels: Mapping[Vertex, Label] | None = None,
    ) -> Dict[Vertex, FrozenSet[State]]:
        """For every vertex, the set of states some run of its subtree can assign it."""
        labels = labels or {}
        cap = self._clip_cap()
        order = _bfs_order(tree, root)
        parents = _parents(tree, root, order)
        possible: Dict[Vertex, FrozenSet[State]] = {}
        for vertex in reversed(order):
            children = [w for w in tree.neighbors(vertex) if parents.get(vertex) != w]
            label = labels.get(vertex, DEFAULT_LABEL)
            feasible = []
            for state in self.states:
                constraint = self.constraint(state, label)
                if constraint is None:
                    continue
                if self._children_can_satisfy(constraint, [possible[c] for c in children], cap):
                    feasible.append(state)
            possible[vertex] = frozenset(feasible)
        return possible

    def _children_can_satisfy(
        self,
        constraint: UOPConstraint,
        children_options: Sequence[FrozenSet[State]],
        cap: int,
    ) -> bool:
        """Is there a choice of one state per child satisfying ``constraint``?"""
        return self._find_child_assignment(constraint, children_options, cap) is not None

    def _find_child_assignment(
        self,
        constraint: UOPConstraint,
        children_options: Sequence[FrozenSet[State]],
        cap: int,
    ) -> Optional[Tuple[State, ...]]:
        """One state per child satisfying ``constraint``, or None.

        DP over clipped count vectors; parent pointers recover a witness.
        """
        state_index = {state: i for i, state in enumerate(self.states)}
        initial = tuple(0 for _ in self.states)
        # vector -> (previous vector, state chosen for the last child)
        layers: list[Dict[Tuple[int, ...], Tuple[Optional[Tuple[int, ...]], Optional[State]]]] = [
            {initial: (None, None)}
        ]
        for options in children_options:
            previous_layer = layers[-1]
            next_layer: Dict[Tuple[int, ...], Tuple[Optional[Tuple[int, ...]], Optional[State]]] = {}
            for vector in previous_layer:
                for state in options:
                    index = state_index[state]
                    new_count = min(vector[index] + 1, cap)
                    new_vector = vector[:index] + (new_count,) + vector[index + 1 :]
                    if new_vector not in next_layer:
                        next_layer[new_vector] = (vector, state)
            layers.append(next_layer)
        for vector in layers[-1]:
            counts = {state: vector[state_index[state]] for state in self.states}
            if constraint.evaluate(counts):
                # Walk parent pointers back to recover the assignment.
                assignment: list[State] = []
                current = vector
                for layer in reversed(layers[1:]):
                    previous, state = layer[current]
                    assignment.append(state)
                    current = previous
                assignment.reverse()
                return tuple(assignment)
        return None

    def accepting_run(
        self,
        tree: nx.Graph,
        root: Vertex,
        labels: Mapping[Vertex, Label] | None = None,
    ) -> Optional[AutomatonRun]:
        """Find an accepting run on the rooted tree, or None if it is rejected."""
        labels = labels or {}
        possible = self.possible_states(tree, root, labels)
        root_states = [state for state in possible[root] if state in self.accepting]
        if not root_states:
            return None
        cap = self._clip_cap()
        order = _bfs_order(tree, root)
        parents = _parents(tree, root, order)
        assignment: Dict[Vertex, State] = {root: root_states[0]}
        for vertex in order:
            children = [w for w in tree.neighbors(vertex) if parents.get(vertex) != w]
            if not children:
                continue
            label = labels.get(vertex, DEFAULT_LABEL)
            constraint = self.constraint(assignment[vertex], label)
            if constraint is None:
                return None
            witness = self._find_child_assignment(
                constraint, [possible[c] for c in children], cap
            )
            if witness is None:
                return None
            for child, state in zip(children, witness):
                assignment[child] = state
        return AutomatonRun(states=assignment, root=root)

    def accepts(
        self,
        tree: nx.Graph,
        root: Vertex,
        labels: Mapping[Vertex, Label] | None = None,
    ) -> bool:
        """Does the automaton accept the rooted (optionally labelled) tree?"""
        return self.accepting_run(tree, root, labels) is not None


def _bfs_order(tree: nx.Graph, root: Vertex) -> list[Vertex]:
    order = [root]
    seen = {root}
    queue = [root]
    while queue:
        current = queue.pop(0)
        for neighbor in sorted(tree.neighbors(current), key=repr):
            if neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    if len(order) != tree.number_of_nodes():
        raise ValueError("the input graph is not connected (not a tree)")
    return order


def _parents(tree: nx.Graph, root: Vertex, order: Sequence[Vertex]) -> Dict[Vertex, Vertex]:
    parents: Dict[Vertex, Vertex] = {}
    seen = {root}
    for vertex in order:
        for neighbor in sorted(tree.neighbors(vertex), key=repr):
            if neighbor not in seen:
                seen.add(neighbor)
                parents[neighbor] = vertex
    return parents
