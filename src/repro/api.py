"""``repro.api`` — the stable public facade of the repository.

One module, a handful of functions, no internals: callers never touch
``CompiledNetwork``, registry entries, cache modules or scheme classes.
The facade routes everything through one process-wide
:class:`~repro.service.core.CertificationService` (lazily constructed), so
repeated calls share compiled topologies, ground-truth decisions and scheme
instances exactly like a long-running server would — the CLI's ``certify``
and ``serve`` commands are thin shells over the same calls.

Synchronous use::

    from repro import api

    verdict = api.certify("treedepth", "path:7", params={"t": 3})
    print(verdict.holds, verdict.accepted, verdict.max_certificate_bits)

Structured errors instead of tracebacks: expected failures raise
:class:`ServiceError`, which carries the machine-readable
:class:`~repro.service.messages.ErrorResponse`::

    try:
        api.certify("treedepht", "path:7")
    except api.ServiceError as error:
        print(error.response.code)      # "unknown-scheme"
        print(error.response.message)   # ... did you mean 'treedepth'? ...

Batched use (``respond`` / ``submit_many`` never raise; they return typed
responses with an ``ok`` discriminator)::

    requests = [api.CertifyRequest(scheme="tree", graph=f"random-tree:{n}")
                for n in (8, 16, 32)]
    responses = api.submit_many(requests, stop_on_failure=True)
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx

from repro.service.core import CertificationService
from repro.service.messages import (
    CertifyRequest,
    CertifyResponse,
    ErrorResponse,
    FormulaRequest,
    FormulaResponse,
    Request,
    Response,
    StatsRequest,
    SweepRequest,
    SweepResponse,
)

__all__ = [
    "CertifyRequest",
    "CertifyResponse",
    "ErrorResponse",
    "FormulaRequest",
    "FormulaResponse",
    "ServiceError",
    "SweepRequest",
    "SweepResponse",
    "certify",
    "default_service",
    "formula",
    "reset_default_service",
    "respond",
    "service",
    "stats",
    "submit_many",
    "sweep",
]


class ServiceError(RuntimeError):
    """An expected failure, surfaced as data: ``.response`` holds the
    machine-readable :class:`ErrorResponse` (code + message)."""

    def __init__(self, response: ErrorResponse) -> None:
        super().__init__(f"[{response.code}] {response.message}")
        self.response = response


_default: Optional[CertificationService] = None
_default_lock = threading.Lock()


def default_service() -> CertificationService:
    """The process-wide service every facade call routes through."""
    global _default
    with _default_lock:
        if _default is None:
            _default = CertificationService()
        return _default


def reset_default_service() -> None:
    """Drop the process-wide service (tests; long-lived embedders)."""
    global _default
    with _default_lock:
        service, _default = _default, None
    if service is not None:
        service.close()


def service(workers: int = 4) -> CertificationService:
    """A fresh, independently-owned service (callers manage its lifetime)."""
    return CertificationService(workers=workers)


def _raise_on_error(response: Response) -> Response:
    if isinstance(response, ErrorResponse):
        raise ServiceError(response)
    return response


def certify(
    scheme: Optional[str] = None,
    graph: Union[str, nx.Graph] = "",
    params: Optional[Mapping[str, Any]] = None,
    seed: int = 0,
    trials: int = 20,
    engine: str = "auto",
    include_certificates: bool = False,
    formula: Optional[str] = None,
) -> CertifyResponse:
    """Run one certification: honest prover + radius-1 verification.

    ``graph`` is a ``family:size`` / ``file:PATH`` specifier or an
    already-built :class:`networkx.Graph`.  Instead of a registered
    ``scheme``, an MSO ``formula`` may be given (mutually exclusive);
    ``params`` then carries the compilation knobs (``t``, ``k``,
    ``route``, ``model``).  Returns the typed verdict; raises
    :class:`ServiceError` on any expected failure.
    """
    if isinstance(graph, nx.Graph):
        graph_obj: Optional[nx.Graph] = graph
        label = f"<graph n={graph.number_of_nodes()}>"
    else:
        graph_obj, label = None, graph
    request = CertifyRequest(
        scheme=scheme,
        formula=formula,
        graph=label,
        params=dict(params or {}),
        seed=seed,
        trials=trials,
        engine=engine,
        include_certificates=include_certificates,
    )
    response = default_service().certify(request, graph=graph_obj)
    return _raise_on_error(response)


def sweep(
    scheme: Optional[str] = None,
    family: str = "",
    sizes: Sequence[int] = (),
    params: Optional[Mapping[str, Any]] = None,
    trials: int = 20,
    seed: int = 0,
    formula: Optional[str] = None,
    **kwargs: Any,
) -> SweepResponse:
    """Measure a whole certificate-size series through the service."""
    request = SweepRequest(
        scheme=scheme,
        formula=formula,
        family=family,
        sizes=tuple(sizes),
        params=dict(params or {}),
        trials=trials,
        seed=seed,
        **kwargs,
    )
    return _raise_on_error(default_service().sweep(request))


def formula(
    formula: str,
    family: str,
    sizes: Sequence[int],
    **kwargs: Any,
) -> FormulaResponse:
    """Run a certificate-size series for an ad-hoc MSO formula.

    ``kwargs`` pass through to :class:`FormulaRequest` — notably the
    compilation knobs ``t``, ``k``, ``route`` and ``model``.
    """
    request = FormulaRequest(
        formula=formula, family=family, sizes=tuple(sizes), **kwargs
    )
    return _raise_on_error(default_service().formula(request))


def respond(request: Request) -> Response:
    """Answer one typed request without raising (errors come back as data)."""
    return default_service().handle(request)


def submit_many(
    requests: Iterable[Request], stop_on_failure: bool = False
) -> List[Response]:
    """Run a batch on the service's bounded worker pool, preserving order."""
    return default_service().submit_many(requests, stop_on_failure=stop_on_failure)


def stats() -> dict:
    """Request counters and cache statistics of the process-wide service."""
    return default_service().stats()
