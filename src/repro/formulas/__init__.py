"""Formula-as-a-request: compile MSO formulas into ephemeral schemes.

See :mod:`repro.formulas.compiler` for the full story.  The public surface:

* :func:`compile_formula` — text + bound → :class:`CompiledFormula`
  (cached, scheme instance shared across requests);
* :func:`resolve_formula_params` — validate ``{t, k, route, model}``;
* :class:`FormulaError` — every parse/compile failure, mapped onto the
  wire's ``invalid-formula`` code;
* :func:`formula_cache_stats` — the compilation cache's counters.
"""

from repro.formulas.compiler import (
    MAX_QUANTIFIER_DEPTH,
    ROUTES,
    CompiledFormula,
    FormulaError,
    compile_formula,
    formula_cache_stats,
    formula_fingerprint,
    resolve_formula_params,
)

__all__ = [
    "MAX_QUANTIFIER_DEPTH",
    "ROUTES",
    "CompiledFormula",
    "FormulaError",
    "compile_formula",
    "formula_cache_stats",
    "formula_fingerprint",
    "resolve_formula_params",
]
