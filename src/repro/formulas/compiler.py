"""Compile client-supplied MSO formulas into ephemeral certification schemes.

The paper's headline result (Theorem 2.6) is a *meta-theorem*: any
MSO-expressible property admits an O(t log n)-bit local certification on
graphs of treedepth at most t.  The catalogue demonstrates it on a fixed
menu of named formulas; this module makes it *operational* — any formula a
client writes in the concrete syntax of :mod:`repro.logic.parser` becomes a
:class:`~repro.core.scheme.CertificationScheme` on the fly:

* ``route="treedepth"`` (default) — Theorem 2.6: the formula is evaluated on
  a treedepth-t kernel, full MSO is supported, certificates are O(t log n);
* ``route="trees"`` — Theorem 2.2: the sentence must be first-order; it is
  compiled into a :class:`~repro.automata.mso_compile.TypeTreeAutomaton`
  whose per-state ``check_local`` is the verifier, certificates are O(1)
  (trees only).

Compilation is not free — building the type automaton enumerates rank-r
types — so compiled schemes are memoised in a bounded, fingerprint-keyed
LRU cache registered with :mod:`repro.caching` (visible in service
``stats()``/``health``, cleared by ``clear_caches()``).  Reusing the
*same scheme instance* also lets the harness's ``cached_holds`` layer
(keyed on scheme identity) skip recomputing the ground truth for repeated
requests, which is where the service's warm-vs-cold win comes from.

Failures never escape as raw tracebacks: :class:`FormulaError` wraps parse
and compile errors (parse errors carry the offending token position) and
maps one-to-one onto the wire's ``invalid-formula`` error code.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.automata.mso_compile import compile_fo_sentence_to_automaton
from repro.caching import LRUCache, register_cache
from repro.core.mso_treedepth_scheme import MSOTreedepthScheme
from repro.core.mso_trees import MSOTreeScheme
from repro.core.scheme import CertificationScheme
from repro.logic.parser import ParseError, parse_formula
from repro.logic.structure import free_variables, is_first_order, quantifier_depth
from repro.logic.syntax import Formula
from repro.registry import CONSTANT, MODEL_BUILDERS, SizeBound, T_LOG_N

#: The two compilation routes, named after the layer they target.
ROUTES = ("treedepth", "trees")

#: Formulas beyond this quantifier depth are rejected up front: both routes
#: are exponential in the depth (kernel model checking enumerates depth-many
#: nested vertex choices; the type automaton enumerates rank-r types), so an
#: adversarial request with a deep formula would wedge a worker thread.
MAX_QUANTIFIER_DEPTH = 5

#: Bounded cache of compiled formulas, keyed by fingerprint.  64 distinct
#: (formula, route, parameters) combinations is far beyond what one service
#: process sees in practice while bounding memory held by automata tables.
_FORMULA_CACHE: LRUCache = register_cache("formula_compile", LRUCache(maxsize=64))


class FormulaError(ValueError):
    """A client-supplied formula failed to parse or compile.

    The message is stable and client-facing — it is exactly what the wire's
    ``invalid-formula`` error and the CLI's non-zero exit print — and for
    parse errors it includes the offending token position.
    """


@dataclass(frozen=True)
class CompiledFormula:
    """The result of compiling one formula request: scheme plus provenance.

    ``scheme`` is the ephemeral :class:`CertificationScheme` ready for
    :func:`~repro.core.scheme.evaluate_scheme` (planner-routed across all
    four engines like any catalogue scheme).  ``fingerprint`` is the cache
    key — a hash of the *canonical* formula text and every compilation
    parameter, so textual variants of the same sentence share one entry.
    """

    text: str
    canonical: str
    fingerprint: str
    route: str
    t: int
    k: int
    model: str
    scheme: CertificationScheme
    bound: SizeBound
    quantifier_depth: int
    first_order: bool

    @property
    def bound_label(self) -> str:
        return self.bound.label

    def describe(self) -> Dict[str, Any]:
        """A JSON-ready summary (everything except the live scheme object)."""
        return {
            "formula": self.canonical,
            "fingerprint": self.fingerprint,
            "route": self.route,
            "t": self.t,
            "k": self.k,
            "model": self.model,
            "scheme": self.scheme.name,
            "bound": self.bound_label,
            "quantifier_depth": self.quantifier_depth,
            "first_order": self.first_order,
        }


def formula_fingerprint(
    canonical: str, route: str, t: int, k: int, model: str
) -> str:
    """A stable content hash over the canonical formula and its parameters."""
    payload = f"formula|{route}|t={t}|k={k}|model={model}|{canonical}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _parse(text: str) -> Formula:
    try:
        return parse_formula(text)
    except ParseError as exc:
        raise FormulaError(f"cannot parse formula: {exc}") from exc


def resolve_formula_params(params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Validate and type the compilation parameters of a formula request.

    Accepted keys mirror :func:`compile_formula`'s keyword arguments:
    ``t`` (treedepth bound, int >= 1, default 2), ``k`` (quantifier-depth
    hint, int >= 1, default derived from the formula), ``route`` (one of
    ``ROUTES``) and ``model`` (an elimination-tree builder name).  Unknown
    keys and out-of-range values raise :class:`FormulaError` so the service
    maps them onto the ``invalid-formula`` wire code.
    """
    raw = dict(params or {})
    resolved: Dict[str, Any] = {}
    unknown = sorted(set(raw) - {"t", "k", "route", "model"})
    if unknown:
        raise FormulaError(
            f"unknown formula parameter(s) {unknown}; accepted: t, k, route, model"
        )
    route = raw.get("route", "treedepth")
    if route not in ROUTES:
        raise FormulaError(f"unknown formula route {route!r}; choose from {ROUTES}")
    resolved["route"] = route
    for key, default, minimum in (("t", 2, 1), ("k", None, 1)):
        value = raw.get(key, default)
        if value is not None:
            try:
                value = int(value)
            except (TypeError, ValueError):
                raise FormulaError(f"formula parameter {key!r} must be an integer") from None
            if value < minimum:
                raise FormulaError(f"formula parameter {key!r} must be at least {minimum}")
        resolved[key] = value
    model = raw.get("model", "auto")
    if model not in MODEL_BUILDERS:
        raise FormulaError(
            f"unknown model builder {model!r}; choose from {sorted(MODEL_BUILDERS)}"
        )
    resolved["model"] = model
    return resolved


def compile_formula(
    text: str,
    *,
    t: int = 2,
    route: str = "treedepth",
    k: Optional[int] = None,
    model: str = "auto",
) -> CompiledFormula:
    """Compile formula ``text`` into an ephemeral certification scheme.

    Parses the concrete syntax, rejects non-sentences and over-deep
    formulas, then builds the route's scheme — an
    :class:`~repro.core.mso_treedepth_scheme.MSOTreedepthScheme` for
    ``route="treedepth"`` or an
    :class:`~repro.core.mso_trees.MSOTreeScheme` for ``route="trees"``.
    Results are memoised by fingerprint, so a repeated formula returns the
    *same* :class:`CompiledFormula` (and scheme instance) without reparsing
    or recompiling.  All failure modes raise :class:`FormulaError`.
    """
    params = resolve_formula_params({"t": t, "k": k, "route": route, "model": model})
    if not isinstance(text, str) or not text.strip():
        raise FormulaError("formula must be a non-empty string")
    formula = _parse(text)
    free = free_variables(formula)
    if free:
        names = ", ".join(sorted(str(v.name) for v in free))
        raise FormulaError(
            f"formula must be a sentence (no free variables), found free: {names}"
        )
    depth = quantifier_depth(formula)
    if depth > MAX_QUANTIFIER_DEPTH:
        raise FormulaError(
            f"formula quantifier depth {depth} exceeds the supported maximum "
            f"{MAX_QUANTIFIER_DEPTH}"
        )
    canonical = str(formula)
    key = formula_fingerprint(
        canonical, params["route"], params["t"], params["k"] or 0, params["model"]
    )
    return _FORMULA_CACHE.get_or_compute(
        key, lambda: _build(text, canonical, key, formula, depth, params)
    )


def _build(
    text: str,
    canonical: str,
    fingerprint: str,
    formula: Formula,
    depth: int,
    params: Mapping[str, Any],
) -> CompiledFormula:
    route = params["route"]
    first_order = is_first_order(formula)
    t = params["t"]
    k = params["k"] or max(1, depth)
    if route == "trees":
        if not first_order:
            raise FormulaError(
                "route 'trees' compiles first-order sentences only; "
                "use route 'treedepth' for full MSO"
            )
        try:
            automaton = compile_fo_sentence_to_automaton(formula)
        except ValueError as exc:
            raise FormulaError(f"cannot compile formula: {exc}") from exc
        scheme: CertificationScheme = MSOTreeScheme(automaton, name=canonical)
        bound = CONSTANT
    else:
        try:
            scheme = MSOTreedepthScheme(
                formula,
                t,
                k=k,
                model_builder=MODEL_BUILDERS[params["model"]],
                name=canonical,
            )
        except ValueError as exc:
            raise FormulaError(f"cannot compile formula: {exc}") from exc
        bound = T_LOG_N
    return CompiledFormula(
        text=text,
        canonical=canonical,
        fingerprint=fingerprint,
        route=route,
        t=t,
        k=k,
        model=params["model"],
        scheme=scheme,
        bound=bound,
        quantifier_depth=depth,
        first_order=first_order,
    )


def formula_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the compilation cache (for ``stats()``)."""
    return {
        "hits": _FORMULA_CACHE.hits,
        "misses": _FORMULA_CACHE.misses,
        "size": len(_FORMULA_CACHE),
    }
