"""Treedepth substrate (Section 3.1).

Contents:

* :mod:`repro.treedepth.elimination_tree` — elimination forests/trees
  (the paper's *models*), coherence, validity checking;
* :mod:`repro.treedepth.decomposition` — exact treedepth (exponential, for
  small graphs), heuristic upper bounds, and optimal elimination trees for
  the named families used in the experiments;
* :mod:`repro.treedepth.cops_robbers` — the cops-and-robber game value used
  by the paper to analyse the lower-bound gadget (Lemma 7.3).
"""

from repro.treedepth.elimination_tree import (
    EliminationTree,
    elimination_tree_from_parents,
    is_valid_model,
    make_coherent,
)
from repro.treedepth.decomposition import (
    balanced_path_elimination_tree,
    exact_treedepth,
    optimal_elimination_tree,
    star_elimination_tree,
    treedepth_of_path,
    treedepth_upper_bound_dfs,
)
from repro.treedepth.cops_robbers import cops_needed, treedepth_via_cops

__all__ = [
    "EliminationTree",
    "elimination_tree_from_parents",
    "is_valid_model",
    "make_coherent",
    "balanced_path_elimination_tree",
    "exact_treedepth",
    "optimal_elimination_tree",
    "star_elimination_tree",
    "treedepth_of_path",
    "treedepth_upper_bound_dfs",
    "cops_needed",
    "treedepth_via_cops",
]
