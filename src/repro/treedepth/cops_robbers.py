"""Cops-and-robber characterisation of treedepth (used in Lemma 7.3).

Immobile cops are placed one by one; before each placement is finalised the
robber may move anywhere reachable without crossing an already-placed cop.
The minimum number of cops that guarantees capture equals the treedepth of
the graph.  The game value satisfies the recursion

    value(R) = 1 + min_{v in R} max over components C of R − v of value(C)

over the robber's current territory ``R`` (a connected vertex set), with
``value(∅) = 0``, and the number of cops needed on the whole graph is the
maximum of the values over its connected components.  This recursion is the
same as the treedepth recursion — that is the point of the characterisation —
but it is implemented here independently from
:func:`repro.treedepth.decomposition.exact_treedepth` so the two can
cross-validate each other in tests (and so Lemma 7.3's argument can be
replayed literally in the benchmark for Figure 4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable

import networkx as nx

Vertex = Hashable

_MAX_GAME_VERTICES = 18


def _components(graph: nx.Graph, territory: FrozenSet[Vertex]) -> list[FrozenSet[Vertex]]:
    subgraph = graph.subgraph(territory)
    return [frozenset(component) for component in nx.connected_components(subgraph)]


def cops_needed(graph: nx.Graph, max_vertices: int = _MAX_GAME_VERTICES) -> int:
    """Minimum number of cops that catch the robber on ``graph``."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    if n > max_vertices:
        raise ValueError(f"cops-and-robber game limited to {max_vertices} vertices, got {n}")
    cache: Dict[FrozenSet[Vertex], int] = {}

    def value(territory: FrozenSet[Vertex]) -> int:
        if not territory:
            return 0
        if territory in cache:
            return cache[territory]
        if len(territory) == 1:
            cache[territory] = 1
            return 1
        best = len(territory)
        for cop in territory:
            remaining = territory - {cop}
            worst = 0
            for component in _components(graph, frozenset(remaining)):
                worst = max(worst, value(component))
                if worst >= best:
                    break
            best = min(best, 1 + worst)
        cache[territory] = best
        return best

    return max(value(component) for component in _components(graph, frozenset(graph.nodes())))


def treedepth_via_cops(graph: nx.Graph, max_vertices: int = _MAX_GAME_VERTICES) -> int:
    """Alias making the characterisation explicit: treedepth = cop number."""
    return cops_needed(graph, max_vertices=max_vertices)
