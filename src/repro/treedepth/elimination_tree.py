"""Elimination trees (the paper's *models* of a graph, Definition 3.1).

An elimination tree of a connected graph ``G`` is a rooted tree ``T`` on the
same vertex set such that every edge of ``G`` joins an ancestor–descendant
pair of ``T``.  Its *depth* is the number of vertices of a longest
root-to-leaf path (so a single vertex has depth 1, matching the paper's
convention that treedepth of :math:`K_1` is 1).

A model is *coherent* when for every vertex ``v``, the subgraph of ``G``
induced by the subtree of ``T`` rooted at ``v`` is connected — equivalently,
every child subtree of ``v`` contains a vertex adjacent to ``v``'s subtree
through ``v``'s ancestors... the paper's phrasing: for every child ``w`` of
``v`` there is a vertex in the subtree rooted at ``w`` adjacent to ``v``.
Lemma B.1 shows a coherent model of minimum depth always exists; the
certification of Theorem 2.4 requires coherence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional

import networkx as nx

from repro.graphs.utils import ensure_connected

Vertex = Hashable


@dataclass
class EliminationTree:
    """A rooted forest/tree over the vertex set of a graph.

    ``parent`` maps every non-root vertex to its parent; roots map to ``None``.
    """

    parent: Dict[Vertex, Optional[Vertex]]

    def __post_init__(self) -> None:
        self._children: Dict[Vertex, List[Vertex]] = {v: [] for v in self.parent}
        for vertex, parent in self.parent.items():
            if parent is not None:
                if parent not in self.parent:
                    raise ValueError(f"parent {parent!r} of {vertex!r} is not a vertex")
                self._children[parent].append(vertex)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        for vertex in self.parent:
            seen = set()
            current: Optional[Vertex] = vertex
            while current is not None:
                if current in seen:
                    raise ValueError("parent pointers contain a cycle")
                seen.add(current)
                current = self.parent[current]

    # Basic accessors --------------------------------------------------------

    @property
    def vertices(self) -> List[Vertex]:
        return list(self.parent.keys())

    @property
    def roots(self) -> List[Vertex]:
        return [v for v, p in self.parent.items() if p is None]

    @property
    def root(self) -> Vertex:
        roots = self.roots
        if len(roots) != 1:
            raise ValueError(f"expected a single root, found {len(roots)}")
        return roots[0]

    def children(self, vertex: Vertex) -> List[Vertex]:
        return list(self._children[vertex])

    def ancestors(self, vertex: Vertex, include_self: bool = False) -> List[Vertex]:
        """Ancestors of ``vertex`` ordered from (optionally itself then) parent up to the root."""
        chain: List[Vertex] = [vertex] if include_self else []
        current = self.parent[vertex]
        while current is not None:
            chain.append(current)
            current = self.parent[current]
        return chain

    def depth_of(self, vertex: Vertex) -> int:
        """Depth of ``vertex``: the root has depth 1."""
        return len(self.ancestors(vertex, include_self=True))

    @property
    def depth(self) -> int:
        """Depth of the tree: number of vertices of a longest root-to-leaf path."""
        return max(self.depth_of(v) for v in self.parent)

    def subtree_vertices(self, vertex: Vertex) -> List[Vertex]:
        """Vertices of the subtree rooted at ``vertex`` (pre-order)."""
        stack = [vertex]
        result: List[Vertex] = []
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self._children[current])
        return result

    def iter_bottom_up(self) -> Iterator[Vertex]:
        """Yield vertices so that every vertex appears after all its descendants."""
        order = sorted(self.parent, key=lambda v: -self.depth_of(v))
        return iter(order)

    def is_ancestor(self, ancestor: Vertex, descendant: Vertex) -> bool:
        return ancestor in self.ancestors(descendant, include_self=True)

    def as_networkx(self) -> nx.DiGraph:
        """Return the tree as a directed graph with edges parent → child."""
        digraph = nx.DiGraph()
        digraph.add_nodes_from(self.parent)
        for vertex, parent in self.parent.items():
            if parent is not None:
                digraph.add_edge(parent, vertex)
        return digraph


def elimination_tree_from_parents(parent: Dict[Vertex, Optional[Vertex]]) -> EliminationTree:
    """Build an :class:`EliminationTree` from a parent map (convenience alias)."""
    return EliminationTree(dict(parent))


def is_valid_model(graph: nx.Graph, tree: EliminationTree, depth: int | None = None) -> bool:
    """Check that ``tree`` is an elimination tree of ``graph`` (Definition 3.1).

    When ``depth`` is given, additionally check that the tree depth is at most
    ``depth`` (making it a ``depth``-model).
    """
    if set(tree.parent.keys()) != set(graph.nodes()):
        return False
    for u, v in graph.edges():
        if not (tree.is_ancestor(u, v) or tree.is_ancestor(v, u)):
            return False
    if depth is not None and tree.depth > depth:
        return False
    return True


def is_coherent(graph: nx.Graph, tree: EliminationTree) -> bool:
    """Check coherence: every subtree induces a connected subgraph of ``graph``."""
    for vertex in tree.vertices:
        subtree = tree.subtree_vertices(vertex)
        if len(subtree) > 1 and not nx.is_connected(graph.subgraph(subtree)):
            return False
    return True


def make_coherent(graph: nx.Graph, tree: EliminationTree) -> EliminationTree:
    """Turn a valid model into a coherent one without increasing its depth.

    Implements the re-attachment argument of Lemma B.1: while some vertex
    ``v`` has a child ``w`` whose subtree contains no neighbour of ``v``,
    re-attach ``w`` to the lowest ancestor of ``v`` adjacent to the subtree of
    ``w``.  Each move strictly decreases the sum of depths, so it terminates.
    """
    ensure_connected(graph)
    if not is_valid_model(graph, tree):
        raise ValueError("make_coherent expects a valid elimination tree")
    parent = dict(tree.parent)
    changed = True
    while changed:
        changed = False
        current = EliminationTree(dict(parent))
        for vertex in current.vertices:
            for child in current.children(vertex):
                subtree = set(current.subtree_vertices(child))
                if any(graph.has_edge(vertex, u) for u in subtree):
                    continue
                # Find the lowest strict ancestor of `vertex` adjacent to the subtree.
                new_parent = None
                for ancestor in current.ancestors(vertex):
                    if any(graph.has_edge(ancestor, u) for u in subtree):
                        new_parent = ancestor
                        break
                if new_parent is None:
                    # The subtree is only attached through `vertex` itself;
                    # connectivity of the graph guarantees some ancestor works,
                    # unless the edges go even higher (handled next iteration).
                    continue
                parent[child] = new_parent
                changed = True
                break
            if changed:
                break
    result = EliminationTree(parent)
    if not is_valid_model(graph, result):
        raise AssertionError("coherence repair broke model validity")
    return result


def exit_vertex(graph: nx.Graph, tree: EliminationTree, vertex: Vertex) -> Vertex:
    """An *exit vertex* of ``vertex``: a vertex of its subtree adjacent to its parent.

    Exists whenever the model is coherent and ``vertex`` is not the root
    (Section 5).
    """
    parent = tree.parent[vertex]
    if parent is None:
        raise ValueError("the root has no exit vertex")
    for candidate in tree.subtree_vertices(vertex):
        if graph.has_edge(candidate, parent):
            return candidate
    raise ValueError("no exit vertex: the model is not coherent at this vertex")
