"""Computing treedepth and elimination trees.

Convention.  We use the standard vertex-counted convention of Nešetřil and
Ossona de Mendez: the treedepth of a single vertex is 1, and
:math:`td(P_n) = \\lceil \\log_2(n+1) \\rceil`.  (The caption of Figure 1 in
the paper counts the root at depth 0 and therefore reports "depth 2" for
:math:`P_7`; Lemma 7.3, in contrast, uses the vertex-counted value — the
8-cycle-with-apex gadget has treedepth exactly 5 — so we adopt the
vertex-counted convention everywhere and record the discrepancy here.)

Exact treedepth is NP-hard, so :func:`exact_treedepth` is the textbook
exponential recursion (with memoisation on vertex subsets) and is guarded by
an instance-size limit.  :func:`treedepth_upper_bound_dfs` gives the cheap
DFS-based upper bound used when we only need *some* valid model.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

import networkx as nx

from repro.caching import memoize_on_graph
from repro.graphs.utils import ensure_connected
from repro.treedepth.elimination_tree import EliminationTree

Vertex = Hashable

_MAX_EXACT_VERTICES = 18
"""Instances larger than this are rejected by the exact solver: the recursion
explores subsets of the vertex set."""


def treedepth_of_path(n: int) -> int:
    """Closed form: :math:`td(P_n) = \\lceil \\log_2(n+1) \\rceil`."""
    if n <= 0:
        raise ValueError("n must be positive")
    depth = 0
    capacity = 0
    while capacity < n:
        depth += 1
        capacity = 2**depth - 1
    return depth


def balanced_path_elimination_tree(path: nx.Graph) -> EliminationTree:
    """An optimal (depth ⌈log₂(n+1)⌉) elimination tree of a path graph.

    The midpoint of the path becomes the root and each half is handled
    recursively — the Figure 1 construction, but balanced, so it works for
    paths far larger than the exact solver's limit.  Raises ``ValueError``
    when the input is not a path.
    """
    n = path.number_of_nodes()
    if n == 1:
        return EliminationTree({next(iter(path.nodes())): None})
    endpoints = [v for v, d in path.degree() if d == 1]
    is_path = (
        len(endpoints) == 2
        and nx.is_connected(path)
        and path.number_of_edges() == n - 1
        and all(d <= 2 for _, d in path.degree())
    )
    if not is_path:
        raise ValueError("balanced_path_elimination_tree expects a path graph")
    order = [min(endpoints, key=repr)]
    previous = None
    while len(order) < n:
        current = order[-1]
        nxt = [w for w in path.neighbors(current) if w != previous]
        previous = current
        order.append(nxt[0])
    parent: Dict[Vertex, Optional[Vertex]] = {}

    def build(segment, parent_vertex):
        if not segment:
            return
        middle = len(segment) // 2
        root = segment[middle]
        parent[root] = parent_vertex
        build(segment[:middle], root)
        build(segment[middle + 1 :], root)

    build(order, None)
    return EliminationTree(parent)


def star_elimination_tree(star: nx.Graph) -> EliminationTree:
    """The depth-2 elimination tree of a star: the centre on top, leaves below."""
    centers = [v for v, d in star.degree() if d == star.number_of_nodes() - 1]
    if not centers or star.number_of_edges() != star.number_of_nodes() - 1:
        raise ValueError("star_elimination_tree expects a star graph")
    center = centers[0]
    parent: Dict[Vertex, Optional[Vertex]] = {center: None}
    for vertex in star.nodes():
        if vertex != center:
            parent[vertex] = center
    return EliminationTree(parent)


@memoize_on_graph
def exact_treedepth(graph: nx.Graph, max_vertices: int = _MAX_EXACT_VERTICES) -> int:
    """Exact treedepth of a (small) graph (memoised on graph structure)."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    if n > max_vertices:
        raise ValueError(
            f"exact treedepth limited to {max_vertices} vertices, got {n}"
        )
    vertices = tuple(sorted(graph.nodes(), key=repr))
    index = {v: i for i, v in enumerate(vertices)}
    adjacency: Tuple[int, ...] = tuple(
        sum(1 << index[w] for w in graph.neighbors(v)) for v in vertices
    )

    def components(mask: int) -> list[int]:
        """Connected components of the subgraph induced by ``mask`` (bitmask)."""
        result = []
        remaining = mask
        while remaining:
            start = remaining & -remaining
            component = start
            frontier = start
            while frontier:
                low = frontier & -frontier
                i = low.bit_length() - 1
                frontier &= frontier - 1
                new = adjacency[i] & mask & ~component
                component |= new
                frontier |= new
            result.append(component)
            remaining &= ~component
        return result

    @lru_cache(maxsize=None)
    def td(mask: int) -> int:
        if mask == 0:
            return 0
        count = bin(mask).count("1")
        if count == 1:
            return 1
        comps = components(mask)
        if len(comps) > 1:
            return max(td(c) for c in comps)
        best = count  # trivial upper bound: eliminate vertices one by one
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining &= remaining - 1
            best = min(best, 1 + td(mask & ~low))
        return best

    full_mask = (1 << n) - 1
    result = td(full_mask)
    td.cache_clear()
    return result


@memoize_on_graph
def optimal_elimination_tree(
    graph: nx.Graph, max_vertices: int = _MAX_EXACT_VERTICES
) -> EliminationTree:
    """An elimination tree of minimum depth (exact, small graphs only;
    memoised on graph structure — treat the result as read-only)."""
    ensure_connected(graph)
    n = graph.number_of_nodes()
    if n > max_vertices:
        raise ValueError(
            f"exact elimination tree limited to {max_vertices} vertices, got {n}"
        )
    vertices = tuple(sorted(graph.nodes(), key=repr))
    index = {v: i for i, v in enumerate(vertices)}
    adjacency: Tuple[int, ...] = tuple(
        sum(1 << index[w] for w in graph.neighbors(v)) for v in vertices
    )

    def components(mask: int) -> list[int]:
        result = []
        remaining = mask
        while remaining:
            start = remaining & -remaining
            component = start
            frontier = start
            while frontier:
                low = frontier & -frontier
                i = low.bit_length() - 1
                frontier &= frontier - 1
                new = adjacency[i] & mask & ~component
                component |= new
                frontier |= new
            result.append(component)
            remaining &= ~component
        return result

    cache: Dict[int, Tuple[int, Optional[int]]] = {}

    def solve(mask: int) -> Tuple[int, Optional[int]]:
        """Return (treedepth, best_root_bit) for the *connected* subgraph ``mask``."""
        if mask in cache:
            return cache[mask]
        count = bin(mask).count("1")
        if count == 1:
            cache[mask] = (1, mask)
            return cache[mask]
        best_depth = count + 1
        best_root: Optional[int] = None
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining &= remaining - 1
            rest = mask & ~low
            depth = 1
            if rest:
                depth = 1 + max(solve(component)[0] for component in components(rest))
            if depth < best_depth:
                best_depth = depth
                best_root = low
        cache[mask] = (best_depth, best_root)
        return cache[mask]

    parent: Dict[Vertex, Optional[Vertex]] = {}

    def build(mask: int, parent_vertex: Optional[Vertex]) -> None:
        for component in components(mask):
            _, root_bit = solve(component)
            root_vertex = vertices[root_bit.bit_length() - 1]
            parent[root_vertex] = parent_vertex
            rest = component & ~root_bit
            if rest:
                build(rest, root_vertex)

    full_mask = (1 << n) - 1
    build(full_mask, None)
    return EliminationTree(parent)


def treedepth_upper_bound_dfs(graph: nx.Graph) -> Tuple[int, EliminationTree]:
    """DFS-based elimination tree.

    Any DFS tree of a connected graph is a valid elimination tree, because
    every non-tree edge of a DFS joins a vertex to one of its ancestors.  The
    resulting depth is an upper bound on treedepth (possibly far from tight).
    """
    ensure_connected(graph)
    root = min(graph.nodes(), key=repr)
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    visited = {root}
    # Iterative depth-first search keeping one neighbour iterator per stack
    # frame, so that a vertex's parent is the vertex it was *discovered from*
    # (plain "push all neighbours" would build a BFS-like tree whose non-tree
    # edges are not ancestor–descendant pairs).
    stack = [(root, iter(sorted(graph.neighbors(root), key=repr)))]
    while stack:
        current, neighbors = stack[-1]
        advanced = False
        for neighbor in neighbors:
            if neighbor not in visited:
                visited.add(neighbor)
                parent[neighbor] = current
                stack.append((neighbor, iter(sorted(graph.neighbors(neighbor), key=repr))))
                advanced = True
                break
        if not advanced:
            stack.pop()
    tree = EliminationTree(parent)
    return tree.depth, tree
