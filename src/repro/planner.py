"""Workload-aware engine planner: the cost model behind ``engine="auto"``.

Four engines execute the same verification semantics at wildly different
speeds depending on the *shape* of the workload (see BENCH_engine /
BENCH_delta / BENCH_vector):

* ``legacy``   — per-vertex dict views, the reference implementation;
  ~11× slower than compiled per (assignment, vertex).
* ``compiled`` — CSR topology + memoised verdicts; the baseline unit.
* ``delta``    — persistent sessions re-verifying only the closed
  neighbourhood of a changed vertex; wins when consecutive assignments
  differ in O(1) vertices (Gray-coded exhaustive streams, corruption
  trials around an honest baseline).
* ``vector``   — bit-parallel lane blocks; wins enumeration-shaped sweeps
  (thousands of assignments over a fixed topology) by evaluating 2048+
  candidates per bitwise operation, but pays a per-block cost that never
  amortises on small batches.

This module turns those measured ratios into an explicit analytic cost
model over a :class:`Workload` descriptor, refined by an optional one-shot
micro-calibration (``python -m repro.cli calibrate`` → ``calibration.json``).
:func:`choose_engine` is the single routing decision point; callers reach it
through :func:`repro.engines.resolve_engine`.

The model deliberately prices the vector engine with the *python* backend's
lane count: routing must resolve identically whether or not numpy is
importable (artifacts and replay caches are compared byte-for-byte across
backend legs), and the python backend is always executable — the planner
never picks a plan the host cannot run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

#: Engine names the planner can resolve ``"auto"`` to, in tie-break order:
#: when two engines tie on modelled cost the earlier name wins (the simpler,
#: more battle-tested engine).
PLANNER_PREFERENCE = ("compiled", "delta", "vector", "legacy")

#: Workload shapes the cost model distinguishes.
WORKLOAD_SHAPES = ("single-shot", "batch", "sparse-diff", "enumeration")

#: Environment variable naming an alternative calibration file.
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: The committed calibration shipped with the package (analytic defaults
#: refined from the committed BENCH_* reports).
DEFAULT_CALIBRATION_PATH = Path(__file__).resolve().parent / "calibration.json"

#: Calibration file layout version.
CALIBRATION_SCHEMA = 1


@dataclass(frozen=True)
class Workload:
    """What the planner knows about the work ahead of picking an engine.

    Costs are modelled per (assignment, vertex) with the compiled engine's
    full evaluation as the unit, so a workload is essentially the tuple
    (how many assignments, over how many vertices, how much of the graph
    does each consecutive assignment touch).
    """

    shape: str
    assignments: int
    graph_size: int
    max_degree: int = 0
    diff_density: float = 1.0
    """Fraction of vertices whose certificate changes between consecutive
    assignments: 1.0 for independent random assignments, ``1/n`` for
    Gray-coded or single-vertex-corruption streams."""
    bits_per_vertex: int = 0
    """Certificate bits per enumerated vertex (enumeration shape only) —
    sizes the vector engine's per-vertex truth tables."""

    def __post_init__(self) -> None:
        if self.shape not in WORKLOAD_SHAPES:
            raise ValueError(
                f"unknown workload shape {self.shape!r}; use one of: "
                + ", ".join(repr(s) for s in WORKLOAD_SHAPES)
            )
        if self.assignments < 0:
            raise ValueError("assignments must be non-negative")
        if self.graph_size < 0:
            raise ValueError("graph_size must be non-negative")

    # -- constructors for the shapes the harness actually produces ----------

    @classmethod
    def single_shot(cls, graph_size: int, max_degree: int = 0) -> "Workload":
        """One full evaluation (an honest-prover completeness check)."""
        return cls(
            shape="single-shot",
            assignments=1,
            graph_size=graph_size,
            max_degree=max_degree,
        )

    @classmethod
    def batch(
        cls,
        assignments: int,
        graph_size: int,
        max_degree: int = 0,
        diff_density: float = 1.0,
    ) -> "Workload":
        """``assignments`` independent full evaluations (adversarial trials)."""
        return cls(
            shape="batch",
            assignments=assignments,
            graph_size=graph_size,
            max_degree=max_degree,
            diff_density=diff_density,
        )

    @classmethod
    def sparse_diff(
        cls,
        assignments: int,
        graph_size: int,
        max_degree: int = 0,
        diff_density: Optional[float] = None,
    ) -> "Workload":
        """A stream of assignments each differing from a baseline in O(1)
        vertices (corruption trials)."""
        if diff_density is None:
            diff_density = 1.0 / graph_size if graph_size else 1.0
        return cls(
            shape="sparse-diff",
            assignments=assignments,
            graph_size=graph_size,
            max_degree=max_degree,
            diff_density=diff_density,
        )

    @classmethod
    def enumeration(
        cls,
        assignments: int,
        graph_size: int,
        max_degree: int = 0,
        max_bits: int = 1,
    ) -> "Workload":
        """An exhaustive certificate sweep (Gray stream / binary counter)."""
        return cls(
            shape="enumeration",
            assignments=assignments,
            graph_size=graph_size,
            max_degree=max_degree,
            diff_density=1.0 / graph_size if graph_size else 1.0,
            bits_per_vertex=max_bits,
        )

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class Plan:
    """One routing decision, fully observable."""

    engine: str
    workload: Workload
    costs: Mapping[str, float]
    """Modelled cost of every candidate engine, in compiled
    (assignment, vertex) units."""
    backend: str
    """Vector-lane backend available on this host (informational — the cost
    model prices the python backend so routing is host-independent)."""
    calibration_source: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "workload": self.workload.to_dict(),
            "costs": dict(self.costs),
            "backend": self.backend,
            "calibration_source": self.calibration_source,
        }


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------

#: Analytic fallback used when no calibration file is readable; the shipped
#: ``calibration.json`` carries the same numbers, refined by measurement.
_FALLBACK_CALIBRATION: Dict[str, object] = {
    "schema": CALIBRATION_SCHEMA,
    "source": "analytic",
    "units": {
        "legacy": 11.0,
        "compiled": 1.0,
        "delta_setup": 1.0,
        "delta_touch": 0.52,
        "vector_enum": 0.0069,
        "vector_block": 1.2,
        "vector_table_fill": 1.0,
    },
    "max_table_bits": {"python": 12, "numpy": 14},
}

_calibration_cache: Dict[str, Dict[str, object]] = {}


def load_calibration(path: Optional[os.PathLike] = None) -> Dict[str, object]:
    """Load the cost-model calibration, lazily cached per resolved path.

    Resolution order: an explicit ``path`` argument, the
    :data:`CALIBRATION_ENV` environment variable, then the committed default
    next to this module.  An unreadable or wrong-schema file falls back to
    the analytic constants rather than failing the caller — a planner that
    cannot load its tuning must still route.
    """
    if path is None:
        env = os.environ.get(CALIBRATION_ENV)
        path = Path(env) if env else DEFAULT_CALIBRATION_PATH
    else:
        path = Path(path)
    key = str(path)
    cached = _calibration_cache.get(key)
    if cached is not None:
        return cached
    try:
        data = json.loads(path.read_text())
        if data.get("schema") != CALIBRATION_SCHEMA:
            raise ValueError(f"calibration schema {data.get('schema')!r}")
        units = {name: float(v) for name, v in data["units"].items()}
        table_bits = {name: int(v) for name, v in data["max_table_bits"].items()}
        calibration = {
            "schema": CALIBRATION_SCHEMA,
            "source": str(data.get("source", key)),
            "units": units,
            "max_table_bits": table_bits,
        }
    except (OSError, ValueError, KeyError, TypeError):
        calibration = _FALLBACK_CALIBRATION
    _calibration_cache[key] = calibration
    return calibration


def clear_calibration_cache() -> None:
    """Forget loaded calibrations (tests and ``cli calibrate`` use this)."""
    _calibration_cache.clear()
    _plan_cache.clear()


def calibrated_max_table_bits(backend: str, path: Optional[os.PathLike] = None) -> int:
    """The truth-table cutoff the calibration records for ``backend``."""
    calibration = load_calibration(path)
    table_bits: Mapping[str, int] = calibration["max_table_bits"]  # type: ignore[assignment]
    default = _FALLBACK_CALIBRATION["max_table_bits"]["python"]  # type: ignore[index]
    return int(table_bits.get(backend, table_bits.get("python", default)))


def numpy_available() -> bool:
    """Whether the numpy lane backend is importable (no numpy import cost)."""
    import importlib.util

    return importlib.util.find_spec("numpy") is not None


# ---------------------------------------------------------------------------
# The cost model
# ---------------------------------------------------------------------------

#: Lane count the cost model assumes for the vector engine.  Deliberately
#: the *python* backend's block size: routing must not depend on whether
#: numpy is importable (see module docstring).
_MODEL_LANES = 2048


def engine_costs(
    workload: Workload, calibration: Optional[Mapping[str, object]] = None
) -> Dict[str, float]:
    """Modelled cost of every engine on ``workload``, in compiled units.

    One unit is the compiled engine's full evaluation of one assignment on
    one vertex.  The formulas encode what each engine actually does:

    * ``legacy``/``compiled`` — every assignment re-verifies every vertex;
      they differ only by the measured constant (~11×, BENCH_engine).
    * ``delta`` — one full-evaluation setup, then each assignment touches
      only the closed neighbourhoods of its changed vertices
      (``diff_density·n`` changes × ``1+max_degree`` re-verifications,
      at the measured ~0.5× per-touch constant, BENCH_delta).
    * ``vector`` — on enumeration shapes: fill one ``2**m`` truth table per
      vertex (``m`` = local configuration bits), then sweep all assignments
      at the measured per-lane rate (~0.007×, BENCH_vector).  Local
      configurations beyond the table cutoff fall back to per-lane scalar
      evaluation, which is slower than compiled.  On non-enumeration shapes
      the engine still pays full per-lane evaluation with no counter
      structure to exploit — it never wins there.
    """
    if calibration is None:
        calibration = load_calibration()
    units: Mapping[str, float] = calibration["units"]  # type: ignore[assignment]
    # Exhaustive sweeps can describe 2**(bits·n) assignments — far beyond
    # float range; the routing decision is identical past this cap.
    a = float(min(workload.assignments, 1 << 62))
    n = float(workload.graph_size)
    degree = max(0, workload.max_degree)

    costs: Dict[str, float] = {}
    costs["legacy"] = a * n * units["legacy"]
    costs["compiled"] = a * n * units["compiled"]

    changes = max(1.0, workload.diff_density * n) if n else 1.0
    costs["delta"] = n * units["delta_setup"] + a * changes * (1 + degree) * units[
        "delta_touch"
    ]

    if workload.shape == "enumeration" and workload.bits_per_vertex > 0:
        table_bits: Mapping[str, int] = calibration["max_table_bits"]  # type: ignore[assignment]
        cutoff = int(table_bits.get("python", 12))
        m = workload.bits_per_vertex * (1 + degree)
        if m <= cutoff:
            table_fill = n * float(1 << m) * units["vector_table_fill"]
            costs["vector"] = table_fill + a * n * units["vector_enum"]
        else:
            costs["vector"] = a * n * units["vector_block"]
    else:
        # No counter structure to exploit: the vector engine evaluates each
        # assignment per-lane, paying block-packing overhead on top.
        costs["vector"] = max(a, float(_MODEL_LANES)) * n * units["vector_block"]
    return costs


#: Memoized plans for the default-calibration path: routing a workload the
#: process has already priced must cost a dict lookup, not a re-pricing —
#: the planner sits on sub-millisecond hot paths (single-shot verifications)
#: where recomputation would eat into the very wins it is routing toward.
_plan_cache: Dict[Tuple[str, "Workload", Tuple[str, ...]], "Plan"] = {}


def choose_engine(
    workload: Workload,
    allowed: Tuple[str, ...] = PLANNER_PREFERENCE,
    calibration: Optional[Mapping[str, object]] = None,
) -> Plan:
    """Pick the cheapest allowed engine for ``workload``.

    Ties break toward the earlier entry of :data:`PLANNER_PREFERENCE`.
    ``allowed`` restricts candidates (e.g. ``simulate_protocol`` cannot run
    the legacy engine).
    """
    if calibration is None:
        env = os.environ.get(CALIBRATION_ENV)
        key = (
            str(Path(env) if env else DEFAULT_CALIBRATION_PATH),
            workload,
            tuple(allowed),
        )
        cached = _plan_cache.get(key)
        if cached is not None:
            return cached
        plan = choose_engine(workload, allowed, load_calibration())
        if len(_plan_cache) < 4096:
            _plan_cache[key] = plan
        return plan
    costs = engine_costs(workload, calibration)
    candidates = [name for name in PLANNER_PREFERENCE if name in allowed]
    if not candidates:
        raise ValueError(f"no allowed engine among {allowed!r}")
    winner = min(candidates, key=lambda name: costs[name])
    return Plan(
        engine=winner,
        workload=workload,
        costs={name: costs[name] for name in candidates},
        backend="numpy" if numpy_available() else "python",
        calibration_source=str(calibration.get("source", "?")),
    )


# ---------------------------------------------------------------------------
# Micro-calibration (``python -m repro.cli calibrate``)
# ---------------------------------------------------------------------------


def run_calibration(quick: bool = False) -> Dict[str, object]:
    """Measure the cost-model constants with a few hundred ms of probes.

    Probes the four engines on small kernels shaped like the workloads the
    model distinguishes and expresses every constant relative to the
    compiled engine's measured per-(assignment, vertex) rate — the same
    normalisation the analytic defaults use, so a calibration file and the
    fallback are interchangeable.
    """
    import time

    import networkx as nx

    from repro.caching import clear_caches
    from repro.core.scheme import (
        evaluate_scheme,
        exhaustive_soundness_holds,
        soundness_under_corruption,
    )
    from repro.core.simple_schemes import BipartitenessScheme
    from repro.core.spanning_tree import TreeScheme
    from repro.graphs.generators import random_tree

    def timed(fn, repeats: int) -> float:
        fn()  # untimed warmup: one-time compilation costs are not the engine's
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return max(time.perf_counter() - start, 1e-9)

    repeats = 2 if quick else 5

    # -- batch probe: legacy vs compiled per (assignment, vertex) ----------
    scheme = TreeScheme()
    batch_graph = random_tree(32, seed=3)
    # The batch probe needs a *no*-instance: only there does evaluate_scheme
    # sweep the adversarial schedule through the engine (a yes-instance runs
    # one honest verification and the probe would measure prover overhead).
    no_graph = nx.cycle_graph(32)
    trials = 20

    def batch(engine: str) -> None:
        evaluate_scheme(scheme, no_graph, seed=3, adversarial_trials=trials, engine=engine)

    clear_caches()
    compiled_batch_s = timed(lambda: batch("compiled"), repeats)
    legacy_batch_s = timed(lambda: batch("legacy"), repeats)
    unit_s = compiled_batch_s  # one compiled unit · trials · n, factored out below
    # The reference simulator re-interprets the verifier per assignment; it
    # cannot genuinely beat the compiled row, so a probe that says otherwise
    # measured fixed overhead, not engine work — clamp to parity (the
    # tie-break preference keeps routing away from legacy).
    legacy_unit = max(legacy_batch_s / unit_s, 1.0)

    # -- sparse-diff probe: delta per-touch constant -----------------------
    corruption_trials = 60 if quick else 150

    def corruption(engine: str) -> None:
        soundness_under_corruption(
            scheme, batch_graph, trials=corruption_trials, seed=3, engine=engine
        )

    clear_caches()
    compiled_corruption_s = timed(lambda: corruption("compiled"), repeats)
    delta_corruption_s = timed(lambda: corruption("delta"), repeats)
    n = batch_graph.number_of_nodes()
    degree = max(dict(batch_graph.degree()).values())
    compiled_per_unit = compiled_corruption_s / (corruption_trials * n)
    # delta cost ≈ n·setup + trials·(1+deg)·touch; attribute half the
    # measured time to touches when the algebra degenerates.
    touch_s = max(
        (delta_corruption_s - n * compiled_per_unit) / (corruption_trials * (1 + degree)),
        delta_corruption_s / (2 * corruption_trials * (1 + degree)),
    )
    delta_touch = touch_s / compiled_per_unit

    # -- enumeration probe: vector per-lane constant -----------------------
    enum_n = 11 if quick else 13
    enum_graph = nx.cycle_graph(enum_n)
    bip = BipartitenessScheme()
    assignments = 1 << enum_n

    def enum(engine: str) -> None:
        exhaustive_soundness_holds(bip, enum_graph, max_bits=1, engine=engine)

    clear_caches()
    compiled_enum_s = timed(lambda: enum("compiled"), repeats)
    vector_enum_s = timed(lambda: enum("vector"), repeats)
    compiled_enum_unit = compiled_enum_s / (assignments * enum_n)
    vector_enum = (vector_enum_s / (assignments * enum_n)) / compiled_enum_unit

    units = {
        "legacy": round(legacy_unit, 4),
        "compiled": 1.0,
        "delta_setup": 1.0,
        "delta_touch": round(delta_touch, 4),
        "vector_enum": round(vector_enum, 6),
        "vector_block": _FALLBACK_CALIBRATION["units"]["vector_block"],  # type: ignore[index]
        "vector_table_fill": 1.0,
    }
    return {
        "schema": CALIBRATION_SCHEMA,
        "source": "calibrate",
        "units": units,
        "max_table_bits": dict(_FALLBACK_CALIBRATION["max_table_bits"]),  # type: ignore[arg-type]
    }


def write_calibration(
    calibration: Mapping[str, object], path: os.PathLike
) -> Path:
    """Write ``calibration`` as JSON and drop it from the lazy cache."""
    path = Path(path)
    path.write_text(json.dumps(calibration, indent=2, sort_keys=True) + "\n")
    _calibration_cache.pop(str(path), None)
    _plan_cache.clear()
    return path
