"""A small catalogue of distributed graph automata.

These are the running examples used by the tests, the benchmarks and the
``examples/`` scripts: two label-counting-free staples (all/some node carries
a given label), the one-round proper-colouring checker (the automaton behind
LCL-style verification), the r-round flooding automaton deciding "every node
is within distance r of a marked node", and the prover-assisted
2-colourability automaton that Appendix A.3 would call a one-alternation
(existential) automaton.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional

import networkx as nx

from repro.dga.automaton import DistributedGraphAutomaton, all_states_in, some_state_is
from repro.dga.nondeterministic import NondeterministicDGA

Vertex = Hashable

_GOOD = "good"
_BAD = "bad"
_REACHED = "reached"
_WAITING = "waiting"


def all_nodes_labelled(label) -> DistributedGraphAutomaton:
    """Accept iff every node carries ``label`` (zero rounds)."""

    def initial(node_label):
        return _GOOD if node_label == label else _BAD

    return DistributedGraphAutomaton(
        name=f"all-nodes-labelled[{label!r}]",
        states=frozenset({_GOOD, _BAD}),
        initial=initial,
        transition=lambda state, _: state,
        acceptance=all_states_in({_GOOD}),
        rounds=0,
        labels=frozenset({label, None}),
    )


def some_node_labelled(label) -> DistributedGraphAutomaton:
    """Accept iff at least one node carries ``label`` (zero rounds)."""

    def initial(node_label):
        return _GOOD if node_label == label else _WAITING

    return DistributedGraphAutomaton(
        name=f"some-node-labelled[{label!r}]",
        states=frozenset({_GOOD, _WAITING}),
        initial=initial,
        transition=lambda state, _: state,
        acceptance=some_state_is(_GOOD),
        rounds=0,
        labels=frozenset({label, None}),
    )


def proper_coloring_checker(colors: int) -> DistributedGraphAutomaton:
    """One round: every node checks that no neighbour shares its colour label.

    The input labels are the colours ``0 .. colors-1``; after one round a
    node is ``bad`` iff some neighbour had the same colour, and the automaton
    accepts iff no node is ``bad``.  This is the finite-state skeleton of the
    LCL verifier for proper colouring.
    """
    if colors < 1:
        raise ValueError("colors must be positive")
    palette = tuple(range(colors))
    states = frozenset(palette) | frozenset({_BAD, _GOOD})

    def initial(label):
        if label not in palette:
            return _BAD
        return label

    def transition(state, neighbour_states: FrozenSet):
        if state == _BAD:
            return _BAD
        if state in neighbour_states:
            return _BAD
        return _GOOD

    return DistributedGraphAutomaton(
        name=f"proper-{colors}-coloring-checker",
        states=states,
        initial=initial,
        transition=transition,
        acceptance=all_states_in({_GOOD}),
        rounds=1,
        labels=frozenset(palette) | frozenset({None}),
    )


def radius_at_most(r: int) -> DistributedGraphAutomaton:
    """Accept iff every node is within distance ``r`` of a node labelled "center".

    Flooding for ``r`` rounds: a node is ``reached`` initially iff it carries
    the ``"center"`` label, and becomes ``reached`` as soon as a neighbour
    is.  This is the Appendix A.1 observation that radius-``r`` views (here,
    ``r`` communication rounds) decide bounded-eccentricity properties that
    radius-1 certification cannot decide without large certificates.
    """
    if r < 0:
        raise ValueError("r must be non-negative")

    def initial(label):
        return _REACHED if label == "center" else _WAITING

    def transition(state, neighbour_states: FrozenSet):
        if state == _REACHED or _REACHED in neighbour_states:
            return _REACHED
        return _WAITING

    return DistributedGraphAutomaton(
        name=f"radius<={r}",
        states=frozenset({_REACHED, _WAITING}),
        initial=initial,
        transition=transition,
        acceptance=all_states_in({_REACHED}),
        rounds=r,
        labels=frozenset({"center", None}),
    )


def _bipartition_witness(graph: nx.Graph) -> Optional[Dict[Vertex, int]]:
    if not nx.is_bipartite(graph):
        return None
    return {vertex: int(colour) for vertex, colour in nx.bipartite.color(graph).items()}


def two_coloring_prover_dga() -> NondeterministicDGA:
    """The existential automaton for 2-colourability.

    The prover labels every node with a colour in {0, 1}; the deterministic
    part is the one-round proper-colouring checker.  The automaton accepts a
    graph iff it is bipartite — the standard example of a property that the
    deterministic model cannot decide but one existential alternation can.
    """
    return NondeterministicDGA(
        automaton=proper_coloring_checker(2),
        prover_labels=(0, 1),
        witness=_bipartition_witness,
    )
