"""The deterministic distributed graph automaton.

The model, following Reiter (LICS 2015) as summarised in Appendix A.3:

* every node is an identical finite-state machine — there are no identifiers;
* the initial state of a node is a function of its (constant-size) input
  label only;
* in each synchronous round, a node's next state is a function of its
  current state and of the *set* of its neighbours' current states (a set,
  not a multiset: the model cannot count);
* after a fixed constant number of rounds, the run stops and the automaton
  accepts iff the *set* of states present in the graph satisfies the
  acceptance predicate.

The class below is a direct executable transcription of that definition; the
nondeterministic (prover) layer lives in
:mod:`repro.dga.nondeterministic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Mapping, Optional, Tuple

import networkx as nx

from repro.graphs.utils import ensure_connected

Vertex = Hashable
State = Hashable
Label = Hashable

InitialFunction = Callable[[Label], State]
TransitionFunction = Callable[[State, FrozenSet[State]], State]
AcceptancePredicate = Callable[[FrozenSet[State]], bool]


def all_states_in(allowed) -> AcceptancePredicate:
    """Acceptance predicate: every final state belongs to ``allowed``."""
    allowed = frozenset(allowed)

    def predicate(states: FrozenSet[State]) -> bool:
        return states <= allowed

    return predicate


def some_state_is(wanted: State) -> AcceptancePredicate:
    """Acceptance predicate: at least one node ends in state ``wanted``."""

    def predicate(states: FrozenSet[State]) -> bool:
        return wanted in states

    return predicate


@dataclass(frozen=True)
class DGARun:
    """The trace of one run: per-round states and the final decision."""

    accepted: bool
    final_states: FrozenSet[State]
    rounds: int
    history: Tuple[Dict[Vertex, State], ...] = field(default_factory=tuple)

    def states_of(self, vertex: Vertex) -> Tuple[State, ...]:
        """The state trajectory of one vertex across the run."""
        return tuple(snapshot[vertex] for snapshot in self.history)


@dataclass(frozen=True)
class DistributedGraphAutomaton:
    """An anonymous, synchronous, finite-state distributed graph automaton."""

    name: str
    states: FrozenSet[State]
    initial: InitialFunction
    transition: TransitionFunction
    acceptance: AcceptancePredicate
    rounds: int
    labels: FrozenSet[Label] = frozenset({None})

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError("the number of rounds must be non-negative")
        if not self.states:
            raise ValueError("the state set must be non-empty")

    def run(
        self,
        graph: nx.Graph,
        labels: Optional[Mapping[Vertex, Label]] = None,
        keep_history: bool = False,
    ) -> DGARun:
        """Execute the automaton on ``graph`` with the given input labelling.

        Unlabelled vertices get the label ``None``.  Raises ``ValueError``
        when an initial or transition step leaves the declared state set —
        that is a bug in the automaton, not a rejection.
        """
        graph = ensure_connected(graph)
        labels = dict(labels or {})
        current: Dict[Vertex, State] = {}
        for vertex in graph.nodes():
            label = labels.get(vertex)
            if label not in self.labels:
                raise ValueError(f"label {label!r} is not in the automaton's alphabet")
            state = self.initial(label)
            if state not in self.states:
                raise ValueError(f"initial state {state!r} is not a declared state")
            current[vertex] = state
        history = [dict(current)] if keep_history else []
        for _ in range(self.rounds):
            nxt: Dict[Vertex, State] = {}
            for vertex in graph.nodes():
                neighbour_states = frozenset(current[w] for w in graph.neighbors(vertex))
                state = self.transition(current[vertex], neighbour_states)
                if state not in self.states:
                    raise ValueError(f"transition produced unknown state {state!r}")
                nxt[vertex] = state
            current = nxt
            if keep_history:
                history.append(dict(current))
        final_states = frozenset(current.values())
        return DGARun(
            accepted=bool(self.acceptance(final_states)),
            final_states=final_states,
            rounds=self.rounds,
            history=tuple(history),
        )

    def accepts(self, graph: nx.Graph, labels: Optional[Mapping[Vertex, Label]] = None) -> bool:
        """Shortcut for ``run(...).accepted``."""
        return self.run(graph, labels=labels).accepted
