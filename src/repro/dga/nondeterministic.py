"""The single-prover (existential) layer on top of distributed graph automata.

Reiter's full model is *alternating*: a prover and a disprover take turns
assigning constant-size labels to the nodes before the finite-state run.
Local certification corresponds to the first existential level — one prover,
then a deterministic verification — so that is the variant implemented
here.  A :class:`NondeterministicDGA` accepts a graph when *some* assignment
of prover labels makes the underlying deterministic automaton accept; the
class searches the (exponentially many) assignments exhaustively, with a
size guard, or uses a caller-supplied witness strategy when one exists.

The bridge :func:`certification_from_dga` turns a nondeterministic DGA into
a :class:`~repro.core.scheme.CertificationScheme` whose certificates are the
prover label plus the node's full state trajectory: this makes Appendix
A.3's comparison concrete — the certificates have constant size, but the
verification needs as many certification rounds as the automaton had
computation rounds, which the radius-1 model compresses into one round at
the price of trusting (and re-checking) the trajectory.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence

import networkx as nx

from repro.core.encoding import CertificateFormatError, CertificateReader, CertificateWriter
from repro.core.scheme import CertificationScheme, Certificates, NotAYesInstance
from repro.dga.automaton import DistributedGraphAutomaton
from repro.network.ids import IdentifierAssignment
from repro.network.views import LocalView

Vertex = Hashable
Label = Hashable
WitnessStrategy = Callable[[nx.Graph], Optional[Mapping[Vertex, Label]]]

_EXHAUSTIVE_LIMIT = 1_000_000


@dataclass(frozen=True)
class NondeterministicDGA:
    """A deterministic DGA preceded by one existential labelling step."""

    automaton: DistributedGraphAutomaton
    prover_labels: tuple
    witness: Optional[WitnessStrategy] = None

    @property
    def name(self) -> str:
        return f"∃-{self.automaton.name}"

    def accepting_labelling(self, graph: nx.Graph) -> Optional[Dict[Vertex, Label]]:
        """Some prover labelling that makes the automaton accept, or ``None``.

        The caller-supplied witness strategy is tried first; exhaustive
        search over all labellings is the fallback, guarded so the search
        space stays below a million assignments.
        """
        if self.witness is not None:
            candidate = self.witness(graph)
            if candidate is not None and self.automaton.accepts(graph, labels=candidate):
                return dict(candidate)
        vertices = sorted(graph.nodes(), key=repr)
        space = len(self.prover_labels) ** len(vertices)
        if space > _EXHAUSTIVE_LIMIT:
            if self.witness is not None:
                return None
            raise ValueError(
                f"exhaustive prover search over {space} labellings is too large; "
                "provide a witness strategy"
            )
        for assignment in itertools.product(self.prover_labels, repeat=len(vertices)):
            labelling = dict(zip(vertices, assignment))
            if self.automaton.accepts(graph, labels=labelling):
                return labelling
        return None

    def accepts(self, graph: nx.Graph) -> bool:
        return self.accepting_labelling(graph) is not None


class _DGACertificationScheme(CertificationScheme):
    """Radius-1 certification simulating a nondeterministic DGA run."""

    def __init__(self, ndga: NondeterministicDGA) -> None:
        self.ndga = ndga
        self.automaton = ndga.automaton
        self.name = f"certify[{ndga.name}]"
        self._label_index = {label: i for i, label in enumerate(ndga.prover_labels)}
        self._state_index = {state: i for i, state in enumerate(sorted(self.automaton.states, key=repr))}
        self._state_of_index = {i: s for s, i in self._state_index.items()}

    def holds(self, graph: nx.Graph) -> bool:
        return self.ndga.accepts(graph)

    def prove(self, graph: nx.Graph, ids: IdentifierAssignment) -> Certificates:
        labelling = self.ndga.accepting_labelling(graph)
        if labelling is None:
            raise NotAYesInstance("no prover labelling makes the automaton accept")
        run = self.automaton.run(graph, labels=labelling, keep_history=True)
        certificates: Certificates = {}
        for vertex in graph.nodes():
            writer = CertificateWriter()
            writer.write_uint(self._label_index[labelling.get(vertex)])
            writer.write_uint_list(
                [self._state_index[state] for state in run.states_of(vertex)]
            )
            certificates[vertex] = writer.getvalue()
        return certificates

    def verify(self, view: LocalView) -> bool:
        try:
            my_label, my_trajectory = self._decode(view.certificate)
            neighbour_trajectories = [
                self._decode(info.certificate)[1] for info in view.neighbors
            ]
        except CertificateFormatError:
            return False
        rounds = self.automaton.rounds
        if len(my_trajectory) != rounds + 1:
            return False
        if any(len(t) != rounds + 1 for t in neighbour_trajectories):
            return False
        # Round 0: the initial state must match the prover label.
        if my_trajectory[0] != self.automaton.initial(my_label):
            return False
        # Rounds 1..R: each step must be the declared transition applied to
        # the neighbours' previous states.
        for round_index in range(1, rounds + 1):
            neighbour_states = frozenset(t[round_index - 1] for t in neighbour_trajectories)
            expected = self.automaton.transition(my_trajectory[round_index - 1], neighbour_states)
            if my_trajectory[round_index] != expected:
                return False
        # Acceptance: the set-of-states predicate is global, so the radius-1
        # verifier can only enforce the "universal" predicates — every vertex
        # checks that its own final state keeps the predicate satisfiable on
        # singletons.  This is the structural weakening Appendix A.3 points
        # out: general DGA acceptance does not localise.
        return self.automaton.acceptance(frozenset({my_trajectory[-1]}))

    def _decode(self, certificate: bytes):
        reader = CertificateReader(certificate)
        label_index = reader.read_uint()
        if label_index >= len(self.ndga.prover_labels):
            raise CertificateFormatError("unknown prover label")
        trajectory_indices = reader.read_uint_list()
        reader.expect_end()
        try:
            trajectory = tuple(self._state_of_index[i] for i in trajectory_indices)
        except KeyError as error:
            raise CertificateFormatError("unknown state index") from error
        return self.ndga.prover_labels[label_index], trajectory


def certification_from_dga(ndga: NondeterministicDGA) -> CertificationScheme:
    """Wrap a nondeterministic DGA as a radius-1 certification scheme.

    The resulting scheme is complete and sound for automata whose acceptance
    predicate is of the "every final state is good" form (the
    :func:`~repro.dga.automaton.all_states_in` family); for existential
    predicates the global acceptance cannot be localised and the wrapper
    only checks the transition structure — exactly the gap between the two
    models that Appendix A.3 discusses.
    """
    return _DGACertificationScheme(ndga)
