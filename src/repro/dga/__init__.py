"""Distributed graph automata (the Appendix A.3 comparison model).

Appendix A.3 of the paper contrasts local certification with Reiter's
*distributed graph automata*: anonymous finite-state machines updating their
states in synchronous rounds, whose acceptance is a function of the *set* of
final states, optionally helped by provers assigning constant-size labels.
This subpackage implements the deterministic core of the model and its
single-prover (existential) variant, so the benchmarks and the examples can
compare, on the same instances, what a constant-round finite-state model
decides versus what a radius-1 certification decides:

* local computation — DGAs are finite-state and see only the *set* of
  neighbour states (no counting, no identifiers), strictly weaker than the
  unbounded local computation of a certification verifier;
* acceptance — DGAs apply an arbitrary predicate to the set of final
  states, strictly stronger than the "every vertex accepts" conjunction;
* rounds — DGAs run a constant number of rounds, certifications exactly one.
"""

from repro.dga.automaton import (
    AcceptancePredicate,
    DGARun,
    DistributedGraphAutomaton,
    all_states_in,
    some_state_is,
)
from repro.dga.nondeterministic import NondeterministicDGA, certification_from_dga
from repro.dga.catalog import (
    all_nodes_labelled,
    proper_coloring_checker,
    radius_at_most,
    some_node_labelled,
    two_coloring_prover_dga,
)

__all__ = [
    "AcceptancePredicate",
    "DGARun",
    "DistributedGraphAutomaton",
    "all_states_in",
    "some_state_is",
    "NondeterministicDGA",
    "certification_from_dga",
    "all_nodes_labelled",
    "proper_coloring_checker",
    "radius_at_most",
    "some_node_labelled",
    "two_coloring_prover_dga",
]
