"""Canonical forms and isomorphism tests for trees.

The automorphism lower bound (Theorem 2.3) relies on an injection from bit
strings into pairwise non-isomorphic bounded-depth trees, and its correctness
argument needs a reliable tree-isomorphism test.  We implement the classic
AHU (Aho–Hopcroft–Ullman) canonical form for rooted trees, lifted to unrooted
trees through centroids.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.utils import is_tree

Vertex = Hashable


def rooted_tree_canonical_form(tree: nx.Graph, root: Vertex) -> str:
    """AHU canonical string of ``tree`` rooted at ``root``.

    Two rooted trees are isomorphic (as rooted trees) if and only if their
    canonical strings are equal.
    """
    if root not in tree:
        raise ValueError(f"root {root!r} is not a vertex of the tree")

    def encode(vertex: Vertex, parent: Vertex | None) -> str:
        children = [w for w in tree.neighbors(vertex) if w != parent]
        if not children:
            return "()"
        encodings = sorted(encode(child, vertex) for child in children)
        return "(" + "".join(encodings) + ")"

    return encode(root, None)


def rooted_trees_isomorphic(
    tree_a: nx.Graph, root_a: Vertex, tree_b: nx.Graph, root_b: Vertex
) -> bool:
    """Return True when the two rooted trees are isomorphic."""
    if tree_a.number_of_nodes() != tree_b.number_of_nodes():
        return False
    return rooted_tree_canonical_form(tree_a, root_a) == rooted_tree_canonical_form(
        tree_b, root_b
    )


def tree_centroids(tree: nx.Graph) -> list[Vertex]:
    """Return the one or two centroids of a tree.

    A centroid is a vertex minimising the size of its largest remaining
    component when removed; every tree has one or two of them.
    """
    if not is_tree(tree):
        raise ValueError("tree_centroids expects a tree")
    n = tree.number_of_nodes()
    if n == 1:
        return list(tree.nodes())
    # Iteratively strip leaves; the last one or two vertices are the centroids.
    degrees = {v: tree.degree(v) for v in tree.nodes()}
    leaves = [v for v, d in degrees.items() if d == 1]
    removed = 0
    remaining = set(tree.nodes())
    while n - removed > 2:
        next_leaves = []
        for leaf in leaves:
            remaining.discard(leaf)
            removed += 1
            for neighbor in tree.neighbors(leaf):
                if neighbor in remaining:
                    degrees[neighbor] -= 1
                    if degrees[neighbor] == 1:
                        next_leaves.append(neighbor)
        leaves = next_leaves
    return sorted(remaining, key=repr)


def tree_canonical_form(tree: nx.Graph) -> str:
    """Canonical string of an *unrooted* tree.

    The form is the lexicographically smallest AHU string over the centroids,
    so two unrooted trees are isomorphic iff their canonical forms coincide.
    """
    centroids = tree_centroids(tree)
    return min(rooted_tree_canonical_form(tree, c) for c in centroids)


def trees_isomorphic(tree_a: nx.Graph, tree_b: nx.Graph) -> bool:
    """Return True when the two unrooted trees are isomorphic."""
    if tree_a.number_of_nodes() != tree_b.number_of_nodes():
        return False
    if tree_a.number_of_edges() != tree_b.number_of_edges():
        return False
    return tree_canonical_form(tree_a) == tree_canonical_form(tree_b)
