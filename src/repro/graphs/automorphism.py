"""Automorphisms of graphs, and fixed-point-free automorphisms of trees.

Theorem 2.3 of the paper concerns the property "the tree has an automorphism
without fixed point", the typical non-MSO property.  This module provides:

* a brute-force automorphism enumerator for small graphs (used in tests and
  exhaustive experiments),
* a polynomial decision procedure for fixed-point-free automorphisms of
  *trees*, based on the classical centroid/canonical-form analysis used in
  the paper's own reduction (the gadget of Theorem 2.3 has a fixed-point-free
  automorphism iff Alice's and Bob's trees are isomorphic).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Hashable, Iterator

import networkx as nx

from repro.graphs.isomorphism import (
    rooted_tree_canonical_form,
    tree_centroids,
)
from repro.graphs.utils import is_tree

Vertex = Hashable


def is_automorphism(graph: nx.Graph, mapping: Dict[Vertex, Vertex]) -> bool:
    """Check that ``mapping`` is an automorphism of ``graph``."""
    vertices = set(graph.nodes())
    if set(mapping.keys()) != vertices or set(mapping.values()) != vertices:
        return False
    for u, v in graph.edges():
        if not graph.has_edge(mapping[u], mapping[v]):
            return False
    # Non-edges must map to non-edges; since the mapping is a bijection and
    # edges map to edges, counting suffices.
    return True


def automorphisms(graph: nx.Graph, max_vertices: int = 9) -> Iterator[Dict[Vertex, Vertex]]:
    """Yield all automorphisms of a small graph by brute force.

    Degree sequences are used to prune the permutation search.  Guarded by
    ``max_vertices`` because the search is factorial.
    """
    n = graph.number_of_nodes()
    if n > max_vertices:
        raise ValueError(
            f"brute-force automorphism enumeration limited to {max_vertices} vertices"
        )
    vertices = sorted(graph.nodes(), key=repr)
    degree = {v: graph.degree(v) for v in vertices}
    for perm in permutations(vertices):
        mapping = dict(zip(vertices, perm))
        if any(degree[v] != degree[mapping[v]] for v in vertices):
            continue
        if all(graph.has_edge(mapping[u], mapping[v]) for u, v in graph.edges()):
            yield mapping


def has_fixed_point_free_automorphism_bruteforce(
    graph: nx.Graph, max_vertices: int = 9
) -> bool:
    """Brute-force test for a fixed-point-free automorphism (small graphs)."""
    for mapping in automorphisms(graph, max_vertices=max_vertices):
        if all(mapping[v] != v for v in graph.nodes()):
            return True
    return False


def has_fixed_point_free_automorphism(graph: nx.Graph) -> bool:
    """Decide whether a *tree* has a fixed-point-free automorphism.

    For non-tree graphs with at most 9 vertices we fall back to brute force.

    For trees we use the classical structure of tree automorphisms: every
    automorphism permutes the centroid set.

    * A unique centroid is therefore a fixed point of every automorphism, so
      no fixed-point-free automorphism exists.
    * With two centroids (joined by an edge), an automorphism either fixes
      both — and then is not fixed-point free — or swaps them, which is
      possible iff the two halves obtained by cutting the centroid edge are
      isomorphic as rooted trees; the swap then moves every vertex.
    """
    if not is_tree(graph):
        return has_fixed_point_free_automorphism_bruteforce(graph)
    if graph.number_of_nodes() == 1:
        return False
    centroids = tree_centroids(graph)
    if len(centroids) == 1:
        # Every tree automorphism maps centroids to centroids, so the unique
        # centroid is a fixed point of every automorphism.
        return False
    c1, c2 = centroids
    # With a centroid edge, an automorphism either fixes both endpoints or
    # swaps them; only the swap can be fixed-point free, and a swap exists
    # iff the two rooted halves are isomorphic.
    half1 = rooted_tree_canonical_form(_half(graph, c1, c2), c1)
    half2 = rooted_tree_canonical_form(_half(graph, c2, c1), c2)
    return half1 == half2


def _half(tree: nx.Graph, keep_root: Vertex, cut_neighbor: Vertex) -> nx.Graph:
    """Component of ``tree`` containing ``keep_root`` after removing the edge
    (keep_root, cut_neighbor)."""
    pruned = tree.copy()
    pruned.remove_edge(keep_root, cut_neighbor)
    component = nx.node_connected_component(pruned, keep_root)
    return pruned.subgraph(component).copy()


def count_fixed_points(mapping: Dict[Vertex, Vertex]) -> int:
    """Number of fixed points of a vertex mapping."""
    return sum(1 for v, image in mapping.items() if v == image)
