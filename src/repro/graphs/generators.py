"""Generators for the graph families used throughout the paper.

Besides the standard families (paths, cycles, cliques, stars, ...), this
module builds the more specific families the paper's constructions and
experiments rely on:

* random rooted trees of bounded depth (Theorems 2.2 and 2.3),
* random connected graphs of bounded treedepth (Theorems 2.4 and 2.6),
* the union-of-cycles-with-apex gadget underlying the treedepth lower bound
  (Theorem 2.5, Figure 3).

All generators return plain :class:`networkx.Graph` objects with integer
vertex labels and accept an optional :class:`random.Random` (or seed) so
experiments are reproducible.

The module is also the single home of the ``family:size`` specifier language
shared by the CLI, the sweep runner and the benchmark suite: every named
family lives in :data:`GRAPH_FAMILIES` and :func:`build_graph_spec` resolves
a specifier string (``path:15``, ``grid:4``, ``file:edges.txt``) into a
graph.  Resolution errors raise :class:`GraphSpecError` (a ``ValueError``),
which callers with a user interface translate into their own error channel.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Sequence

import networkx as nx


def _rng(seed: int | random.Random | None) -> random.Random:
    """Normalise a seed argument into a :class:`random.Random` instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def path_graph(n: int) -> nx.Graph:
    """Path on ``n`` vertices labelled ``0..n-1``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """Cycle on ``n >= 3`` vertices labelled ``0..n-1``."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return nx.cycle_graph(n)


def clique_graph(n: int) -> nx.Graph:
    """Complete graph on ``n`` vertices."""
    if n <= 0:
        raise ValueError("n must be positive")
    return nx.complete_graph(n)


def star_graph(leaves: int) -> nx.Graph:
    """Star with one centre (vertex 0) and ``leaves`` leaves."""
    if leaves < 0:
        raise ValueError("leaves must be non-negative")
    return nx.star_graph(leaves)


def complete_binary_tree(depth: int) -> nx.Graph:
    """Complete binary tree of the given depth (depth 0 is a single vertex)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    graph = nx.Graph()
    graph.add_node(0)
    frontier = [0]
    next_label = 1
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(2):
                graph.add_edge(parent, next_label)
                new_frontier.append(next_label)
                next_label += 1
        frontier = new_frontier
    return graph


def caterpillar(spine: int, legs_per_vertex: int = 2) -> nx.Graph:
    """Caterpillar: a path of ``spine`` vertices, each with pendant leaves."""
    if spine <= 0:
        raise ValueError("spine must be positive")
    graph = nx.path_graph(spine)
    next_label = spine
    for v in range(spine):
        for _ in range(legs_per_vertex):
            graph.add_edge(v, next_label)
            next_label += 1
    return graph


def spider(legs: int, leg_length: int) -> nx.Graph:
    """Spider: ``legs`` paths of length ``leg_length`` glued at a centre."""
    if legs <= 0 or leg_length <= 0:
        raise ValueError("legs and leg_length must be positive")
    graph = nx.Graph()
    graph.add_node(0)
    next_label = 1
    for _ in range(legs):
        previous = 0
        for _ in range(leg_length):
            graph.add_edge(previous, next_label)
            previous = next_label
            next_label += 1
    return graph


def random_tree(n: int, seed: int | random.Random | None = None) -> nx.Graph:
    """Uniform-ish random tree on ``n`` vertices (random attachment)."""
    rng = _rng(seed)
    if n <= 0:
        raise ValueError("n must be positive")
    graph = nx.Graph()
    graph.add_node(0)
    for v in range(1, n):
        graph.add_edge(v, rng.randrange(v))
    return graph


def random_tree_of_depth(
    depth: int,
    max_children: int = 3,
    seed: int | random.Random | None = None,
    min_children: int = 1,
) -> nx.Graph:
    """Random rooted tree whose depth is *exactly* ``depth``.

    The tree is rooted at vertex 0.  Every internal vertex receives between
    ``min_children`` and ``max_children`` children; one branch is forced to
    reach the requested depth so the depth is exact, not merely bounded.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    rng = _rng(seed)
    graph = nx.Graph()
    graph.add_node(0)
    next_label = 1
    # Force one path of length `depth` from the root.
    forced = [0]
    for _ in range(depth):
        graph.add_edge(forced[-1], next_label)
        forced.append(next_label)
        next_label += 1
    # Sprinkle additional children on the forced path, with bounded depth.
    frontier = [(v, d) for d, v in enumerate(forced)]
    while frontier:
        vertex, d = frontier.pop()
        if d >= depth:
            continue
        extra = rng.randint(min_children - 1, max_children - 1)
        for _ in range(max(0, extra)):
            graph.add_edge(vertex, next_label)
            frontier.append((next_label, d + 1))
            next_label += 1
    return graph


def random_graph(
    n: int, p: float = 0.3, seed: int | random.Random | None = None
) -> nx.Graph:
    """Erdős–Rényi graph G(n, p) (possibly disconnected)."""
    rng = _rng(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_connected_graph(
    n: int, p: float = 0.3, seed: int | random.Random | None = None
) -> nx.Graph:
    """Connected random graph: a random tree plus G(n, p) extra edges."""
    rng = _rng(seed)
    graph = random_tree(n, seed=rng)
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.random() < p:
                graph.add_edge(u, v)
    return graph


def bounded_treedepth_graph(
    depth: int,
    branching: int = 2,
    extra_edge_probability: float = 0.5,
    seed: int | random.Random | None = None,
) -> nx.Graph:
    """Random connected graph of treedepth at most ``depth``.

    The graph is generated from a random elimination tree of the requested
    depth: vertices are the nodes of a rooted tree with branching factor at
    most ``branching``; edges may only connect a vertex to one of its
    ancestors.  Every vertex is connected to its parent (so the graph is
    connected and the model is coherent), and is connected to each strict
    ancestor independently with probability ``extra_edge_probability``.

    By Definition 3.1 the resulting graph has treedepth at most ``depth``.
    """
    if depth <= 0:
        raise ValueError("depth must be positive")
    rng = _rng(seed)
    graph = nx.Graph()
    graph.add_node(0)
    ancestors: dict[int, list[int]] = {0: []}
    frontier = [(0, 1)]
    next_label = 1
    while frontier:
        vertex, level = frontier.pop(0)
        if level >= depth:
            continue
        children = rng.randint(1, branching)
        for _ in range(children):
            child = next_label
            next_label += 1
            chain = ancestors[vertex] + [vertex]
            ancestors[child] = chain
            graph.add_edge(child, vertex)
            for ancestor in chain[:-1]:
                if rng.random() < extra_edge_probability:
                    graph.add_edge(child, ancestor)
            frontier.append((child, level + 1))
    return graph


def union_of_cycles_with_apex(cycle_lengths: Sequence[int]) -> nx.Graph:
    """Disjoint cycles plus an apex vertex adjacent to one vertex per cycle.

    This mirrors the basis of the Theorem 2.5 construction (Figure 3): the
    graph minus the apex is 2-regular (a disjoint union of cycles), and the
    apex keeps the whole graph connected.  The apex is vertex 0; the apex is
    adjacent to every vertex playing the role of :math:`V_\\alpha` in the
    paper, which we take to be the first vertex of each cycle.
    """
    if not cycle_lengths:
        raise ValueError("need at least one cycle")
    if any(length < 3 for length in cycle_lengths):
        raise ValueError("cycles need length at least 3")
    graph = nx.Graph()
    graph.add_node(0)
    next_label = 1
    for length in cycle_lengths:
        first = next_label
        vertices = list(range(first, first + length))
        next_label += length
        for i, v in enumerate(vertices):
            graph.add_edge(v, vertices[(i + 1) % length])
        graph.add_edge(0, first)
    return graph


def triangle_chain(triangles: int) -> nx.Graph:
    """A chain of ``triangles`` triangles sharing one vertex between links.

    Every block (biconnected component) is a triangle, so the graph is
    C_t-minor-free for every t ≥ 4 — the yes-family of the Corollary 2.7
    cycle-minor experiments.  The graph has ``2 * triangles + 1`` vertices.
    """
    if triangles <= 0:
        raise ValueError("triangles must be positive")
    graph = nx.Graph()
    for i in range(triangles):
        base = 2 * i
        graph.add_edge(base, base + 1)
        graph.add_edge(base, base + 2)
        graph.add_edge(base + 1, base + 2)
    return graph


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """Grid graph with integer labels (row-major order)."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    graph = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            graph.add_node(v)
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


# ---------------------------------------------------------------------------
# The shared ``family:size`` specifier language
# ---------------------------------------------------------------------------


class GraphSpecError(ValueError):
    """A ``family:size`` specifier could not be resolved into a graph."""


#: family name → what the ``size`` argument of the specifier means.  Shown
#: verbatim by the CLI ``list`` command; keep in sync with
#: :data:`GRAPH_FAMILIES`.
GRAPH_FAMILY_SIZE_MEANING: Dict[str, str] = {
    "path": "N",
    "cycle": "N",
    "clique": "N",
    "star": "N",
    "binary-tree": "DEPTH",
    "caterpillar": "SPINE",
    "spider": "LEGS",
    "random-tree": "N",
    "random-connected": "N",
    "bounded-treedepth": "DEPTH",
    "triangle-chain": "LINKS",
    "union-of-cycles": "CYCLES",
    "grid": "SIDE",
}

#: family name → builder taking ``(size, rng)``.  The meaning of ``size`` is
#: family-specific — vertex count for most, but e.g. depth for
#: ``binary-tree`` — see :data:`GRAPH_FAMILY_SIZE_MEANING`.
GRAPH_FAMILIES: Dict[str, Callable[[int, random.Random], nx.Graph]] = {
    "path": lambda n, rng: path_graph(n),
    "cycle": lambda n, rng: cycle_graph(n),
    "clique": lambda n, rng: clique_graph(n),
    "star": lambda n, rng: star_graph(max(1, n - 1)),
    "binary-tree": lambda depth, rng: complete_binary_tree(depth),
    "caterpillar": lambda spine, rng: caterpillar(spine),
    "spider": lambda legs, rng: spider(legs, leg_length=2),
    "random-tree": lambda n, rng: random_tree(n, seed=rng),
    "random-connected": lambda n, rng: random_connected_graph(n, p=0.1, seed=rng),
    "bounded-treedepth": lambda depth, rng: bounded_treedepth_graph(depth, seed=rng),
    "triangle-chain": lambda triangles, rng: triangle_chain(triangles),
    # The basis of the Theorem 2.5 construction (Figure 3): k disjoint
    # triangles plus an apex; treedepth ≤ 4 for every k, diameter 4 for
    # k ≥ 2 — the no-family of the radius ablation.
    "union-of-cycles": lambda cycles, rng: union_of_cycles_with_apex([3] * cycles),
    "grid": lambda side, rng: grid_graph(side, side),
}


def build_graph_spec(spec: str, seed: int | random.Random | None = 0) -> nx.Graph:
    """Resolve a ``family:size`` or ``file:PATH`` specifier into a graph.

    This is the one resolver shared by the CLI, :mod:`repro.experiments`
    and the benchmark suite.  ``file:PATH`` reads an edge list (one ``u v``
    pair per line).  Raises :class:`GraphSpecError` on any malformed or
    unresolvable specifier, including a missing edge-list file.
    """
    if ":" not in spec:
        raise GraphSpecError(f"graph specifier must look like 'family:size', got {spec!r}")
    family, _, argument = spec.partition(":")
    if family == "file":
        try:
            graph = nx.read_edgelist(argument)
        except FileNotFoundError as error:
            raise GraphSpecError(f"edge-list file {argument!r} does not exist") from error
        except OSError as error:
            raise GraphSpecError(f"cannot read edge-list file {argument!r}: {error}") from error
        if graph.number_of_nodes() == 0:
            raise GraphSpecError(f"edge list {argument!r} produced an empty graph")
        return graph
    try:
        size = int(argument)
    except ValueError as error:
        raise GraphSpecError(f"graph size must be an integer, got {argument!r}") from error
    if size <= 0:
        raise GraphSpecError("graph size must be positive")
    builder = GRAPH_FAMILIES.get(family)
    if builder is None:
        raise GraphSpecError(
            f"unknown graph family {family!r}; choose from "
            f"{sorted(GRAPH_FAMILIES)} or 'file:PATH'"
        )
    try:
        return builder(size, _rng(seed))
    except ValueError as error:
        raise GraphSpecError(f"cannot build {spec!r}: {error}") from error


def all_connected_graphs(n: int) -> Iterable[nx.Graph]:
    """Yield every connected graph on vertex set ``0..n-1`` (n <= 6 advised).

    Exhaustive enumeration over all edge subsets; used by the exhaustive
    soundness experiments on tiny instances.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for mask in range(1 << len(pairs)):
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(pair for i, pair in enumerate(pairs) if mask >> i & 1)
        if n == 1 or nx.is_connected(graph):
            yield graph
