"""Generators for the graph families used throughout the paper.

Besides the standard families (paths, cycles, cliques, stars, ...), this
module builds the more specific families the paper's constructions and
experiments rely on:

* random rooted trees of bounded depth (Theorems 2.2 and 2.3),
* random connected graphs of bounded treedepth (Theorems 2.4 and 2.6),
* the union-of-cycles-with-apex gadget underlying the treedepth lower bound
  (Theorem 2.5, Figure 3).

All generators return plain :class:`networkx.Graph` objects with integer
vertex labels and accept an optional :class:`random.Random` (or seed) so
experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

import networkx as nx


def _rng(seed: int | random.Random | None) -> random.Random:
    """Normalise a seed argument into a :class:`random.Random` instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def path_graph(n: int) -> nx.Graph:
    """Path on ``n`` vertices labelled ``0..n-1``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """Cycle on ``n >= 3`` vertices labelled ``0..n-1``."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return nx.cycle_graph(n)


def clique_graph(n: int) -> nx.Graph:
    """Complete graph on ``n`` vertices."""
    if n <= 0:
        raise ValueError("n must be positive")
    return nx.complete_graph(n)


def star_graph(leaves: int) -> nx.Graph:
    """Star with one centre (vertex 0) and ``leaves`` leaves."""
    if leaves < 0:
        raise ValueError("leaves must be non-negative")
    return nx.star_graph(leaves)


def complete_binary_tree(depth: int) -> nx.Graph:
    """Complete binary tree of the given depth (depth 0 is a single vertex)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    graph = nx.Graph()
    graph.add_node(0)
    frontier = [0]
    next_label = 1
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(2):
                graph.add_edge(parent, next_label)
                new_frontier.append(next_label)
                next_label += 1
        frontier = new_frontier
    return graph


def caterpillar(spine: int, legs_per_vertex: int = 2) -> nx.Graph:
    """Caterpillar: a path of ``spine`` vertices, each with pendant leaves."""
    if spine <= 0:
        raise ValueError("spine must be positive")
    graph = nx.path_graph(spine)
    next_label = spine
    for v in range(spine):
        for _ in range(legs_per_vertex):
            graph.add_edge(v, next_label)
            next_label += 1
    return graph


def spider(legs: int, leg_length: int) -> nx.Graph:
    """Spider: ``legs`` paths of length ``leg_length`` glued at a centre."""
    if legs <= 0 or leg_length <= 0:
        raise ValueError("legs and leg_length must be positive")
    graph = nx.Graph()
    graph.add_node(0)
    next_label = 1
    for _ in range(legs):
        previous = 0
        for _ in range(leg_length):
            graph.add_edge(previous, next_label)
            previous = next_label
            next_label += 1
    return graph


def random_tree(n: int, seed: int | random.Random | None = None) -> nx.Graph:
    """Uniform-ish random tree on ``n`` vertices (random attachment)."""
    rng = _rng(seed)
    if n <= 0:
        raise ValueError("n must be positive")
    graph = nx.Graph()
    graph.add_node(0)
    for v in range(1, n):
        graph.add_edge(v, rng.randrange(v))
    return graph


def random_tree_of_depth(
    depth: int,
    max_children: int = 3,
    seed: int | random.Random | None = None,
    min_children: int = 1,
) -> nx.Graph:
    """Random rooted tree whose depth is *exactly* ``depth``.

    The tree is rooted at vertex 0.  Every internal vertex receives between
    ``min_children`` and ``max_children`` children; one branch is forced to
    reach the requested depth so the depth is exact, not merely bounded.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    rng = _rng(seed)
    graph = nx.Graph()
    graph.add_node(0)
    next_label = 1
    # Force one path of length `depth` from the root.
    forced = [0]
    for _ in range(depth):
        graph.add_edge(forced[-1], next_label)
        forced.append(next_label)
        next_label += 1
    # Sprinkle additional children on the forced path, with bounded depth.
    frontier = [(v, d) for d, v in enumerate(forced)]
    while frontier:
        vertex, d = frontier.pop()
        if d >= depth:
            continue
        extra = rng.randint(min_children - 1, max_children - 1)
        for _ in range(max(0, extra)):
            graph.add_edge(vertex, next_label)
            frontier.append((next_label, d + 1))
            next_label += 1
    return graph


def random_graph(
    n: int, p: float = 0.3, seed: int | random.Random | None = None
) -> nx.Graph:
    """Erdős–Rényi graph G(n, p) (possibly disconnected)."""
    rng = _rng(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_connected_graph(
    n: int, p: float = 0.3, seed: int | random.Random | None = None
) -> nx.Graph:
    """Connected random graph: a random tree plus G(n, p) extra edges."""
    rng = _rng(seed)
    graph = random_tree(n, seed=rng)
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.random() < p:
                graph.add_edge(u, v)
    return graph


def bounded_treedepth_graph(
    depth: int,
    branching: int = 2,
    extra_edge_probability: float = 0.5,
    seed: int | random.Random | None = None,
) -> nx.Graph:
    """Random connected graph of treedepth at most ``depth``.

    The graph is generated from a random elimination tree of the requested
    depth: vertices are the nodes of a rooted tree with branching factor at
    most ``branching``; edges may only connect a vertex to one of its
    ancestors.  Every vertex is connected to its parent (so the graph is
    connected and the model is coherent), and is connected to each strict
    ancestor independently with probability ``extra_edge_probability``.

    By Definition 3.1 the resulting graph has treedepth at most ``depth``.
    """
    if depth <= 0:
        raise ValueError("depth must be positive")
    rng = _rng(seed)
    graph = nx.Graph()
    graph.add_node(0)
    ancestors: dict[int, list[int]] = {0: []}
    frontier = [(0, 1)]
    next_label = 1
    while frontier:
        vertex, level = frontier.pop(0)
        if level >= depth:
            continue
        children = rng.randint(1, branching)
        for _ in range(children):
            child = next_label
            next_label += 1
            chain = ancestors[vertex] + [vertex]
            ancestors[child] = chain
            graph.add_edge(child, vertex)
            for ancestor in chain[:-1]:
                if rng.random() < extra_edge_probability:
                    graph.add_edge(child, ancestor)
            frontier.append((child, level + 1))
    return graph


def union_of_cycles_with_apex(cycle_lengths: Sequence[int]) -> nx.Graph:
    """Disjoint cycles plus an apex vertex adjacent to one vertex per cycle.

    This mirrors the basis of the Theorem 2.5 construction (Figure 3): the
    graph minus the apex is 2-regular (a disjoint union of cycles), and the
    apex keeps the whole graph connected.  The apex is vertex 0; the apex is
    adjacent to every vertex playing the role of :math:`V_\\alpha` in the
    paper, which we take to be the first vertex of each cycle.
    """
    if not cycle_lengths:
        raise ValueError("need at least one cycle")
    if any(length < 3 for length in cycle_lengths):
        raise ValueError("cycles need length at least 3")
    graph = nx.Graph()
    graph.add_node(0)
    next_label = 1
    for length in cycle_lengths:
        first = next_label
        vertices = list(range(first, first + length))
        next_label += length
        for i, v in enumerate(vertices):
            graph.add_edge(v, vertices[(i + 1) % length])
        graph.add_edge(0, first)
    return graph


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """Grid graph with integer labels (row-major order)."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    graph = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            graph.add_node(v)
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def all_connected_graphs(n: int) -> Iterable[nx.Graph]:
    """Yield every connected graph on vertex set ``0..n-1`` (n <= 6 advised).

    Exhaustive enumeration over all edge subsets; used by the exhaustive
    soundness experiments on tiny instances.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for mask in range(1 << len(pairs)):
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(pair for i, pair in enumerate(pairs) if mask >> i & 1)
        if n == 1 or nx.is_connected(graph):
            yield graph
