"""Graph substrate: generators, tree isomorphism, automorphisms and minors.

Every other package in :mod:`repro` builds on plain :class:`networkx.Graph`
objects.  This package gathers the graph-theoretic helpers the paper relies
on: the graph families used in the constructions, canonical forms for trees
(needed by the automorphism lower bound of Theorem 2.3), and minor
containment tests (needed by Corollary 2.7).
"""

from repro.graphs.generators import (
    bounded_treedepth_graph,
    caterpillar,
    complete_binary_tree,
    cycle_graph,
    path_graph,
    random_connected_graph,
    random_graph,
    random_tree,
    random_tree_of_depth,
    spider,
    star_graph,
    union_of_cycles_with_apex,
)
from repro.graphs.isomorphism import (
    rooted_tree_canonical_form,
    rooted_trees_isomorphic,
    tree_canonical_form,
    trees_isomorphic,
)
from repro.graphs.automorphism import (
    automorphisms,
    has_fixed_point_free_automorphism,
    is_automorphism,
)
from repro.graphs.minors import (
    has_cycle_minor,
    has_minor,
    has_path_minor,
    is_cycle_minor_free,
    is_path_minor_free,
)
from repro.graphs.utils import (
    ensure_connected,
    induced_subgraph,
    is_clique,
    is_tree,
    relabel_to_integers,
    vertex_set,
)

__all__ = [
    "bounded_treedepth_graph",
    "caterpillar",
    "complete_binary_tree",
    "cycle_graph",
    "path_graph",
    "random_connected_graph",
    "random_graph",
    "random_tree",
    "random_tree_of_depth",
    "spider",
    "star_graph",
    "union_of_cycles_with_apex",
    "rooted_tree_canonical_form",
    "rooted_trees_isomorphic",
    "tree_canonical_form",
    "trees_isomorphic",
    "automorphisms",
    "has_fixed_point_free_automorphism",
    "is_automorphism",
    "has_cycle_minor",
    "has_minor",
    "has_path_minor",
    "is_cycle_minor_free",
    "is_path_minor_free",
    "ensure_connected",
    "induced_subgraph",
    "is_clique",
    "is_tree",
    "relabel_to_integers",
    "vertex_set",
]
