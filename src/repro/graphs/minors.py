"""Minor containment tests.

Corollary 2.7 of the paper certifies :math:`P_t`-minor-freeness and
:math:`C_t`-minor-freeness.  Both have clean combinatorial characterisations
that avoid general minor testing:

* a graph has a :math:`P_t` minor iff it contains a path on :math:`t`
  vertices as a *subgraph* (paths are their own subdivisions);
* a graph has a :math:`C_t` minor iff it contains a cycle of length at least
  :math:`t` (its circumference is ≥ t).

For arbitrary small minors ``H`` we also provide a brute-force branch-set
search, used in tests to validate the two specialised procedures.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable

import networkx as nx

Vertex = Hashable


def longest_path_length(graph: nx.Graph, cutoff: int | None = None) -> int:
    """Number of vertices of a longest simple path (exponential search).

    ``cutoff`` stops the search as soon as a path with that many vertices is
    found, which keeps minor-freeness checks cheap for small ``t``.
    """
    best = 0

    def extend(path: list[Vertex], used: set[Vertex]) -> None:
        nonlocal best
        best = max(best, len(path))
        if cutoff is not None and best >= cutoff:
            return
        for neighbor in graph.neighbors(path[-1]):
            if neighbor not in used:
                path.append(neighbor)
                used.add(neighbor)
                extend(path, used)
                used.discard(neighbor)
                path.pop()
                if cutoff is not None and best >= cutoff:
                    return

    for start in graph.nodes():
        extend([start], {start})
        if cutoff is not None and best >= cutoff:
            break
    return best


def has_path_minor(graph: nx.Graph, t: int) -> bool:
    """Return True when ``graph`` has a :math:`P_t` minor (t vertices)."""
    if t <= 0:
        raise ValueError("t must be positive")
    if t == 1:
        return graph.number_of_nodes() >= 1
    return longest_path_length(graph, cutoff=t) >= t


def is_path_minor_free(graph: nx.Graph, t: int) -> bool:
    """Return True when ``graph`` has no :math:`P_t` minor."""
    return not has_path_minor(graph, t)


def circumference(graph: nx.Graph, cutoff: int | None = None) -> int:
    """Length of a longest cycle; 0 for forests (exponential search)."""
    best = 0
    vertices = sorted(graph.nodes(), key=repr)
    index = {v: i for i, v in enumerate(vertices)}

    def extend(start: Vertex, path: list[Vertex], used: set[Vertex]) -> None:
        nonlocal best
        if cutoff is not None and best >= cutoff:
            return
        last = path[-1]
        for neighbor in graph.neighbors(last):
            if neighbor == start and len(path) >= 3:
                best = max(best, len(path))
                if cutoff is not None and best >= cutoff:
                    return
            elif neighbor not in used and index[neighbor] > index[start]:
                path.append(neighbor)
                used.add(neighbor)
                extend(start, path, used)
                used.discard(neighbor)
                path.pop()
                if cutoff is not None and best >= cutoff:
                    return

    for start in vertices:
        extend(start, [start], {start})
        if cutoff is not None and best >= cutoff:
            break
    return best


def has_cycle_minor(graph: nx.Graph, t: int) -> bool:
    """Return True when ``graph`` has a :math:`C_t` minor (cycle length ≥ t)."""
    if t < 3:
        raise ValueError("cycles have length at least 3")
    return circumference(graph, cutoff=t) >= t


def is_cycle_minor_free(graph: nx.Graph, t: int) -> bool:
    """Return True when ``graph`` has no :math:`C_t` minor."""
    return not has_cycle_minor(graph, t)


def has_minor(graph: nx.Graph, minor: nx.Graph, max_graph_size: int = 12) -> bool:
    """Brute-force minor test for small graphs.

    Searches for a *model* of ``minor`` in ``graph``: disjoint connected
    branch sets, one per vertex of ``minor``, with an edge of ``graph``
    between branch sets whenever ``minor`` has the corresponding edge.
    Exponential; guarded by ``max_graph_size``.
    """
    n = graph.number_of_nodes()
    if n > max_graph_size:
        raise ValueError(f"brute-force minor test limited to {max_graph_size} vertices")
    h_vertices = sorted(minor.nodes(), key=repr)
    k = len(h_vertices)
    if k > n:
        return False
    g_vertices = sorted(graph.nodes(), key=repr)

    def branch_sets_ok(assignment: dict[Vertex, int]) -> bool:
        groups: dict[int, list[Vertex]] = {}
        for v, label in assignment.items():
            if label >= 0:
                groups.setdefault(label, []).append(v)
        if len(groups) < k:
            return False
        for label, group in groups.items():
            if not nx.is_connected(graph.subgraph(group)):
                return False
        for i, j in minor.edges():
            gi = groups[h_vertices.index(i)]
            gj = groups[h_vertices.index(j)]
            if not any(graph.has_edge(u, v) for u in gi for v in gj):
                return False
        return True

    # Assign each vertex of G to a branch set index in [0, k) or -1 (unused).
    def search(position: int, assignment: dict[Vertex, int]) -> bool:
        if position == n:
            return branch_sets_ok(assignment)
        vertex = g_vertices[position]
        for label in range(-1, k):
            assignment[vertex] = label
            if search(position + 1, assignment):
                return True
        del assignment[vertex]
        return False

    return search(0, {})
