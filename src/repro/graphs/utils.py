"""Small graph utilities shared across the code base.

The paper only considers connected, loopless, non-empty graphs
(Section 3), so most helpers here enforce or check exactly that.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

Vertex = Hashable


def vertex_set(graph: nx.Graph) -> frozenset:
    """Return the vertex set of ``graph`` as a frozenset."""
    return frozenset(graph.nodes())


def is_tree(graph: nx.Graph) -> bool:
    """Return True when ``graph`` is a (connected, acyclic) tree."""
    n = graph.number_of_nodes()
    if n == 0:
        return False
    return graph.number_of_edges() == n - 1 and nx.is_connected(graph)


def is_clique(graph: nx.Graph) -> bool:
    """Return True when every pair of distinct vertices is adjacent."""
    n = graph.number_of_nodes()
    return graph.number_of_edges() == n * (n - 1) // 2


def ensure_connected(graph: nx.Graph) -> nx.Graph:
    """Raise ``ValueError`` if ``graph`` is empty or disconnected.

    Returns the graph unchanged so the call can be chained.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("the paper only considers non-empty graphs")
    if not nx.is_connected(graph):
        raise ValueError("the paper only considers connected graphs")
    if any(graph.has_edge(v, v) for v in graph.nodes()):
        raise ValueError("the paper only considers loopless graphs")
    return graph


def induced_subgraph(graph: nx.Graph, vertices: Iterable[Vertex]) -> nx.Graph:
    """Return a *copy* of the subgraph of ``graph`` induced by ``vertices``."""
    return graph.subgraph(list(vertices)).copy()


def relabel_to_integers(graph: nx.Graph, start: int = 0) -> nx.Graph:
    """Return a copy of ``graph`` with vertices relabelled ``start..start+n-1``.

    The relabelling follows the sorted order of the original labels so the
    result is deterministic.
    """
    mapping = {v: i + start for i, v in enumerate(sorted(graph.nodes(), key=repr))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def disjoint_union_relabel(*graphs: nx.Graph) -> nx.Graph:
    """Disjoint union of graphs, relabelled with consecutive integers."""
    result = nx.Graph()
    offset = 0
    for graph in graphs:
        mapping = {v: offset + i for i, v in enumerate(sorted(graph.nodes(), key=repr))}
        result.add_nodes_from(mapping.values())
        result.add_edges_from((mapping[u], mapping[v]) for u, v in graph.edges())
        offset += graph.number_of_nodes()
    return result


def graph_from_edges(edges: Iterable[tuple[Vertex, Vertex]]) -> nx.Graph:
    """Build a graph from an iterable of edges."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return graph
