"""repro — a reproduction of "What can be certified compactly?" (PODC 2022).

The package implements local certification (proof-labeling schemes with
radius-1 verification) together with every substrate the paper's results
rest on: FO/MSO logic and model checking, Ehrenfeucht–Fraïssé games, tree
automata, treedepth and elimination trees, the k-reduction kernel, and the
communication-complexity lower-bound constructions.

Quick start::

    import networkx as nx
    from repro.core import TreedepthScheme

    graph = nx.path_graph(7)          # treedepth 3
    scheme = TreedepthScheme(t=3)
    report = scheme.certify(graph)
    assert report.completeness_ok
    print(report.max_certificate_bits, "bits per vertex")

See the ``examples/`` directory for end-to-end scenarios and ``benchmarks/``
for the per-theorem experiments.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
