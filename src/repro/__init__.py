"""repro — a reproduction of "What can be certified compactly?" (PODC 2022).

The package implements local certification (proof-labeling schemes with
radius-1 verification) together with every substrate the paper's results
rest on: FO/MSO logic and model checking, Ehrenfeucht–Fraïssé games, tree
automata, treedepth and elimination trees, the k-reduction kernel, and the
communication-complexity lower-bound constructions.

Quick start — the stable facade is :mod:`repro.api`::

    from repro import api

    verdict = api.certify("treedepth", "path:7", params={"t": 3})
    assert verdict.holds and verdict.accepted
    print(verdict.max_certificate_bits, "bits per vertex")

The facade routes through a long-lived
:class:`~repro.service.CertificationService`, so repeated calls reuse
compiled topologies and ground-truth decisions; the same service speaks a
JSON-lines wire protocol via ``python -m repro.cli serve`` (see
:mod:`repro.service`).  Scheme classes remain importable from
:mod:`repro.core` for callers that want the lower layers.

See the ``examples/`` directory for end-to-end scenarios and ``benchmarks/``
for the per-theorem experiments.
"""

__version__ = "1.1.0"

__all__ = ["__version__", "api"]


def __getattr__(name: str):
    # ``repro.api`` imports the service layer (and with it the registry and
    # every scheme module); load it on first touch so ``import repro`` stays
    # cheap for tooling that only wants the version.
    if name == "api":
        import importlib

        return importlib.import_module("repro.api")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
