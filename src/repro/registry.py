"""The unified scheme registry: one catalogue of every certification scheme.

The paper is a catalogue of results — Theorems 2.2–2.6, Lemma 2.1,
Proposition 3.4, Corollary 2.7 — and the repo implements each as a
:class:`~repro.core.scheme.CertificationScheme` subclass scattered across
``core/``, ``lcl/`` and ``dga/``.  This module makes the catalogue explicit:
every scheme registers here, via the :func:`register` decorator, with

* a stable key (the ``--scheme`` name of the CLI and of
  :class:`repro.experiments.SweepSpec`),
* a typed, validated parameter specification (:class:`ParamSpec`),
* the paper reference it reproduces,
* the expected asymptotic certificate-size bound (:class:`SizeBound`),
  against which measured sweep series are checked,
* the graph families it is typically exercised on.

The CLI ``list``/``certify``/``sweep`` commands and the declarative sweep
runner of :mod:`repro.experiments` are driven entirely by this registry:
adding one ``@register(...)`` factory makes a new scheme discoverable,
runnable and sweepable everywhere at once.

Factories, not instances, are registered: schemes are cheap to construct but
may hold caches, and a sweep worker process must be able to rebuild its
scheme from ``(key, params)`` alone.

Example::

    from repro import registry

    scheme = registry.create("treedepth", {"t": 3})
    info = registry.get("treedepth")
    print(info.bound.label)          # "O(t log n)"
    print([p.name for p in info.params])
"""

from __future__ import annotations

import difflib
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Type

import networkx as nx

from repro.core.scheme import CertificationScheme


class RegistryError(ValueError):
    """An unknown scheme, a bad parameter, or a duplicate registration."""


# ---------------------------------------------------------------------------
# Parameter specifications
# ---------------------------------------------------------------------------

_PARAM_TYPES: Dict[str, Callable[[str], Any]] = {
    "int": int,
    "float": float,
    "str": str,
}


@dataclass(frozen=True)
class ParamSpec:
    """One typed scheme parameter (e.g. the ``t`` of "treedepth ≤ t")."""

    name: str
    type: str = "int"
    required: bool = False
    default: Any = None
    choices: Optional[Tuple[Any, ...]] = None
    minimum: Optional[int] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.type not in _PARAM_TYPES:
            raise RegistryError(f"unknown parameter type {self.type!r} for {self.name!r}")

    def coerce(self, value: Any) -> Any:
        """Validate one raw value (string from the CLI, or already typed)."""
        converter = _PARAM_TYPES[self.type]
        if isinstance(value, str) and self.type != "str":
            try:
                value = converter(value)
            except ValueError as error:
                raise RegistryError(
                    f"parameter {self.name!r} expects {self.type}, got {value!r}"
                ) from error
        if not isinstance(value, converter) or (self.type == "int" and isinstance(value, bool)):
            raise RegistryError(
                f"parameter {self.name!r} expects {self.type}, got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise RegistryError(
                f"parameter {self.name!r} must be one of {sorted(map(str, self.choices))}, "
                f"got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise RegistryError(f"parameter {self.name!r} must be >= {self.minimum}, got {value!r}")
        return value


# ---------------------------------------------------------------------------
# Asymptotic size bounds
# ---------------------------------------------------------------------------


def _log2(n: int) -> float:
    return math.log2(max(2, n))


@dataclass(frozen=True)
class SizeBound:
    """The expected asymptotic shape of a scheme's certificate-size series.

    ``envelope(n, params)`` evaluates the bound's growth function at ``n``
    (up to constants); :meth:`check_series` tests whether a measured series
    tracks the envelope within a constant-factor band — the same shape test
    the per-theorem benchmarks apply, made uniform.
    """

    label: str
    envelope: Callable[[int, Mapping[str, Any]], float]
    slack: float = 8.0

    def check_series(
        self, series: Mapping[int, int], params: Optional[Mapping[str, Any]] = None
    ) -> Tuple[bool, Dict[str, Any]]:
        """Does ``series`` (n → measured bits) respect this bound?

        Returns ``(ok, detail)`` where ``detail`` records the per-point
        measured/envelope ratios and the spread that was compared against
        ``slack``.  A series respects an O(f(n)) bound when the ratio
        ``bits / f(n)`` stays within a constant band: its spread
        ``max/min`` must not exceed ``slack`` (growth strictly faster than
        the envelope makes the spread diverge with n).
        """
        params = dict(params or {})
        ratios = {
            int(n): bits / max(self.envelope(int(n), params), 1e-9)
            for n, bits in series.items()
        }
        detail: Dict[str, Any] = {"label": self.label, "slack": self.slack, "ratios": ratios}
        if not ratios:
            return True, {**detail, "spread": None}
        high = max(ratios.values())
        low = min(ratios.values())
        if high == 0.0:  # all certificates empty: trivially within any bound
            return True, {**detail, "spread": 0.0}
        spread = high / max(low, 1e-9)
        detail["spread"] = spread
        return spread <= self.slack, detail


CONSTANT = SizeBound("O(1)", lambda n, p: 1.0)
LOG_N = SizeBound("O(log n)", lambda n, p: _log2(n))
LOG2_N = SizeBound("O(log² n)", lambda n, p: _log2(n) ** 2)
T_LOG_N = SizeBound("O(t log n)", lambda n, p: max(1, int(p.get("t", 1))) * _log2(n))
K_LOG2_N = SizeBound("O(k log² n)", lambda n, p: max(1, int(p.get("k", 1))) * _log2(n) ** 2)
QUADRATIC = SizeBound("O(n²)", lambda n, p: float(n * n))
ZERO = SizeBound("0 bits", lambda n, p: 1.0)


# ---------------------------------------------------------------------------
# The registry proper
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemeInfo:
    """Everything the registry knows about one certification scheme."""

    key: str
    factory: Callable[..., CertificationScheme]
    cls: Type[CertificationScheme]
    summary: str
    paper: str
    bound: SizeBound
    params: Tuple[ParamSpec, ...] = ()
    families: Tuple[str, ...] = ()

    def resolve_params(self, raw: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Validate a raw parameter mapping against this scheme's spec."""
        raw = dict(raw or {})
        specs = {spec.name: spec for spec in self.params}
        unknown = sorted(set(raw) - set(specs))
        if unknown:
            raise RegistryError(
                f"scheme {self.key!r} does not take parameter(s) {unknown}; "
                f"it takes {sorted(specs) or 'none'}"
            )
        resolved: Dict[str, Any] = {}
        for name, spec in specs.items():
            if name in raw:
                resolved[name] = spec.coerce(raw[name])
            elif spec.required:
                raise RegistryError(f"scheme {self.key!r} requires parameter {name!r}")
            elif spec.default is not None:
                resolved[name] = spec.default
        return resolved

    def create(self, params: Optional[Mapping[str, Any]] = None) -> CertificationScheme:
        return self.factory(**self.resolve_params(params))


class SchemeRegistry:
    """A keyed collection of :class:`SchemeInfo` entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, SchemeInfo] = {}

    def register(
        self,
        key: str,
        *,
        cls: Type[CertificationScheme],
        summary: str,
        paper: str,
        bound: SizeBound,
        params: Sequence[ParamSpec] = (),
        families: Sequence[str] = (),
    ) -> Callable[[Callable[..., CertificationScheme]], Callable[..., CertificationScheme]]:
        """Decorator registering ``factory`` under ``key`` with its metadata."""

        def decorator(factory: Callable[..., CertificationScheme]):
            if key in self._entries:
                raise RegistryError(f"scheme key {key!r} is already registered")
            self._entries[key] = SchemeInfo(
                key=key,
                factory=factory,
                cls=cls,
                summary=summary,
                paper=paper,
                bound=bound,
                params=tuple(params),
                families=tuple(families),
            )
            return factory

        return decorator

    def get(self, key: str) -> SchemeInfo:
        try:
            return self._entries[key]
        except KeyError:
            suggestions = difflib.get_close_matches(key, self.names(), n=3, cutoff=0.5)
            hint = f"did you mean {', '.join(map(repr, suggestions))}? " if suggestions else ""
            raise RegistryError(
                f"unknown scheme {key!r}; {hint}"
                f"known schemes: {', '.join(self.names())}"
            ) from None

    def create(
        self, key: str, params: Optional[Mapping[str, Any]] = None
    ) -> CertificationScheme:
        return self.get(key).create(params)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def classes(self) -> Tuple[Type[CertificationScheme], ...]:
        return tuple({info.cls for info in self._entries.values()})

    def __iter__(self) -> Iterator[SchemeInfo]:
        return iter(self._entries[key] for key in self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


#: The process-wide registry every subsystem reads from.
REGISTRY = SchemeRegistry()

register = REGISTRY.register
get = REGISTRY.get
create = REGISTRY.create
names = REGISTRY.names


# ---------------------------------------------------------------------------
# Built-in registrations: the paper's catalogue
# ---------------------------------------------------------------------------

# Imported lazily *below* the registry machinery so the module stays a layer
# above the scheme implementations (they never import the registry).
from repro.automata.catalog import (  # noqa: E402
    all_leaves_at_even_depth_automaton,
    height_at_most_automaton,
    max_children_at_most_automaton,
    perfect_matching_automaton,
)
from repro.automata.mso_compile import compile_fo_sentence_to_automaton  # noqa: E402
from repro.core.diameter import TreeDiameterScheme  # noqa: E402
from repro.core.fragments import (  # noqa: E402
    CliqueScheme,
    DominatingVertexScheme,
    ExistentialFOScheme,
)
from repro.core.minor_free import CycleMinorFreeScheme, PathMinorFreeScheme  # noqa: E402
from repro.core.mso_treedepth_scheme import MSOTreedepthScheme  # noqa: E402
from repro.core.mso_trees import MSOTreeScheme  # noqa: E402
from repro.core.simple_schemes import (  # noqa: E402
    BipartitenessScheme,
    MaxDegreeScheme,
    PerfectMatchingWitnessScheme,
    ProperColoringScheme,
)
from repro.core.spanning_tree import SpanningTreeCountScheme, TreeScheme  # noqa: E402
from repro.core.treedepth_scheme import TreedepthScheme  # noqa: E402
from repro.core.treewidth_scheme import TreeDecompositionScheme  # noqa: E402
from repro.core.universal import UniversalScheme  # noqa: E402
from repro.dga.catalog import two_coloring_prover_dga  # noqa: E402
from repro.dga.nondeterministic import (  # noqa: E402
    _DGACertificationScheme,
    certification_from_dga,
)
from repro.graphs.utils import is_tree  # noqa: E402
from repro.lcl.classic import (  # noqa: E402
    greedy_maximal_independent_set,
    greedy_proper_coloring,
    presburger_maximal_independent_set,
    presburger_proper_coloring,
)
from repro.lcl.scheme import LCLWitnessScheme  # noqa: E402
from repro.logic import properties  # noqa: E402
from repro.treedepth.decomposition import (  # noqa: E402
    balanced_path_elimination_tree,
    star_elimination_tree,
)
from repro.treewidth.balanced import (  # noqa: E402
    balanced_cycle_decomposition,
    balanced_path_decomposition,
)

#: Named tree automata selectable by the ``mso-trees`` scheme.
MSO_TREE_AUTOMATA: Dict[str, Callable[[], Any]] = {
    "perfect-matching": perfect_matching_automaton,
    "even-leaves": all_leaves_at_even_depth_automaton,
    "height-at-most-4": lambda: height_at_most_automaton(4),
    "max-children-at-most-2": lambda: max_children_at_most_automaton(2),
    # An FO sentence compiled down to a type tree automaton (Theorem 2.2's
    # route from logic to automata, exercised end-to-end).
    "dominating-vertex": lambda: compile_fo_sentence_to_automaton(
        properties.has_dominating_vertex()
    ),
}

#: Named FO sentences selectable by ``mso-treedepth`` and ``existential-fo``.
NAMED_FORMULAS: Dict[str, Callable[[], Any]] = {
    "has-triangle": properties.has_triangle,
    "has-dominating-vertex": properties.has_dominating_vertex,
    "triangle-free": properties.triangle_free,
    "diameter-at-most-2": properties.diameter_at_most_two,
}

def _diameter_at_most_3(graph: nx.Graph) -> bool:
    """The Appendix A.1 example property (the radius-ablation counterpart)."""
    return nx.diameter(graph) <= 3


#: Named graph predicates selectable by the ``universal`` scheme.
NAMED_PREDICATES: Dict[str, Callable[..., bool]] = {
    "triangle-free": properties.check_triangle_free,
    "bipartite": properties.check_two_colorable,
    "acyclic": properties.check_acyclic,
    "tree": is_tree,
    "diameter-at-most-3": _diameter_at_most_3,
}

#: Named elimination-tree builders for the treedepth-layer schemes.
MODEL_BUILDERS: Dict[str, Optional[Callable]] = {
    "auto": None,
    "balanced-path": balanced_path_elimination_tree,
    "star": star_elimination_tree,
}

#: Named tree-decomposition builders for the treewidth scheme.
DECOMPOSITION_BUILDERS: Dict[str, Optional[Callable]] = {
    "auto": None,
    "balanced-path": balanced_path_decomposition,
    "balanced-cycle": balanced_cycle_decomposition,
}

_MODEL_PARAM = ParamSpec(
    "model",
    type="str",
    default="auto",
    choices=tuple(MODEL_BUILDERS),
    description="elimination-tree builder (auto = exact/DFS heuristic)",
)

_TREE_FAMILIES = ("path", "star", "binary-tree", "caterpillar", "spider", "random-tree")


@register(
    "tree",
    cls=TreeScheme,
    summary="the graph is a tree",
    paper="§3.3 (folklore spanning-tree scheme)",
    bound=LOG_N,
    families=_TREE_FAMILIES + ("cycle", "grid"),
)
def _tree_factory() -> CertificationScheme:
    return TreeScheme()


@register(
    "spanning-tree-count",
    cls=SpanningTreeCountScheme,
    summary="the graph has exactly N vertices",
    paper="Proposition 3.4",
    bound=LOG_N,
    params=[
        ParamSpec(
            "expected_n",
            required=True,
            minimum=1,
            description="the certified vertex count (use $n in sweeps)",
        )
    ],
    families=("path", "cycle", "random-connected", "random-tree"),
)
def _count_factory(expected_n: int) -> CertificationScheme:
    return SpanningTreeCountScheme(expected_n)


@register(
    "bipartite",
    cls=BipartitenessScheme,
    summary="the graph is 2-colourable",
    paper="§1 (introduction, full certification)",
    bound=CONSTANT,
    families=("path", "cycle", "star", "grid", "binary-tree"),
)
def _bipartite_factory() -> CertificationScheme:
    return BipartitenessScheme()


@register(
    "matching",
    cls=PerfectMatchingWitnessScheme,
    summary="the graph has a perfect matching",
    paper="§1 (witness certification)",
    bound=LOG_N,
    families=("path", "cycle", "clique"),
)
def _matching_factory() -> CertificationScheme:
    return PerfectMatchingWitnessScheme()


@register(
    "coloring",
    cls=ProperColoringScheme,
    summary="the graph is PARAM-colourable",
    paper="§1 (positive-side certification)",
    bound=CONSTANT,
    params=[ParamSpec("colors", required=True, minimum=1, description="number of colours")],
    families=("path", "cycle", "clique", "grid"),
)
def _coloring_factory(colors: int) -> CertificationScheme:
    return ProperColoringScheme(colors)


@register(
    "max-degree",
    cls=MaxDegreeScheme,
    summary="every vertex has degree at most PARAM",
    paper="§1 (locally checkable, no certificate)",
    bound=ZERO,
    params=[ParamSpec("d", required=True, minimum=0, description="degree bound")],
    families=("path", "cycle", "grid", "binary-tree"),
)
def _max_degree_factory(d: int) -> CertificationScheme:
    return MaxDegreeScheme(d)


@register(
    "tree-diameter",
    cls=TreeDiameterScheme,
    summary="the graph is a tree of diameter at most PARAM",
    paper="§2.3",
    bound=LOG_N,
    params=[ParamSpec("diameter", required=True, minimum=0, description="diameter bound")],
    families=_TREE_FAMILIES,
)
def _tree_diameter_factory(diameter: int) -> CertificationScheme:
    return TreeDiameterScheme(diameter)


@register(
    "treedepth",
    cls=TreedepthScheme,
    summary="the graph has treedepth at most t",
    paper="Theorem 2.4",
    bound=T_LOG_N,
    params=[
        ParamSpec("t", required=True, minimum=1, description="treedepth bound"),
        _MODEL_PARAM,
    ],
    families=("path", "star", "bounded-treedepth", "caterpillar", "union-of-cycles"),
)
def _treedepth_factory(t: int, model: str = "auto") -> CertificationScheme:
    return TreedepthScheme(t, model_builder=MODEL_BUILDERS[model])


@register(
    "treewidth",
    cls=TreeDecompositionScheme,
    summary="the graph has treewidth at most k",
    paper="§2.4 follow-up (ancestor-bag-list scheme)",
    bound=K_LOG2_N,
    params=[
        ParamSpec("k", required=True, minimum=0, description="treewidth bound"),
        ParamSpec(
            "decomposition",
            type="str",
            default="auto",
            choices=tuple(DECOMPOSITION_BUILDERS),
            description="tree-decomposition builder (balanced ⇒ O(k log² n))",
        ),
    ],
    families=("path", "cycle", "random-tree"),
)
def _treewidth_factory(k: int, decomposition: str = "auto") -> CertificationScheme:
    return TreeDecompositionScheme(k, decomposition_builder=DECOMPOSITION_BUILDERS[decomposition])


@register(
    "clique",
    cls=CliqueScheme,
    summary="the graph is a clique",
    paper="Lemma 2.1 (depth-2 FO)",
    bound=LOG_N,
    families=("clique",),
)
def _clique_factory() -> CertificationScheme:
    return CliqueScheme()


@register(
    "dominating-vertex",
    cls=DominatingVertexScheme,
    summary="some vertex dominates the graph",
    paper="Lemma 2.1 (depth-2 FO)",
    bound=LOG_N,
    families=("star", "clique"),
)
def _dominating_vertex_factory() -> CertificationScheme:
    return DominatingVertexScheme()


@register(
    "existential-fo",
    cls=ExistentialFOScheme,
    summary="an existential FO sentence holds (witness tuple)",
    paper="Lemma 2.1",
    bound=LOG_N,
    params=[
        ParamSpec(
            "property",
            type="str",
            default="has-triangle",
            choices=("has-triangle", "has-dominating-vertex"),
            description="named existential sentence",
        )
    ],
    families=("cycle", "clique", "star"),
)
def _existential_fo_factory(property: str = "has-triangle") -> CertificationScheme:
    return ExistentialFOScheme(NAMED_FORMULAS[property](), name=property)


@register(
    "mso-trees",
    cls=MSOTreeScheme,
    summary="an MSO (tree-automaton) property of trees",
    paper="Theorem 2.2",
    bound=CONSTANT,
    params=[
        ParamSpec(
            "automaton",
            type="str",
            default="perfect-matching",
            choices=tuple(MSO_TREE_AUTOMATA),
            description="named tree automaton from the catalogue",
        )
    ],
    families=_TREE_FAMILIES,
)
def _mso_trees_factory(automaton: str = "perfect-matching") -> CertificationScheme:
    return MSOTreeScheme(MSO_TREE_AUTOMATA[automaton](), name=automaton)


@register(
    "mso-treedepth",
    cls=MSOTreedepthScheme,
    summary="treedepth ≤ t and an MSO/FO sentence holds (kernelization)",
    paper="Theorem 2.6",
    bound=T_LOG_N,
    params=[
        ParamSpec("t", required=True, minimum=1, description="treedepth bound"),
        ParamSpec(
            "formula",
            type="str",
            default="has-dominating-vertex",
            choices=tuple(NAMED_FORMULAS),
            description="named FO sentence to certify on the kernel",
        ),
        ParamSpec(
            "k",
            minimum=1,
            description="kernel pruning parameter (default: the sentence's "
            "quantifier depth — the E17 ablation knob)",
        ),
        _MODEL_PARAM,
    ],
    families=("star", "bounded-treedepth", "path"),
)
def _mso_treedepth_factory(
    t: int,
    formula: str = "has-dominating-vertex",
    k: Optional[int] = None,
    model: str = "auto",
) -> CertificationScheme:
    return MSOTreedepthScheme(
        NAMED_FORMULAS[formula](), t=t, k=k, model_builder=MODEL_BUILDERS[model], name=formula
    )


@register(
    "path-minor-free",
    cls=PathMinorFreeScheme,
    summary="the graph has no P_t minor",
    paper="Corollary 2.7",
    bound=LOG_N,
    params=[ParamSpec("t", required=True, minimum=2, description="excluded path length")],
    families=("star", "caterpillar"),
)
def _path_minor_free_factory(t: int) -> CertificationScheme:
    return PathMinorFreeScheme(t)


@register(
    "cycle-minor-free",
    cls=CycleMinorFreeScheme,
    summary="the graph has no C_t minor",
    paper="Corollary 2.7",
    bound=LOG_N,
    params=[ParamSpec("t", required=True, minimum=3, description="excluded cycle length")],
    families=("triangle-chain", "path", "star"),
)
def _cycle_minor_free_factory(t: int) -> CertificationScheme:
    return CycleMinorFreeScheme(t)


@register(
    "universal",
    cls=UniversalScheme,
    summary="any decidable property, by shipping the whole graph",
    paper="§1.2 (the Θ(n²) baseline)",
    bound=QUADRATIC,
    params=[
        ParamSpec(
            "property",
            type="str",
            default="triangle-free",
            choices=tuple(NAMED_PREDICATES),
            description="named graph predicate to certify",
        )
    ],
    families=("path", "cycle", "star", "random-connected"),
)
def _universal_factory(property: str = "triangle-free") -> CertificationScheme:
    return UniversalScheme(NAMED_PREDICATES[property], name=property)


@register(
    "lcl-coloring",
    cls=LCLWitnessScheme,
    summary="a correct PARAM-colouring of the LCL problem exists",
    paper="Appendix C.2 (LCL witness certification)",
    bound=CONSTANT,
    params=[ParamSpec("colors", default=3, minimum=1, description="number of colours")],
    families=("path", "cycle", "grid"),
)
def _lcl_coloring_factory(colors: int = 3) -> CertificationScheme:
    def solver(graph):
        try:
            return greedy_proper_coloring(graph, colors)
        except ValueError:
            return None

    return LCLWitnessScheme(presburger_proper_coloring(colors), solver=solver)


@register(
    "lcl-mis",
    cls=LCLWitnessScheme,
    summary="a maximal independent set labelling exists (always yes)",
    paper="Appendix C.2 (LCL witness certification)",
    bound=CONSTANT,
    families=("path", "cycle", "star"),
)
def _lcl_mis_factory() -> CertificationScheme:
    return LCLWitnessScheme(
        presburger_maximal_independent_set(), solver=greedy_maximal_independent_set
    )


@register(
    "dga-two-coloring",
    cls=_DGACertificationScheme,
    summary="a nondeterministic DGA accepts (2-colourability prover)",
    paper="Appendix A.3 (distributed graph automata)",
    bound=CONSTANT,
    families=("path", "cycle", "binary-tree"),
)
def _dga_two_coloring_factory() -> CertificationScheme:
    return certification_from_dga(two_coloring_prover_dga())
