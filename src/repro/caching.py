"""Generic bounded LRU caching keyed by exact graph structure.

The evaluation harness and the decision procedures repeatedly pay for work
that only depends on the graph: exponential treedepth/treewidth solvers,
decomposition builders, identifier draws, compiled network topologies.  This
module provides the cycle-free substrate — a small thread-safe LRU cache, an
*exact* structural fingerprint for graphs, and a memoisation decorator — that
both :mod:`repro.core.cache` (scheme-level helpers) and the decomposition
modules build on.  It deliberately imports nothing from ``repro`` subpackages
so any layer of the code base can use it.

Keys never rely on ``hash()`` truncation tricks: fingerprints keep the vertex
and edge frozensets themselves, so two graphs collide iff they are equal as
labelled graphs — precisely the inputs every cached computation depends on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

import networkx as nx

GraphFingerprint = Tuple[int, int, frozenset, frozenset]


class LRUCache:
    """A tiny thread-safe LRU cache with a ``get_or_compute`` primitive."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
        # Compute outside the lock: decision procedures can be slow, and a
        # duplicated computation is cheaper than serialising all callers.
        value = compute()
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
            self.misses += 1
        return value

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Plain lookup (counts a hit/miss, refreshes recency); no compute."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Store a value directly (the imperative side of ``get_or_compute``)."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


_REGISTRY: Dict[str, LRUCache] = {}
_registry_lock = threading.Lock()


def register_cache(name: str, cache: LRUCache) -> LRUCache:
    """Register a cache under ``name`` so global clear/stats can reach it."""
    with _registry_lock:
        _REGISTRY[name] = cache
    return cache


def clear_caches() -> None:
    """Drop every registered cached value (tests and long-running services)."""
    with _registry_lock:
        caches = list(_REGISTRY.values())
    for cache in caches:
        cache.clear()


def cache_stats() -> dict:
    """Hit/miss/size counters per registered cache, for observability."""
    with _registry_lock:
        caches = dict(_REGISTRY)
    return {
        name: {"hits": cache.hits, "misses": cache.misses, "size": len(cache)}
        for name, cache in caches.items()
    }


def cache_stats_since(baseline: dict) -> dict:
    """Hit/miss deltas of every registered cache against a prior snapshot.

    ``baseline`` is a previous :func:`cache_stats` result; caches registered
    after the snapshot count from zero.  Long-lived services expose these
    deltas so "did the second request hit the cache?" is a counter read, not
    a guess.
    """
    current = cache_stats()
    return {
        name: {
            "hits": counters["hits"] - baseline.get(name, {}).get("hits", 0),
            "misses": counters["misses"] - baseline.get(name, {}).get("misses", 0),
            "size": counters["size"],
        }
        for name, counters in current.items()
    }


def graph_fingerprint(graph: nx.Graph) -> GraphFingerprint:
    """An exact, hashable structural key for a graph.

    Two graphs share a fingerprint iff they have the same vertex set and the
    same (undirected) edge set, so mutating or rebuilding a graph naturally
    misses the cache while re-evaluating the same instance hits it.

    Graph/node/edge *attributes* are deliberately not part of the key: every
    property in this code base is a function of the labelled structure alone
    (the paper's model has no weights).  Do not cache computations that read
    attributes (e.g. a ``UniversalScheme`` property checker over weighted
    graphs) on this fingerprint.
    """
    nodes = frozenset(graph.nodes())
    edges = frozenset(frozenset(edge) for edge in graph.edges())
    return (len(nodes), len(edges), nodes, edges)


_graph_fn_cache = register_cache("graph_functions", LRUCache(maxsize=512))


def memoize_on_graph(fn: Callable) -> Callable:
    """Memoise ``fn(graph, *args, **kwargs)`` on the graph's structure.

    Intended for expensive pure graph computations (decompositions, exact
    width/depth decision procedures).  Extra arguments must be hashable.
    The cached value is returned as-is, so decorated functions must return
    values their callers treat as read-only — which is already the contract
    for decompositions and elimination trees.  Exceptions propagate uncached.
    """

    def wrapper(graph: nx.Graph, *args, **kwargs):
        key = (
            fn.__module__,
            fn.__qualname__,
            graph_fingerprint(graph),
            args,
            tuple(sorted(kwargs.items())),
        )
        return _graph_fn_cache.get_or_compute(key, lambda: fn(graph, *args, **kwargs))

    wrapper.__name__ = fn.__name__
    wrapper.__qualname__ = fn.__qualname__
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper
